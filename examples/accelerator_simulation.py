"""Accelerator simulation: from algorithm traces to cycles and energy.

Runs each method's algorithm on the synthetic VLM, rescales the traces
to the paper's 7B geometry, and simulates all four Table III
architectures plus the GPU roofline — reproducing the Fig. 9 speedup
and energy bars and the area breakdown.

Run:  python examples/accelerator_simulation.py
"""

from repro.accel.arch import ADAPTIV, CMC, FOCUS, SYSTOLIC
from repro.accel.area import area_breakdown, total_area_mm2
from repro.accel.scaling import scale_to_paper
from repro.accel.simulator import simulate_many
from repro.baselines.gpu import JETSON_ORIN_NANO, simulate_gpu
from repro.eval.runner import ModelCache, evaluate


def main(num_samples: int = 4) -> None:
    model = "llava-video"
    dataset = "videomme"
    hidden = ModelCache.get(model).config.hidden

    print(f"workload: {model} / {dataset}, {num_samples} samples,"
          " traces rescaled to 7B geometry\n")

    cells = {
        method: evaluate(model, dataset, method, num_samples, seed=0)
        for method in ("dense", "framefusion", "adaptiv", "cmc", "focus")
    }
    sims = {}
    for method, arch in (("dense", SYSTOLIC), ("adaptiv", ADAPTIV),
                         ("cmc", CMC), ("focus", FOCUS)):
        scaled = [scale_to_paper(t, hidden) for t in cells[method].traces]
        sims[method] = simulate_many(scaled, arch)

    gpu = sum(
        simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO).latency_s
        for t in cells["dense"].traces
    )
    gpu_ff = sum(
        simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO,
                     sparse=True).latency_s
        for t in cells["framefusion"].traces
    )

    base = sims["dense"]
    print(f"{'design':16s}{'speedup':>9s}{'energy eff':>12s}"
          f"{'DRAM ratio':>12s}{'on-chip W':>11s}{'area mm2':>10s}")
    for method, arch in (("dense", SYSTOLIC), ("adaptiv", ADAPTIV),
                         ("cmc", CMC), ("focus", FOCUS)):
        sim = sims[method]
        print(f"{arch.name:16s}"
              f"{base.latency_s() / sim.latency_s():>9.2f}"
              f"{base.energy.total_j / sim.energy.total_j:>12.2f}"
              f"{sim.dram_bytes / base.dram_bytes:>12.2f}"
              f"{sim.on_chip_power_w():>11.3f}"
              f"{total_area_mm2(arch):>10.2f}")
    print(f"{'gpu (orin)':16s}{base.latency_s() / gpu:>9.2f}")
    print(f"{'gpu + ff':16s}{base.latency_s() / gpu_ff:>9.2f}")

    print("\nFocus area breakdown (Fig. 9(c)):")
    parts = area_breakdown(FOCUS)
    total = sum(parts.values())
    for name, area in parts.items():
        print(f"  {name:16s}{area:7.3f} mm2  ({100 * area / total:5.1f}%)")


if __name__ == "__main__":
    main()
