"""Streaming progress: consume a live experiment event stream.

Launches Fig. 11 (accuracy/sparsity across similarity thresholds)
through :class:`repro.serve.AsyncExperimentEngine` with per-sample
eval sharding, consumes the async event stream, and renders a live
per-cell ticker of running accuracy and sparsity as shards land —
exactly the events the ``repro serve`` HTTP frontend fans out to SSE
clients, here consumed in-process.

Run:  python examples/streaming_progress.py

Companion to ``examples/quickstart.py`` (one dense-vs-Focus forward)
— this one shows the serving-side view of the same machinery.  For
the HTTP version of this stream, start ``python -m repro.cli serve``
and follow the curl walkthrough in
``src/repro/engine/ARCHITECTURE.md`` ("Streaming & serving").
"""

import asyncio

from repro.engine import ExperimentEngine
from repro.serve import AsyncExperimentEngine


async def main() -> None:
    # eval_shards=1 schedules every sample as its own job, so each
    # completed sample streams an `eval-shard-done` partial result.
    engine = AsyncExperimentEngine(ExperimentEngine(eval_shards=1))
    run = engine.launch(["fig11"], num_samples=2)

    ticker: dict[str, str] = {}
    done = total = 0
    async for event in run.events():
        done, total = event.completed, event.total
        if event.action != "eval-shard-done":
            continue
        d = event.detail
        ticker[d["parent"]] = (
            f"acc {d['accuracy']:5.1f}%  sparsity {d['sparsity']:5.1f}%"
            f"  ({d['shards_done']}/{d['shards_total']} shards)"
        )
        print(f"\x1b[2J\x1b[H[{done}/{total} jobs]  live cell ticker")
        for cell, line in sorted(ticker.items()):
            print(f"  {cell:<48s} {line}")

    results = await run.result()
    await engine.close()
    print(f"\nrun complete ({done}/{total} jobs); assembled result:")
    from repro.engine import format_result
    print(format_result("fig11", results["fig11"]))


if __name__ == "__main__":
    asyncio.run(main())
