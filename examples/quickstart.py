"""Quickstart: run Focus multilevel concentration on a synthetic video.

Builds a Llava-Video-7B analog, generates a VideoMME-like video QA
sample, and compares dense inference against Focus (SEC + SIC):
same answer, ~80% fewer operations.

Run:  python examples/quickstart.py

See also ``examples/streaming_progress.py`` for the serving-side view:
the same evaluations driven through the async engine with a live
per-cell accuracy/sparsity ticker streamed from progress events.
"""

from repro import FocusConfig, FocusPlugin
from repro.eval.metrics import computation_sparsity
from repro.model import SyntheticVLM, get_model_config
from repro.workloads import make_dataset


def main() -> None:
    config = get_model_config("llava-video")
    model = SyntheticVLM(config)
    samples = make_dataset("videomme", config.layout, num_samples=4, seed=0)

    print(f"model: {config.name}  (hidden={config.hidden},"
          f" layers={config.num_layers}, heads={config.num_heads})")
    print(f"sample: {samples[0].num_visual_tokens} visual +"
          f" {samples[0].num_text_tokens} text tokens\n")

    focus = FocusConfig()
    for i, sample in enumerate(samples):
        dense = model.forward(sample)
        concentrated = model.forward(sample, FocusPlugin(model, focus))
        sparsity = computation_sparsity(
            concentrated.trace, config, sample
        )
        names = sample.codebooks.slot_names(sample.question.slot)
        print(f"[{i}] {sample.question.text}")
        print(f"    ground truth: {names[sample.question.answer_index]}")
        print(f"    dense answer: {names[dense.predicted_index]}"
              f" ({'ok' if dense.correct else 'WRONG'})")
        print(f"    focus answer: {names[concentrated.predicted_index]}"
              f" ({'ok' if concentrated.correct else 'WRONG'}),"
              f" sparsity {100 * sparsity:.1f}%,"
              f" tokens {dense.final_tokens} -> "
              f"{concentrated.final_tokens}")
    print("\nFocus removed ~80% of the compute while answering the same"
          " questions.")


if __name__ == "__main__":
    main()
