"""Video-QA evaluation pipeline: every method on every video benchmark.

Mirrors the paper's Table II workflow: for one model analog, evaluate
dense, FrameFusion, AdapTiV, CMC and Focus on the three video
benchmarks, printing paired accuracy and computation sparsity.

Run:  python examples/video_qa_pipeline.py [num_samples]
"""

import sys

from repro.eval.runner import PAPER_METHOD_NAMES, evaluate

MODEL = "llava-video"
DATASETS = ("videomme", "mlvu", "mvbench")
METHODS = ("dense", "framefusion", "adaptiv", "cmc", "focus")


def main(num_samples: int = 8) -> None:
    header = f"{'dataset':10s}{'metric':>10s}" + "".join(
        f"{PAPER_METHOD_NAMES[m]:>9s}" for m in METHODS
    )
    print(f"model: {MODEL}  samples per cell: {num_samples}")
    print(header)
    for dataset in DATASETS:
        accuracy_row = f"{dataset:10s}{'acc %':>10s}"
        sparsity_row = f"{'':10s}{'sparsity':>10s}"
        for method in METHODS:
            cell = evaluate(MODEL, dataset, method, num_samples, seed=0)
            accuracy_row += f"{cell.accuracy:9.1f}"
            sparsity_row += f"{cell.sparsity:9.1f}"
        print(accuracy_row)
        print(sparsity_row)
    print("\nExpected shape (paper Table II): Focus has the highest"
          " sparsity at accuracy comparable to dense;\nCMC loses the most"
          " sparsity on the high-motion benchmark (mvbench).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
