"""Fig. 2(a) reproduction: attention heatmaps shift with the prompt.

Renders one scene, asks two different questions about two different
objects, and prints ASCII heatmaps of the cross-modal importance the
SEC computes.  The attended region follows the referenced object —
the property that makes static importance metrics inadequate and
motivates prompt-aware pruning.

Run:  python examples/attention_heatmap.py
"""

import numpy as np

from repro.core.importance import importance_scores
from repro.model import SyntheticVLM, get_model_config
from repro.model.functional import causal_mask, rms_norm, softmax
from repro.model.plugins import InferencePlugin
from repro.workloads.datasets import get_profile, make_sample
from repro.workloads.prompts import encode_text, question_for
from repro.model.embedding import Codebooks

SHADES = " .:-=+*#%@"


class _ProbeCapture(InferencePlugin):
    """Capture the query token's layer-0 attention over image tokens.

    (The SEC's importance also folds in the other text rows via
    :func:`importance_scores`; for visualization the query row alone
    gives the crispest picture of the prompt-conditioned shift.)
    """

    def __init__(self) -> None:
        self.importance = None

    def after_attention_probs(self, layer_index, probs, state):
        if layer_index == 0:
            num_image = int((~state.is_text).sum())
            self.importance = probs[:, -1, :num_image].max(axis=0)
        return None


def heatmap(values: np.ndarray, height: int, width: int) -> str:
    grid = values.reshape(height, width)
    grid = grid / max(grid.max(), 1e-9)
    rows = []
    for row in grid:
        rows.append("".join(
            SHADES[min(int(v * (len(SHADES) - 1) + 0.5), len(SHADES) - 1)]
            for v in row
        ))
    return "\n".join(rows)


def main() -> None:
    config = get_model_config("llava-video")
    model = SyntheticVLM(config)
    codebooks = Codebooks(config.layout, seed=0)
    profile = get_profile("videomme")
    sample = make_sample(profile, codebooks, seed=3, sample_index=1)
    scene = sample.scene

    print("scene objects:")
    for obj in scene.objects:
        print(f"  {obj.color} {obj.kind} ({obj.motion}) at"
              f" ({obj.row:.1f}, {obj.col:.1f})")
    print()

    frames, height, width = sample.grid
    for obj in scene.objects[:2]:
        question = question_for(obj, "color")
        text = encode_text(question, codebooks, profile.num_text_tokens,
                           seed=3, sample_index=1)
        probed = type(sample)(
            visual_tokens=sample.visual_tokens,
            text_tokens=text,
            positions=sample.positions,
            scene=scene,
            question=question,
            codebooks=codebooks,
        )
        capture = _ProbeCapture()
        model.forward(probed, capture)
        frame0 = capture.importance[: height * width]
        print(f'Q: "{question.text}"  -> importance over frame 0:')
        print(heatmap(frame0, height, width))
        print()
    print("The bright region follows the object the question references"
          " (Fig. 2(a)).")


if __name__ == "__main__":
    main()
