"""Design-space exploration of the Focus hyper-parameters (Fig. 10).

Sweeps the four architectural knobs the paper studies — GEMM m-tile
size, vector size, SIC block shape, and scatter accumulator count —
and prints normalized latency / op-count trade-offs.

Run:  python examples/design_space_exploration.py
"""

from repro.eval.experiments import fig10a, fig10b, fig10c, fig10d
from repro.eval.reporting import format_sweep


def main(num_samples: int = 3) -> None:
    print(format_sweep(
        "FIG 10(a): GEMM m-tile size (smaller tiles truncate windows)",
        fig10a(num_samples=num_samples),
    ))
    print()
    print(format_sweep(
        "FIG 10(b): vector size (array MACs vs accumulator ops)",
        fig10b(num_samples=num_samples),
    ))
    print()
    print(format_sweep(
        "FIG 10(c): SIC block shape f/h/w (temporal extent helps most)",
        fig10c(num_samples=num_samples),
    ))
    print()
    print(format_sweep(
        "FIG 10(d): scatter accumulators (64 is the knee)",
        fig10d(num_samples=num_samples),
    ))
    print("\nExpected optima (paper Sec. VII-D): m-tile 1024, vector 32,"
          " block 2x2x2, 64 accumulators.")


if __name__ == "__main__":
    main()
