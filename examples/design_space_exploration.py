"""Design-space exploration of the Focus hyper-parameters (Fig. 10).

Sweeps the four architectural knobs the paper studies — GEMM m-tile
size, vector size, SIC block shape, and scatter accumulator count —
through the experiment engine: all four sweeps declare their jobs up
front, the engine dedupes the overlap (each sweep's default-config
point is the *same* evaluation), and a worker pool fans out the rest.

Run:  python examples/design_space_exploration.py [--workers N]
"""

import argparse

from repro.engine import ExperimentEngine
from repro.engine.registry import run_experiments
from repro.eval.reporting import format_sweep

SWEEPS = (
    ("fig10a", "FIG 10(a): GEMM m-tile size (smaller tiles truncate windows)"),
    ("fig10b", "FIG 10(b): vector size (array MACs vs accumulator ops)"),
    ("fig10c", "FIG 10(c): SIC block shape f/h/w (temporal extent helps most)"),
    ("fig10d", "FIG 10(d): scatter accumulators (64 is the knee)"),
)


def main(num_samples: int = 3, workers: int = 1) -> None:
    engine = ExperimentEngine(workers=workers)
    results = run_experiments(
        [name for name, _ in SWEEPS], engine, num_samples=num_samples
    )
    for name, title in SWEEPS:
        print(format_sweep(title, results[name]))
        print()
    stats = engine.stats
    print(
        f"[engine: {stats.jobs_submitted} jobs declared, "
        f"{stats.jobs_deduped + stats.cache_hits} shared across sweeps, "
        f"{stats.executed} evaluated, workers={engine.workers}]"
    )
    print("Expected optima (paper Sec. VII-D): m-tile 1024, vector 32,"
          " block 2x2x2, 64 accumulators.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()
    main(num_samples=args.samples, workers=args.workers)
