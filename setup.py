"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on a PEP 517 project requires ``wheel`` to build
an editable wheel; this offline environment lacks it, so we keep a
classic ``setup.py`` and omit ``[build-system]`` from ``pyproject.toml``
to let pip use the legacy develop-install path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
