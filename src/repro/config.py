"""Central configuration for the Focus reproduction.

:class:`FocusConfig` mirrors Table I of the paper: the hyper-parameters
of the multilevel concentration algorithm and the on-chip geometry the
algorithm is co-designed with.  A single instance is threaded through
the semantic concentrator, the similarity concentrator, and the
hardware simulator so that algorithm and architecture always agree on
tile and vector geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _default_retention_schedule() -> dict[int, float]:
    """Table I semantic-pruning schedule for a 28-layer model.

    Retain 40%/30%/20%/15%/10% of the original image tokens starting at
    layers 3/6/9/18/26.  Layers before the first entry keep all tokens;
    between entries the most recent ratio applies.
    """
    return {3: 0.40, 6: 0.30, 9: 0.20, 18: 0.15, 26: 0.10}


@dataclass(frozen=True)
class FocusConfig:
    """Hyper-parameters of the Focus multilevel concentration pipeline.

    Attributes:
        block_frames: Temporal extent of the SIC comparison block
            (``f`` in the paper's ``f x h x w`` notation; default 2).
        block_height: Spatial height of the comparison block (default 2).
        block_width: Spatial width of the comparison block (default 2).
        vector_size: Length of the sub-token vectors compared by the
            similarity concentrator (Table I: 32).
        similarity_threshold: Cosine-similarity threshold above which a
            vector is considered redundant (Table I: 0.9).
        m_tile: GEMM output-tile height; similarity gathering never
            crosses a tile boundary (Table I: 1024).
        n_tile: GEMM output-tile width, equal to the vector size and to
            the systolic-array width ``a`` (Table I: 32).
        retention_schedule: Map from layer index to the fraction of the
            *original* image-token count retained from that layer on.
        schedule_depth: Depth of the model the schedule was written for;
            schedules are rescaled proportionally for other depths.
        max_sorter_lanes: Width ``a`` of the streaming bubble sorter.
        scatter_accumulators: Number of parallel accumulators in the
            similarity scatter (Fig. 10(d) optimum: 64).
        fp16: Whether activations are rounded through FP16 between
            layers, matching the FP16-multiplier datapath.
        matcher: Similarity-matcher implementation: ``"wavefront"``
            (level-scheduled, batched — the default) or
            ``"reference"`` (the retained row-at-a-time oracle).  Both
            produce bit-identical representatives; the escape hatch
            exists for A/B debugging (CLI ``--matcher``).
        forward_batch: Samples stacked into one cross-sample batched
            forward pass (CLI ``--forward-batch``).  ``1`` runs the
            retained per-sample loop — the parity oracle; any value
            produces bit-identical per-sample results, only wall-clock
            changes.  Methods without a batched implementation fall
            back to the serial loop.
    """

    block_frames: int = 2
    block_height: int = 2
    block_width: int = 2
    vector_size: int = 32
    similarity_threshold: float = 0.9
    m_tile: int = 1024
    n_tile: int = 32
    retention_schedule: dict[int, float] = field(
        default_factory=_default_retention_schedule
    )
    schedule_depth: int = 28
    max_sorter_lanes: int = 32
    scatter_accumulators: int = 64
    fp16: bool = True
    matcher: str = "wavefront"
    forward_batch: int = 1

    def __post_init__(self) -> None:
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must lie in (0, 1]")
        if self.m_tile <= 0 or self.n_tile <= 0:
            raise ValueError("tile dimensions must be positive")
        if min(self.block_frames, self.block_height, self.block_width) < 1:
            raise ValueError("block dimensions must be >= 1")
        if self.matcher not in ("wavefront", "reference"):
            raise ValueError(
                f"matcher must be 'wavefront' or 'reference', "
                f"got {self.matcher!r}"
            )
        if self.forward_batch < 1:
            raise ValueError("forward_batch must be >= 1")
        for layer, ratio in self.retention_schedule.items():
            if layer < 0:
                raise ValueError(f"retention layer {layer} must be >= 0")
            if not 0.0 < ratio <= 1.0:
                raise ValueError(f"retention ratio {ratio} must lie in (0, 1]")

    @property
    def block_size(self) -> int:
        """Number of vectors per comparison block (8 for 2x2x2)."""
        return self.block_frames * self.block_height * self.block_width

    def scaled_schedule(self, num_layers: int) -> dict[int, float]:
        """Rescale the retention schedule to a model with ``num_layers``.

        The paper's schedule targets a 28-layer LLM; our scaled-down
        models are shallower, so schedule layer indices are remapped
        proportionally while the retention ratios are preserved.

        Returns:
            Mapping from layer index (in the target model) to retention
            ratio, with collisions resolved in favour of the *smaller*
            ratio (pruning is monotone through depth).
        """
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        scaled: dict[int, float] = {}
        for layer, ratio in sorted(self.retention_schedule.items()):
            new_layer = round(layer * num_layers / self.schedule_depth)
            new_layer = min(max(new_layer, 0), num_layers - 1)
            current = scaled.get(new_layer, 1.0)
            scaled[new_layer] = min(current, ratio)
        return scaled

    def with_overrides(self, **kwargs: object) -> "FocusConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = FocusConfig()
"""Module-level default matching Table I of the paper."""
