"""Shared stdlib-asyncio HTTP/1.1 plumbing for the serving surfaces.

Both frontends — the experiment server (:mod:`repro.serve.server`) and
the remote cache object store (:mod:`repro.remote.cache_server`) —
speak the same deliberately minimal dialect: one request per
connection, ``Connection: close``, no TLS, no chunked bodies.  This
module holds the pieces they share: request parsing, response framing,
and the :class:`HttpError` routed straight to a JSON error response.
Front either server with a real proxy for anything public.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

STATUS_TEXT = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 410: "Gone", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Routed straight to a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def read_request(
    reader: asyncio.StreamReader, max_body: int | None = None
):
    """Parse one request; ``None`` for malformed/truncated ones.

    Returns ``(method, target, headers, body)`` with lower-cased
    header names.  ``max_body`` rejects oversized uploads with
    :class:`HttpError` 413 *before* buffering them.
    """
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if max_body is not None and length > max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds the "
                f"{max_body}-byte limit"
            )
        if length:
            body = await read_body(reader, length)
    except (ConnectionResetError, asyncio.IncompleteReadError,
            asyncio.LimitOverrunError, ValueError):
        return None  # malformed or truncated request: just drop it
    return method.upper(), target, headers, body


async def read_body(reader: asyncio.StreamReader, length: int) -> bytes:
    """Read an exact-length body in chunks, immune to the stream's
    ``limit`` (``readexactly`` honors it; large cache objects don't)."""
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = await reader.read(min(remaining, 1 << 20))
        if not chunk:
            raise asyncio.IncompleteReadError(b"".join(chunks), length)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def header_block(
    status: int, content_type: str, extra: dict[str, str] | None = None,
) -> bytes:
    """Response headers for a streamed (unframed-length) body."""
    lines = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        "Cache-Control: no-cache",
        "Connection: close",
    ]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def respond_bytes(
    writer: asyncio.StreamWriter, status: int, body: bytes,
    content_type: str = "application/octet-stream",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """One complete fixed-length response; swallows a vanished client."""
    head = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    try:
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if body:
            writer.write(body)
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass


async def respond_json(
    writer: asyncio.StreamWriter, status: int, payload: Any,
) -> None:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    await respond_bytes(
        writer, status, body, content_type="application/json"
    )
