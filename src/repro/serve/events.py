"""Canonical JSON codec for streamed experiment events.

Every frontend — the SSE/JSON-lines HTTP server in
:mod:`repro.serve.server`, the CLI's ``--progress-jsonl`` emitter, CI
smoke clients — speaks this one schema, so an offline run and a served
run of the same spec produce byte-comparable event streams.

Wire format
-----------

Each event is one JSON object with at least:

``schema``
    Integer schema version (:data:`EVENT_SCHEMA_VERSION`).  Consumers
    must reject events from a *newer* schema than they understand
    (:func:`parse_event` does).
``event``
    ``"progress"`` for engine :class:`~repro.engine.scheduler.
    ProgressEvent` wrappers, one of the run-lifecycle names
    (``run-started`` and the :data:`TERMINAL_EVENTS`:
    ``run-done`` / ``run-partial`` / ``run-failed`` /
    ``run-cancelled``), or ``"gap"`` (:func:`encode_gap`) when a
    replay hole could not be bridged.
``seq``
    The engine's monotonic sequence number for progress events; ``0``
    for lifecycle events (their ordering comes from the per-run log
    ``id`` the server assigns at append time).

Progress events add ``action`` (``cache-hit`` / ``started`` /
``completed`` / ``eval-shard-done`` plus the fault-tolerance
lifecycle ``retrying`` / ``gave-up`` / ``quarantined``), the encoded
``job`` (kind, model, dataset, method, sample count, seed, config
digest, quantized flag, extras, content address, human label), the
batch counters ``completed`` / ``total``, ``elapsed_s``, and the
action-specific ``detail`` payload (for ``eval-shard-done``, the
parent cell's running accuracy/sparsity; for the fault actions, the
retry counters or the structured :class:`~repro.engine.faults.
JobFailure` record).  All payloads are pre-flattened to JSON-native
types (tuples to lists, NumPy scalars to Python numbers) so
``json.dumps`` round-trips them losslessly.

Schema history: v1 had neither the fault-action progress events nor
``run-partial``; v2 added both.  Later, still within v2, ``run-done``
and ``run-partial`` gained the *optional* ``cache`` field (the run's
cache activity split by serving tier: ``memory`` / ``disk`` /
``remote`` hits plus totals) — purely additive fields never bump the
schema, and consumers must tolerate their absence.  :func:`parse_event`
accepts any schema up to its own version, so v1 streams stored by
older builds still replay.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

from repro.engine.jobs import EvalJob, config_digest
from repro.engine.scheduler import ProgressEvent

EVENT_SCHEMA_VERSION = 2
"""Bumped whenever the event wire format changes incompatibly."""

PROGRESS_ACTIONS = (
    "cache-hit", "started", "completed", "eval-shard-done",
    "retrying", "gave-up", "quarantined",
)
"""Every ``action`` the engine scheduler emits."""

TERMINAL_EVENTS = ("run-done", "run-partial", "run-failed", "run-cancelled")
"""Event names that end a run's stream; nothing follows them."""


def jsonify(value: Any) -> Any:
    """Flatten a payload to JSON-native types, losslessly round-trippable.

    Tuples become lists, NumPy scalars become Python numbers, mappings
    recurse; anything else unsupported falls back to ``repr`` so an
    exotic detail payload degrades to a string instead of killing the
    stream.
    """
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def encode_job(job: EvalJob) -> dict[str, Any]:
    """Encode a job's full identity (never its opaque payload)."""
    return {
        "kind": job.kind,
        "model": job.model,
        "dataset": job.dataset,
        "method": job.method,
        "num_samples": job.num_samples,
        "seed": job.seed,
        "quantized": job.quantized,
        "config_digest": config_digest(job.config),
        "extra": jsonify(job.extra),
        "job_id": job.job_id,
        "label": job.describe(),
    }


def encode_progress(event: ProgressEvent) -> dict[str, Any]:
    """Encode one engine :class:`ProgressEvent` as a wire event."""
    return {
        "schema": EVENT_SCHEMA_VERSION,
        "event": "progress",
        "action": event.action,
        "seq": event.seq,
        "completed": event.completed,
        "total": event.total,
        "elapsed_s": float(event.elapsed_s),
        "job": encode_job(event.job),
        "detail": jsonify(event.detail),
    }


def _lifecycle(name: str, run_id: str, **fields: Any) -> dict[str, Any]:
    payload = {
        "schema": EVENT_SCHEMA_VERSION,
        "event": name,
        "seq": 0,
        "run_id": run_id,
    }
    payload.update(fields)
    return payload


def encode_run_started(
    run_id: str, experiments: list[str], params: Mapping[str, Any]
) -> dict[str, Any]:
    """First event of every run: what was launched, with which params."""
    return _lifecycle(
        "run-started", run_id,
        experiments=list(experiments), params=jsonify(dict(params)),
    )


def report_digest(text: str) -> str:
    """Content digest of a formatted report, carried by ``run-done``.

    Lets a streaming client verify — without fetching the artifact —
    that the served result is byte-identical to an offline run's.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def encode_run_done(
    run_id: str, reports: Mapping[str, str], elapsed_s: float,
    cache_tiers: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Terminal success event; carries per-report content digests.

    ``cache_tiers`` (optional, additive) is the run's cache activity
    split by serving tier — the server passes the per-run delta of
    :meth:`repro.engine.cache.CacheStats.tiers` plus hit/miss totals.
    """
    event = _lifecycle(
        "run-done", run_id,
        elapsed_s=float(elapsed_s),
        reports={
            name: {"sha256": report_digest(text), "chars": len(text)}
            for name, text in reports.items()
        },
    )
    if cache_tiers is not None:
        event["cache"] = jsonify(dict(cache_tiers))
    return event


def encode_run_partial(
    run_id: str,
    reports: Mapping[str, str],
    failures: Mapping[str, Any],
    elapsed_s: float,
    cache_tiers: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Terminal partial-success event (``on_error="collect"`` runs).

    Carries the same per-report content digests as ``run-done`` —
    failed experiments' reports are their deterministic failure
    summaries — plus ``failures``: per failed experiment, the list of
    structured :meth:`~repro.engine.faults.JobFailure.as_detail`
    records (job key, kind, attempts, tracebacks).  ``cache_tiers``
    is the same optional additive field as on ``run-done``.
    """
    event = _lifecycle(
        "run-partial", run_id,
        elapsed_s=float(elapsed_s),
        reports={
            name: {"sha256": report_digest(text), "chars": len(text)}
            for name, text in reports.items()
        },
        failures=jsonify(dict(failures)),
    )
    if cache_tiers is not None:
        event["cache"] = jsonify(dict(cache_tiers))
    return event


def encode_run_failed(
    run_id: str, error: str, elapsed_s: float
) -> dict[str, Any]:
    """Terminal failure event."""
    return _lifecycle(
        "run-failed", run_id, error=error, elapsed_s=float(elapsed_s)
    )


def encode_run_cancelled(run_id: str, elapsed_s: float) -> dict[str, Any]:
    """Terminal cancellation event."""
    return _lifecycle("run-cancelled", run_id, elapsed_s=float(elapsed_s))


def is_terminal(event: Mapping[str, Any]) -> bool:
    """Whether an encoded event ends its run's stream."""
    return event.get("event") in TERMINAL_EVENTS


def to_json(event: Mapping[str, Any]) -> str:
    """Canonical single-line JSON: sorted keys, no whitespace."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def parse_event(line: str | bytes) -> dict[str, Any]:
    """Decode one wire event, enforcing the schema version.

    Raises:
        ValueError: If the payload is not an object, lacks a schema
            tag, or comes from a newer schema than this codec.
    """
    event = json.loads(line)
    if not isinstance(event, dict):
        raise ValueError(f"event must be a JSON object, got {type(event)}")
    schema = event.get("schema")
    if not isinstance(schema, int):
        raise ValueError("event missing integer 'schema' field")
    if schema > EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"event schema {schema} is newer than supported "
            f"{EVENT_SCHEMA_VERSION}"
        )
    return event


def encode_gap(dropped: int, next_id: int, first_seq: int) -> dict[str, Any]:
    """Marker for an unbridgeable hole in a replayed stream.

    Emitted only when the ring evicted events *and* no run store can
    supply them.  ``id`` is the id of the last dropped event (so a
    client resuming from the gap's id continues exactly at the first
    retained event) and ``seq`` is the engine sequence number of the
    first *retained* event — a client tracking its cursor by ``seq``
    moves forward past the hole instead of regressing to 0.
    """
    return {
        "schema": EVENT_SCHEMA_VERSION,
        "event": "gap",
        "seq": first_seq,
        "dropped": dropped,
        "id": next_id,
    }


# -- SSE framing ------------------------------------------------------

SSE_RETRY_PREAMBLE = "retry: 2000\n\n"
"""First bytes of every SSE stream (live or replayed): the standard
reconnect-delay hint, written before any frame."""


def frame(event: Mapping[str, Any], jsonl: bool) -> bytes:
    """Frame one encoded event exactly as the live server streams it.

    Shared by the HTTP frontend and ``repro replay`` so a replayed
    stream is byte-identical to the recorded live one by construction.
    """
    if jsonl:
        return (to_json(event) + "\n").encode("utf-8")
    return format_sse(event).encode("utf-8")


def format_sse(event: Mapping[str, Any]) -> str:
    """Frame one encoded event as a Server-Sent-Events message.

    The SSE ``id`` is the per-run log id (``event["id"]``) when the
    server has assigned one, so browsers reconnect with a correct
    ``Last-Event-ID`` automatically; the ``event`` field is the
    codec's event name, and ``data`` is the canonical JSON line.
    """
    lines = []
    if "id" in event:
        lines.append(f"id: {event['id']}")
    lines.append(f"event: {event['event']}")
    lines.append(f"data: {to_json(event)}")
    return "\n".join(lines) + "\n\n"


def parse_sse(text: str) -> list[dict[str, Any]]:
    """Parse an SSE stream back into its decoded ``data`` events.

    Comment lines (``:``) and bare ``retry:`` hints are skipped; each
    blank-line-terminated message must carry a ``data:`` line holding
    one codec event.  Used by tests and the CI smoke client — a real
    browser's ``EventSource`` does the equivalent.
    """
    events = []
    for block in text.split("\n\n"):
        data_lines = [
            line[5:].lstrip() if line.startswith("data:") else None
            for line in block.split("\n")
        ]
        payload = [line for line in data_lines if line is not None]
        if payload:
            events.append(parse_event("\n".join(payload)))
    return events
