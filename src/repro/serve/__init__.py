"""Streaming serving layer: async engine bridge, event codec, HTTP/SSE.

See ``src/repro/engine/ARCHITECTURE.md`` ("Streaming & serving") for
the design note, and :mod:`repro.serve.server` for the HTTP surface.
"""

from repro.serve.async_engine import (
    DEFAULT_QUEUE_SIZE,
    AsyncExperimentEngine,
    AsyncRun,
    RunCancelled,
)
from repro.serve.events import (
    EVENT_SCHEMA_VERSION,
    PROGRESS_ACTIONS,
    TERMINAL_EVENTS,
    encode_progress,
    encode_run_cancelled,
    encode_run_done,
    encode_run_failed,
    encode_run_started,
    format_sse,
    is_terminal,
    parse_event,
    parse_sse,
    to_json,
)

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "AsyncExperimentEngine",
    "AsyncRun",
    "RunCancelled",
    "EVENT_SCHEMA_VERSION",
    "PROGRESS_ACTIONS",
    "TERMINAL_EVENTS",
    "encode_progress",
    "encode_run_cancelled",
    "encode_run_done",
    "encode_run_failed",
    "encode_run_started",
    "format_sse",
    "is_terminal",
    "parse_event",
    "parse_sse",
    "to_json",
]
