"""Async streaming layer over :class:`~repro.engine.scheduler.ExperimentEngine`.

The engine's progress callbacks are synchronous and fire on the thread
driving :meth:`ExperimentEngine.run`.  :class:`AsyncExperimentEngine`
bridges them onto an :mod:`asyncio` event loop: each launched run
executes the blocking schedule on a worker thread, and its events flow
through an :class:`asyncio.Queue` fed with
``loop.call_soon_threadsafe`` — with *real* backpressure, because the
producer side blocks on a bounded semaphore whose slots the async
consumer releases as it drains.  A slow consumer therefore throttles
the engine thread instead of buffering unboundedly.

Cancellation is clean: :meth:`AsyncRun.cancel` (or abandoning the
event stream) makes the next engine callback raise
:class:`RunCancelled` inside the engine thread, which the scheduler
turns into "cancel all pending pool futures, wait for them, re-raise"
— the worker processes are released, the shared engine stays usable
for other concurrent runs.

Many runs can share one engine (and its :class:`~repro.engine.cache.
ResultCache`): each run's events are scoped by the engine's
batch-local ``progress`` callback, so streams never cross.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, AsyncIterator

from repro.engine import registry
from repro.engine.faults import ExperimentFailure
from repro.engine.scheduler import ExperimentEngine, ProgressEvent

DEFAULT_QUEUE_SIZE = 256
"""Events buffered per run before backpressure throttles the engine."""


class RunCancelled(RuntimeError):
    """Raised inside a cancelled run's engine thread, and by
    :meth:`AsyncRun.result` when awaiting a cancelled run."""


class _Done:
    """Queue sentinel: the engine thread finished (result or error)."""


_DONE = _Done()


class AsyncRun:
    """One launched experiment schedule and its live event stream.

    Create through :meth:`AsyncExperimentEngine.launch`.  The run is
    already executing when the constructor returns; consume
    :meth:`events` to stream it and :meth:`result` to collect the
    assembled artifacts.

    The event stream has exactly one consumer — this handle.  Fanning
    one run out to many clients is the serving layer's job
    (:mod:`repro.serve.server` appends events to a per-run ring buffer
    that any number of subscribers replay).  Abandoning :meth:`events`
    before the terminal sentinel cancels the run so a blocked producer
    can never leak.
    """

    def __init__(
        self,
        engine: ExperimentEngine,
        names: list[str],
        params: dict[str, Any],
        queue_size: int = DEFAULT_QUEUE_SIZE,
        on_error: str = "raise",
    ) -> None:
        self.names = list(names)
        self.params = dict(params)
        self.on_error = on_error
        self._engine = engine
        self._loop = asyncio.get_running_loop()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._slots = threading.BoundedSemaphore(max(1, queue_size))
        self._cancel = threading.Event()
        self._consumed = False
        self._future = self._loop.run_in_executor(None, self._execute)
        # Runs on the loop once the engine thread finishes, so the
        # consumer wakes even when the run dies before emitting.
        self._future.add_done_callback(
            lambda _f: self._queue.put_nowait(_DONE)
        )

    # -- engine-thread side ------------------------------------------

    def _on_event(self, event: ProgressEvent) -> None:
        """Engine progress callback (runs on the engine thread)."""
        while not self._slots.acquire(timeout=0.1):
            if self._cancel.is_set():
                raise RunCancelled(f"run of {self.names} cancelled")
        if self._cancel.is_set():
            self._slots.release()
            raise RunCancelled(f"run of {self.names} cancelled")
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, event)
        except RuntimeError:
            # The loop is gone (event-loop shutdown raced a live run,
            # e.g. a serve restart): abort the schedule like a
            # cancellation instead of leaking an unhandled exception
            # on the engine thread.
            self._slots.release()
            raise RunCancelled(
                f"run of {self.names} cancelled (event loop closed)"
            ) from None

    def _execute(self) -> dict[str, Any]:
        """Blocking body: one deduplicated schedule over all names."""
        if self._cancel.is_set():
            raise RunCancelled(f"run of {self.names} cancelled")
        return registry.run_experiments(
            self.names, self._engine, progress=self._on_event,
            on_error=self.on_error, **self.params,
        )

    # -- loop side ----------------------------------------------------

    def cancel(self) -> None:
        """Request cancellation (idempotent, takes effect at the next
        event): pending pool futures are cancelled and awaited, worker
        processes return to the shared pool."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def done(self) -> bool:
        """Whether the engine thread has finished (any outcome)."""
        return self._future.done()

    @property
    def state(self) -> str:
        """The run's lifecycle state: ``"running"`` while the engine
        thread works, then a terminal one of ``"cancelled"``,
        ``"failed"``, ``"partial"`` (an ``on_error="collect"`` run
        finished but some experiments carry
        :class:`~repro.engine.faults.ExperimentFailure`), or
        ``"done"``."""
        if not self._future.done():
            return "running"
        if self._future.cancelled():
            return "cancelled"
        exc = self._future.exception()
        if exc is not None:
            return "cancelled" if isinstance(exc, RunCancelled) else "failed"
        results = self._future.result()
        if any(
            isinstance(value, ExperimentFailure)
            for value in results.values()
        ):
            return "partial"
        return "done"

    async def events(self) -> AsyncIterator[ProgressEvent]:
        """Stream this run's :class:`ProgressEvent`s in engine order.

        Ends when the run finishes (then await :meth:`result` for the
        outcome).  Closing the iterator early cancels the run.
        """
        if self._consumed:
            raise RuntimeError(
                "AsyncRun.events() is single-consumer; fan out through "
                "the serving layer's ring buffer instead"
            )
        self._consumed = True
        try:
            while True:
                item = await self._queue.get()
                if item is _DONE:
                    break
                self._slots.release()
                yield item
        finally:
            if not self.done():
                self.cancel()
                # Unblock a producer waiting on a full queue.
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is not _DONE:
                        self._slots.release()

    async def result(self) -> dict[str, Any]:
        """Await the run; return assembled results keyed by name.

        Raises :class:`RunCancelled` for cancelled runs and re-raises
        whatever the schedule raised for failed ones.
        """
        return await asyncio.shield(self._future)


class AsyncExperimentEngine:
    """Async facade running registry specs on a shared blocking engine.

    Args:
        engine: The underlying engine; a fresh serial one by default.
            Concurrent runs share its worker pool and result cache.
        queue_size: Per-run event buffer; a consumer further than this
            many events behind blocks the run's engine thread
            (backpressure) rather than growing the queue.
    """

    def __init__(
        self,
        engine: ExperimentEngine | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        self.engine = engine if engine is not None else ExperimentEngine()
        self.queue_size = queue_size

    def launch(
        self, names: list[str], on_error: str = "raise", **params: Any
    ) -> AsyncRun:
        """Start one run (requires a running event loop).

        ``params`` go to every plan factory (``num_samples``, ``seed``,
        ``matcher``, ...).  Unknown experiment names raise ``KeyError``
        here, before anything is scheduled.  ``on_error="collect"``
        selects partial-results mode (see
        :meth:`ExperimentEngine.run`); the run then terminates in
        state ``"partial"`` instead of ``"failed"`` when jobs were
        permanently lost.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(
                f'on_error must be "raise" or "collect", got {on_error!r}'
            )
        for name in names:
            registry.get_spec(name)  # validate eagerly
        return AsyncRun(
            self.engine, names, params, queue_size=self.queue_size,
            on_error=on_error,
        )

    async def run(
        self, names: list[str], **params: Any
    ) -> AsyncIterator[ProgressEvent]:
        """Launch and stream one run's events; raise if the run failed.

        The one-liner entry point the examples use::

            async for event in async_engine.run(["fig11"], num_samples=2):
                ...

        For the assembled results, use :meth:`launch` and the
        :class:`AsyncRun` handle instead.
        """
        run = self.launch(names, **params)
        async for event in run.events():
            yield event
        await run.result()  # surface failures to the caller

    async def warm_up(self) -> None:
        """Fork the engine's worker processes now (see
        :meth:`ExperimentEngine.warm_up`).  A serving frontend calls
        this before binding its listening socket, so forked workers
        can never inherit client connection descriptors."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.engine.warm_up
        )

    async def close(self) -> None:
        """Release the underlying engine's worker pool."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.engine.close
        )
