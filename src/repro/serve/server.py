"""Stdlib-only asyncio HTTP frontend streaming experiment progress.

``python -m repro.cli serve`` (or ``python -m repro.serve.server``)
starts a single-process server that launches registry specs and fans
their live event streams out to any number of clients:

``POST /runs``
    Launch a run.  JSON body: ``{"experiments": ["table2", ...],
    "samples": N, "seed": S, "matcher": "wavefront",
    "on_error": "raise"|"collect"}`` (everything but ``experiments``
    optional).  ``on_error: "collect"`` selects partial-results mode:
    jobs that permanently fail (see :mod:`repro.engine.faults`) cost
    their experiment, not the run, which then terminates with a
    ``run-partial`` event and status ``partial``.  Responds ``201``
    with the run id and the events/result URLs.  All runs share one
    :class:`~repro.engine.scheduler.ExperimentEngine` and one
    :class:`~repro.engine.cache.ResultCache`: a spec overlapping any
    *finished* run is served from the cache; runs launched
    concurrently may each execute shared jobs (dedupe is per
    schedule, the cache joins completed ones).
``GET /runs/{id}/events``
    The run's event stream as Server-Sent Events (or JSON lines with
    ``?format=jsonl``).  Events replay from a per-run ring buffer, so
    subscribers can join late, resume with ``Last-Event-ID`` (header
    or ``?last_event_id=N``) after a dropped connection without losing
    events, and any number can stream one run concurrently; the
    stream ends after the terminal event.  With the durable run store
    (on by default; ``--store-path``/``--no-store``) every event also
    writes through to SQLite, so resume stays lossless after the ring
    evicts *and* across server restarts — a run recorded before a
    restart replays byte-identically from the store, and ``repro
    replay <run-id>`` does the same offline.
``GET /runs/{id}/result``
    The assembled artifact: per-experiment reports rendered by the
    same formatters as the offline CLI — byte-identical to an offline
    run of the same spec.  ``409`` while the run is still streaming.
``DELETE /runs/{id}``
    Cancel a run; its workers return to the shared pool.
``GET /runs``, ``GET /runs/{id}``, ``GET /experiments``, ``GET /healthz``
    Introspection: run listing/status, the registry catalog, liveness.
``POST /jobs``
    Fleet execute endpoint (see :mod:`repro.remote.dispatch`): a
    pickled job batch runs through this server's engine — cache,
    pool, retries and all — and the per-job results return as
    digest-carrying canonical payload bytes.  This is what makes any
    ``repro serve`` process usable as a ``--peers`` target.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, no TLS) — it is the reproduction's serving surface, not a
general web server; front it with a real proxy for anything public.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import secrets
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable
from urllib.parse import parse_qs, urlsplit

from repro.engine import registry
from repro.engine.faults import ExperimentFailure, JobFailure
from repro.serve import events as codec
from repro.serve.async_engine import (
    AsyncExperimentEngine,
    AsyncRun,
    RunCancelled,
)
from repro.serve.http import (
    HttpError,
    header_block,
    read_request,
    respond_bytes,
    respond_json,
)
from repro.store.runstore import DEFAULT_STORE_PATH, RunStore

DEFAULT_PORT = 8377
MAX_BODY_BYTES = 1 << 30
"""Request-body ceiling; ``POST /jobs`` batches carry pickled job
payloads (e.g. sim traces), everything else is small JSON."""
DEFAULT_RING_SIZE = 65536
DEFAULT_MAX_FINISHED_RUNS = 256
"""Terminal runs retained (with their event logs and reports) before
the oldest are evicted — bounds an always-on server's memory.  With a
run store attached, evicted runs stay reachable from SQLite."""


class RunLog:
    """Per-run append-only event log: ring-buffer cache over the store.

    Events get contiguous ids ``1..n`` at append time; subscribers
    replay any retained suffix by id and block on an
    :class:`asyncio.Condition` for live tail-follow.  With a
    :class:`~repro.store.runstore.RunStore` attached, every append
    *writes through* to SQLite before it lands in the ring, so the
    ring is purely a cache: :meth:`events_since` bridges any evicted
    prefix from the store and resume stays lossless at every ring
    size.  Without a store, an overflowing stream drops its oldest
    events and :meth:`events_since` reports the gap.
    """

    STORE_CHUNK = 4096
    """Events fetched from SQLite per bridging query — bounds one
    response batch while a subscriber catches up over a huge log."""

    def __init__(
        self,
        capacity: int = DEFAULT_RING_SIZE,
        store: RunStore | None = None,
        run_id: str | None = None,
    ) -> None:
        self.capacity = max(1, capacity)
        self.store = store
        self.run_id = run_id
        self._events: deque[dict[str, Any]] = deque()
        self._first_id = 1  # id of _events[0] when non-empty
        self._next_id = 1
        self.closed = False
        self._cond = asyncio.Condition()

    @property
    def last_id(self) -> int:
        return self._next_id - 1

    async def append(self, event: dict[str, Any]) -> dict[str, Any]:
        """Assign the next id, persist, retain, and wake subscribers."""
        stamped = dict(event)
        async with self._cond:
            stamped["id"] = self._next_id
            self._next_id += 1
            if self.store is not None:
                try:
                    self.store.append_event(self.run_id, stamped)
                except Exception as exc:
                    # Never let a sick store kill a live stream: shed
                    # the durable tier and keep serving from the ring.
                    print(
                        f"repro-serve: run-store write failed for "
                        f"{self.run_id} ({type(exc).__name__}: {exc}); "
                        "continuing ring-only", file=sys.stderr,
                    )
                    self.store = None
            self._events.append(stamped)
            while len(self._events) > self.capacity:
                self._events.popleft()
                self._first_id += 1
            if codec.is_terminal(stamped):
                self.closed = True
            self._cond.notify_all()
        return stamped

    def events_since(
        self, last_id: int
    ) -> tuple[list[dict[str, Any]], int]:
        """Events with id > ``last_id``, plus the unbridgeable drop count.

        Served from the ring when retained; a prefix the ring evicted
        is bridged from the run store (in :attr:`STORE_CHUNK` slices,
        so one call never materializes an unbounded backlog — callers
        advance past the returned batch and call again).  The second
        element is how many requested events are gone from *both*
        tiers (0 in the lossless case).  Ring cost is proportional to
        the suffix returned, so a live tail pays O(1) per event.
        """
        events, dropped = self._ring_since(last_id)
        if not dropped or self.store is None:
            return events, dropped
        bridge = self.store.events_since(
            self.run_id, last_id, limit=min(dropped, self.STORE_CHUNK)
        )
        if bridge and bridge[-1]["id"] - last_id == len(bridge):
            if len(bridge) == dropped:
                return bridge + events, 0
            return bridge, 0  # partial bridge: caller resumes after it
        return events, dropped  # store can't bridge: report the gap

    def _ring_since(
        self, last_id: int
    ) -> tuple[list[dict[str, Any]], int]:
        if not self._events:
            return [], 0
        dropped = max(0, self._first_id - 1 - last_id)
        start = max(0, last_id + 1 - self._first_id)
        count = len(self._events) - start
        if count <= 0:
            return [], dropped
        if count < start:
            # Short suffix of a long log (the live-tail case): walk in
            # from the right instead of skipping the whole prefix.
            suffix = list(itertools.islice(reversed(self._events), count))
            suffix.reverse()
            return suffix, dropped
        return list(itertools.islice(self._events, start, None)), dropped

    async def wait_beyond(self, last_id: int) -> None:
        """Block until an event with id > ``last_id`` exists or the
        stream is closed."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: self.last_id > last_id or self.closed
            )


@dataclass
class Run:
    """Server-side state of one launched run."""

    run_id: str
    experiments: list[str]
    params: dict[str, Any]
    log: RunLog
    handle: AsyncRun
    status: str = "running"  # running | done | partial | failed | cancelled
    on_error: str = "raise"
    error: str | None = None
    reports: dict[str, str] = field(default_factory=dict)
    failures: dict[str, Any] = field(default_factory=dict)
    started: float = field(default_factory=time.monotonic)
    pump: asyncio.Task | None = None
    cache_before: Any = None  # CacheStats snapshot at launch
    # Subscriber fan-out counters (event-stream connections).
    subscribers_active: int = 0
    subscribers_total: int = 0
    subscribers_peak: int = 0

    def describe(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "status": self.status,
            "experiments": list(self.experiments),
            "params": codec.jsonify(self.params),
            "on_error": self.on_error,
            "events_logged": self.log.last_id,
            "error": self.error,
            "failed_experiments": sorted(self.failures),
            "subscribers": {
                "active": self.subscribers_active,
                "total": self.subscribers_total,
                "peak": self.subscribers_peak,
            },
            "events_url": f"/runs/{self.run_id}/events",
            "result_url": f"/runs/{self.run_id}/result",
        }


class ServeApp:
    """Routing + run lifecycle over one shared async engine."""

    def __init__(
        self,
        engine: AsyncExperimentEngine | None = None,
        ring_size: int = DEFAULT_RING_SIZE,
        max_finished_runs: int = DEFAULT_MAX_FINISHED_RUNS,
        store: RunStore | None = None,
    ) -> None:
        self.engine = (
            engine if engine is not None else AsyncExperimentEngine()
        )
        self.ring_size = ring_size
        self.max_finished_runs = max(1, max_finished_runs)
        self.store = store
        self.runs: dict[str, Run] = {}

    def _evict_finished_runs(self) -> None:
        """Keep at most ``max_finished_runs`` terminal runs.

        Evicted runs' logs and reports are dropped (their cached job
        results live on in the engine's ``ResultCache``); live runs
        are never evicted, so ``runs`` stays bounded by live traffic
        plus the retention cap instead of growing forever.
        """
        finished = [run_id for run_id, run in self.runs.items()
                    if run.status != "running"]
        for run_id in finished[:max(0, len(finished)
                                    - self.max_finished_runs)]:
            del self.runs[run_id]

    # -- run lifecycle -----------------------------------------------

    async def start_run(self, spec: dict[str, Any]) -> Run:
        """Validate a POSTed spec, launch it, and start its pump."""
        if not isinstance(spec, dict):
            raise HttpError(400, "body must be a JSON object")
        names = spec.get("experiments")
        if (
            not isinstance(names, list) or not names
            or not all(isinstance(n, str) for n in names)
        ):
            raise HttpError(
                400, "'experiments' must be a non-empty list of names"
            )
        available = registry.experiment_names()
        unknown = [n for n in names if n not in available]
        if unknown:
            raise HttpError(
                400,
                f"unknown experiments {unknown}; "
                f"available: {sorted(available)}",
            )
        try:
            params: dict[str, Any] = {"seed": int(spec.get("seed", 0))}
            if spec.get("samples") is not None:
                params["num_samples"] = int(spec["samples"])
        except (TypeError, ValueError) as exc:
            raise HttpError(
                400, f"'samples'/'seed' must be integers: {exc}"
            ) from None
        if spec.get("matcher") is not None:
            params["matcher"] = str(spec["matcher"])
        if spec.get("scenario") is not None:
            if list(names) != ["scenario"]:
                raise HttpError(
                    400, "'scenario' only applies to the 'scenario' "
                    "experiment"
                )
            from repro.workloads.scenarios import parse_scenario

            try:
                # Canonicalized: every spelling of one spec shares one
                # content-addressed schedule.
                params["scenario"] = parse_scenario(
                    str(spec["scenario"])
                ).name
            except ValueError as exc:
                raise HttpError(400, f"bad scenario spec: {exc}") from None
        on_error = spec.get("on_error", "raise")
        if on_error not in ("raise", "collect"):
            raise HttpError(
                400, "'on_error' must be \"raise\" or \"collect\", "
                f"got {on_error!r}"
            )

        self._evict_finished_runs()
        run_id = secrets.token_hex(8)
        if self.store is not None:
            self.store.create_run(run_id, list(names), params)
        run = Run(
            run_id=run_id,
            experiments=list(names),
            params=params,
            on_error=on_error,
            log=RunLog(self.ring_size, store=self.store, run_id=run_id),
            cache_before=self.engine.engine.cache.stats.snapshot(),
            handle=self.engine.launch(
                list(names), on_error=on_error, **params
            ),
        )
        self.runs[run_id] = run
        await run.log.append(
            codec.encode_run_started(run_id, run.experiments, params)
        )
        run.pump = asyncio.ensure_future(self._pump(run))
        return run

    async def _pump(self, run: Run) -> None:
        """Single consumer of the run's event stream; feeds the log."""
        try:
            async for event in run.handle.events():
                await run.log.append(codec.encode_progress(event))
            results = await run.handle.result()
        except (RunCancelled, asyncio.CancelledError):
            run.status = "cancelled"
            await run.log.append(codec.encode_run_cancelled(
                run.run_id, time.monotonic() - run.started
            ))
            self._persist_outcome(run)
            return
        except Exception as exc:  # schedule failed; report, keep serving
            run.status = "failed"
            run.error = f"{type(exc).__name__}: {exc}"
            await run.log.append(codec.encode_run_failed(
                run.run_id, run.error, time.monotonic() - run.started
            ))
            self._persist_outcome(run)
            return
        run.reports = {
            name: registry.format_result(name, results[name])
            for name in run.experiments
        }
        run.failures = {
            name: result.as_detail()
            for name, result in results.items()
            if isinstance(result, ExperimentFailure)
        }
        elapsed = time.monotonic() - run.started
        cache_tiers = self._cache_delta(run)
        if run.failures:
            # Collect-mode run with permanently failed jobs: partial.
            run.status = "partial"
            await run.log.append(codec.encode_run_partial(
                run.run_id, run.reports, run.failures, elapsed,
                cache_tiers=cache_tiers,
            ))
        else:
            run.status = "done"
            await run.log.append(codec.encode_run_done(
                run.run_id, run.reports, elapsed,
                cache_tiers=cache_tiers,
            ))
        self._persist_outcome(run)

    def _cache_delta(self, run: Run) -> dict[str, Any] | None:
        """The shared cache's per-tier activity over this run's life.

        Concurrent runs share one cache, so overlapping runs' deltas
        overlap too — the field reports what the cache did *while the
        run was live*, which for the common serial-usage case is
        exactly the run's own traffic.
        """
        if run.cache_before is None:
            return None
        delta = self.engine.engine.cache.stats.snapshot().delta(
            run.cache_before
        )
        tiers: dict[str, Any] = delta.tiers()
        tiers["hits"] = delta.hits
        tiers["misses"] = delta.misses
        tiers["remote_stores"] = delta.remote_stores
        return tiers

    def _persist_outcome(self, run: Run) -> None:
        """Record a terminal run's status, reports, and failures in
        the store."""
        if self.store is None:
            return
        try:
            self.store.finish_run(
                run.run_id, run.status,
                elapsed_s=time.monotonic() - run.started,
                error=run.error, reports=run.reports,
                failures=run.failures or None,
            )
        except Exception as exc:
            print(
                f"repro-serve: run-store finish failed for "
                f"{run.run_id} ({type(exc).__name__}: {exc})",
                file=sys.stderr,
            )

    def _get_run(self, run_id: str) -> Run:
        try:
            return self.runs[run_id]
        except KeyError:
            raise HttpError(404, f"no such run {run_id!r}") from None

    def _stored_run(self, run_id: str) -> dict[str, Any]:
        """A run known only to the store (finished before this process
        started, or evicted from the live table)."""
        info = self.store.get_run(run_id) if self.store else None
        if info is None:
            raise HttpError(404, f"no such run {run_id!r}")
        return info

    @staticmethod
    def _describe_stored(info: dict[str, Any]) -> dict[str, Any]:
        return {
            "run_id": info["run_id"],
            "status": info["status"],
            "experiments": list(info["experiments"]),
            "params": info["params"],
            "events_logged": info["last_event_id"],
            "error": info["error"],
            "failed_experiments": sorted(info.get("failures") or {}),
            "stored": True,
            "events_url": f"/runs/{info['run_id']}/events",
            "result_url": f"/runs/{info['run_id']}/result",
        }

    # -- HTTP plumbing ------------------------------------------------

    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one request (``Connection: close``)."""
        try:
            try:
                request = await read_request(
                    reader, max_body=MAX_BODY_BYTES
                )
            except HttpError as exc:
                await respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            if request is None:
                return
            method, target, headers, body = request
            try:
                await self._route(method, target, headers, body, writer)
            except HttpError as exc:
                await respond_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away mid-stream; run keeps going
            except Exception as exc:
                await respond_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, method: str, target: str, headers: dict[str, str],
        body: bytes, writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = {
            key: values[-1]
            for key, values in parse_qs(url.query).items()
        }

        if parts == ["healthz"] and method == "GET":
            await respond_json(writer, 200, {
                "ok": True, "runs": len(self.runs),
                "subscribers_active": sum(
                    run.subscribers_active for run in self.runs.values()
                ),
                "schema": codec.EVENT_SCHEMA_VERSION,
            })
        elif parts == ["experiments"] and method == "GET":
            await respond_json(writer, 200, {
                "experiments": list(registry.experiment_catalog()),
            })
        elif parts == ["jobs"] and method == "POST":
            await self._execute_jobs(writer, body)
        elif parts == ["runs"] and method == "POST":
            try:
                spec = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise HttpError(400, f"invalid JSON body: {exc}")
            run = await self.start_run(spec)
            await respond_json(writer, 201, run.describe())
        elif parts == ["runs"] and method == "GET":
            listing: dict[str, Any] = {
                "runs": [run.describe() for run in self.runs.values()],
            }
            if self.store is not None:
                live = set(self.runs)
                listing["stored_runs"] = [
                    self._describe_stored(info)
                    for info in self.store.list_runs()
                    if info["run_id"] not in live
                ]
            await respond_json(writer, 200, listing)
        elif len(parts) == 2 and parts[0] == "runs" and method == "GET":
            if parts[1] in self.runs:
                payload = self._get_run(parts[1]).describe()
            else:
                payload = self._describe_stored(self._stored_run(parts[1]))
            await respond_json(writer, 200, payload)
        elif len(parts) == 2 and parts[0] == "runs" and method == "DELETE":
            if parts[1] not in self.runs and self.store is not None \
                    and self.store.get_run(parts[1]) is not None:
                raise HttpError(
                    409, f"run {parts[1]!r} is not live (stored runs "
                    "cannot be cancelled)"
                )
            run = self._get_run(parts[1])
            run.handle.cancel()
            await respond_json(writer, 202, run.describe())
        elif (
            len(parts) == 3 and parts[0] == "runs"
            and parts[2] == "events" and method == "GET"
        ):
            if parts[1] in self.runs:
                await self._stream_events(
                    writer, self._get_run(parts[1]), headers, query
                )
            else:
                await self._stream_stored(
                    writer, self._stored_run(parts[1]), headers, query
                )
        elif (
            len(parts) == 3 and parts[0] == "runs"
            and parts[2] == "result" and method == "GET"
        ):
            if parts[1] in self.runs:
                await self._respond_result(
                    writer, self._get_run(parts[1])
                )
            else:
                await self._respond_stored_result(
                    writer, self._stored_run(parts[1])
                )
        else:
            raise HttpError(404, f"no route for {method} {url.path}")

    async def _execute_jobs(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        """Fleet execute endpoint: run a shipped job batch.

        The batch runs through this server's engine (its cache, pool,
        retry policy, and fault machinery — a job cached here never
        re-executes), in collect mode so one bad job costs one entry,
        not the batch.  Per-job entries return as the pickled
        :func:`repro.remote.protocol.encode_job_results` envelope:
        ``("ok", digest, canonical_bytes)`` or ``("failed", detail)``.
        Same trust model as the cache tier: pickled payloads, trusted
        network only.
        """
        from repro.remote import protocol

        try:
            jobs = protocol.decode_jobs(body)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        # The engine is thread-safe; run the blocking batch off the
        # event loop so live runs keep streaming while peers execute.
        results = await asyncio.to_thread(
            self.engine.engine.run, jobs, on_error="collect"
        )
        entries: dict[str, tuple] = {}
        for job in jobs:
            value = results[job]
            if isinstance(value, JobFailure):
                entries[job.job_id] = ("failed", value.as_detail())
            else:
                data = protocol.encode_payload(value)
                entries[job.job_id] = (
                    "ok", protocol.payload_digest(data), data
                )
        await respond_bytes(
            writer, 200, protocol.encode_job_results(entries)
        )

    async def _respond_result(
        self, writer: asyncio.StreamWriter, run: Run
    ) -> None:
        if run.status == "running":
            raise HttpError(409, f"run {run.run_id} is still running")
        if run.status == "cancelled":
            raise HttpError(410, f"run {run.run_id} was cancelled")
        if run.status == "failed":
            raise HttpError(500, f"run {run.run_id} failed: {run.error}")
        payload = {
            "run_id": run.run_id,
            "status": run.status,
            "experiments": run.reports,
            "reports": {
                name: {
                    "sha256": codec.report_digest(text),
                    "chars": len(text),
                }
                for name, text in run.reports.items()
            },
        }
        if run.status == "partial":
            payload["failures"] = codec.jsonify(run.failures)
        await respond_json(writer, 200, payload)

    @staticmethod
    def _parse_stream_query(
        headers: dict[str, str], query: dict[str, str],
    ) -> tuple[bool, int]:
        """``(jsonl, last_id)`` from the resume header/query params."""
        jsonl = query.get("format") == "jsonl"
        raw_resume = headers.get(
            "last-event-id", query.get("last_event_id", "0")
        )
        try:
            return jsonl, max(0, int(raw_resume))
        except ValueError:
            raise HttpError(
                400, f"invalid Last-Event-ID {raw_resume!r}"
            ) from None

    def _start_stream(
        self, writer: asyncio.StreamWriter, jsonl: bool
    ) -> None:
        content_type = (
            "application/x-ndjson" if jsonl else "text/event-stream"
        )
        writer.write(header_block(200, content_type))
        if not jsonl:
            writer.write(codec.SSE_RETRY_PREAMBLE.encode("latin-1"))

    async def _stream_events(
        self, writer: asyncio.StreamWriter, run: Run,
        headers: dict[str, str], query: dict[str, str],
    ) -> None:
        jsonl, last_id = self._parse_stream_query(headers, query)
        self._start_stream(writer, jsonl)
        await writer.drain()

        run.subscribers_active += 1
        run.subscribers_total += 1
        run.subscribers_peak = max(
            run.subscribers_peak, run.subscribers_active
        )
        try:
            await self._tail_events(writer, run, jsonl, last_id)
        finally:
            run.subscribers_active -= 1

    async def _tail_events(
        self, writer: asyncio.StreamWriter, run: Run,
        jsonl: bool, last_id: int,
    ) -> None:
        while True:
            batch, dropped = run.log.events_since(last_id)
            if dropped:
                # Both the ring and the store (if any) have lost part
                # of the requested replay; tell the client instead of
                # silently skipping.  The gap carries the first
                # *retained* seq so id/seq cursors move forward.
                first_seq = batch[0].get("seq", 0) if batch else 0
                gap = codec.encode_gap(
                    dropped, last_id + dropped, first_seq
                )
                writer.write(codec.frame(gap, jsonl))
                last_id += dropped
            for event in batch:
                writer.write(codec.frame(event, jsonl))
                last_id = event["id"]
            await writer.drain()
            if run.log.closed and last_id >= run.log.last_id:
                return
            if not batch and not dropped:
                await run.log.wait_beyond(last_id)

    async def _stream_stored(
        self, writer: asyncio.StreamWriter, info: dict[str, Any],
        headers: dict[str, str], query: dict[str, str],
    ) -> None:
        """Replay a store-only run (e.g. recorded before a restart).

        Byte-identical to the live stream the run produced: frames are
        built from the stored canonical JSON lines.  The stream ends
        at the last stored event — stored runs are never live, so
        there is nothing to tail.
        """
        from repro.store.replay import frame_raw

        jsonl, last_id = self._parse_stream_query(headers, query)
        self._start_stream(writer, jsonl)
        await writer.drain()
        for event_id, name, payload in self.store.iter_raw_events(
            info["run_id"], last_id, chunk=RunLog.STORE_CHUNK
        ):
            writer.write(
                frame_raw(event_id, name, payload, jsonl).encode("utf-8")
            )
            if event_id % RunLog.STORE_CHUNK == 0:
                await writer.drain()
        await writer.drain()

    async def _respond_stored_result(
        self, writer: asyncio.StreamWriter, info: dict[str, Any],
    ) -> None:
        run_id = info["run_id"]
        if info["status"] == "running":
            raise HttpError(409, f"run {run_id} is still running")
        if info["status"] == "cancelled":
            raise HttpError(410, f"run {run_id} was cancelled")
        if info["status"] == "failed":
            raise HttpError(
                500, f"run {run_id} failed: {info['error']}"
            )
        payload = {
            "run_id": run_id,
            "status": info["status"],
            "stored": True,
            "experiments": self.store.reports(run_id),
            "reports": self.store.report_digests(run_id),
        }
        if info["status"] == "partial":
            payload["failures"] = info.get("failures") or {}
        await respond_json(writer, 200, payload)

    async def shutdown(self) -> None:
        """Cancel every live run and release the engine's workers."""
        for run in self.runs.values():
            if run.status == "running":
                run.handle.cancel()
        for run in self.runs.values():
            if run.pump is not None:
                try:
                    await run.pump
                except asyncio.CancelledError:
                    pass
        await self.engine.close()


async def serve(
    app: ServeApp, host: str, port: int,
    ready: asyncio.Event | None = None,
) -> None:
    """Accept connections until cancelled; announce readiness on stderr."""
    # Fork the worker pool before any socket exists: forked children
    # inherit open fds, and an inherited client connection would never
    # see EOF after the parent closes it.
    await app.engine.warm_up()
    server = await asyncio.start_server(app.handle_client, host, port)
    addr = server.sockets[0].getsockname()
    print(
        f"repro-serve listening on http://{addr[0]}:{addr[1]} "
        f"(schema v{codec.EVENT_SCHEMA_VERSION})",
        file=sys.stderr, flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        await app.shutdown()


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--ring-size``:
    a 0-capacity ring would evict every event and leave subscribers
    nothing but gaps — reject it before a server ever starts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Serve experiment runs over HTTP with SSE/JSON-lines "
                    "progress streaming.",
    )
    from repro.cli import (  # no cycle: cli loads serve lazily
        http_url,
        nonnegative_float,
        nonnegative_int,
        peer_list,
        positive_float,
    )

    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default: {DEFAULT_PORT})")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="engine worker processes shared by all runs "
                             "(>= 1)")
    parser.add_argument("--sim-shards", type=_positive_int, default=None,
                        help="shards per trace-simulation batch (>= 1)")
    parser.add_argument("--eval-shards", type=_positive_int, default=None,
                        help="samples per evaluation shard (streams "
                             "running partial results; >= 1)")
    parser.add_argument("--retries", type=nonnegative_int, default=0,
                        help="extra attempts per failed job (shared by "
                             "all runs; default: 0)")
    parser.add_argument("--retry-backoff", type=nonnegative_float,
                        default=0.05, metavar="SECONDS",
                        help="base exponential backoff between attempts "
                             "(default: 0.05)")
    parser.add_argument("--job-timeout", type=positive_float,
                        default=None, metavar="SECONDS",
                        help="per-job wall-clock budget on the worker "
                             "pool; hung jobs are reclaimed and retried")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache shared by all runs")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        help="LRU cap for the disk cache tier")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--remote-cache", type=http_url, default=None,
                        metavar="URL",
                        help="remote cache tier: a repro cache-server "
                             "base URL (http://host:port) results are "
                             "fetched from and published to")
    parser.add_argument("--peers", type=peer_list, default=None,
                        metavar="URLS",
                        help="comma-separated repro-serve peer base "
                             "URLs to dispatch job shares to "
                             "(rendezvous-hashed by job id)")
    parser.add_argument("--ring-size", type=_positive_int,
                        default=DEFAULT_RING_SIZE,
                        help="events retained per run in memory for "
                             "replay/resume (>= 1); the run store "
                             "bridges anything older")
    parser.add_argument("--store-path", default=None, metavar="PATH",
                        help="durable run-store database every event "
                             "writes through to (default: "
                             f"{DEFAULT_STORE_PATH})")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the durable run store (runs die "
                             "with the process, as before)")
    return parser


def main(argv: Iterable[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.no_store and args.store_path is not None:
        parser.error("--no-store conflicts with --store-path")
    if args.no_cache and args.remote_cache is not None:
        parser.error("--no-cache conflicts with --remote-cache")
    from repro.cli import make_engine  # no cycle: cli loads serve lazily

    engine = make_engine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        sim_shards=args.sim_shards,
        eval_shards=args.eval_shards,
        cache_max_mb=args.cache_max_mb,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        job_timeout=args.job_timeout,
        remote_cache=args.remote_cache,
        peers=args.peers,
    )
    store = None
    if not args.no_store:
        store = RunStore(args.store_path or DEFAULT_STORE_PATH)
        interrupted = store.recover_interrupted()
        if interrupted:
            print(
                f"repro-serve: marked {len(interrupted)} interrupted "
                f"run(s) failed (recorded events stay replayable): "
                f"{interrupted}", file=sys.stderr,
            )
    app = ServeApp(
        AsyncExperimentEngine(engine), ring_size=args.ring_size,
        store=store,
    )
    try:
        asyncio.run(serve(app, args.host, args.port))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down",
              file=sys.stderr)
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
