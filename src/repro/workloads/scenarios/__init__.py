"""Generative scenario families: prefix-stable dataset plugins.

Importing this package registers the built-in families; their
canonical names (``family:seed=S,key=value,...``) slot directly into
:func:`repro.workloads.datasets.make_dataset_span` — and therefore
into :class:`~repro.engine.jobs.EvalJob` dataset keys — as
content-addressed datasets.  See :mod:`repro.workloads.scenarios.spec`
for the addressing and prefix-stability contract.
"""

from repro.workloads.scenarios.spec import (
    SCENARIO_FAMILIES,
    ScenarioFamily,
    ScenarioSpec,
    canonical_scenario_name,
    is_scenario_name,
    make_scenario_span,
    parse_scenario,
    register_family,
    scenario_digest,
    scenario_names,
)

# Importing the family modules registers them.
from repro.workloads.scenarios import conversation  # noqa: F401,E402
from repro.workloads.scenarios import multitenant  # noqa: F401,E402
from repro.workloads.scenarios import streaming  # noqa: F401,E402

__all__ = [
    "SCENARIO_FAMILIES",
    "ScenarioFamily",
    "ScenarioSpec",
    "canonical_scenario_name",
    "is_scenario_name",
    "make_scenario_span",
    "parse_scenario",
    "register_family",
    "scenario_digest",
    "scenario_names",
]
