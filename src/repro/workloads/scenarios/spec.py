"""Scenario specs: content-addressed generative workload families.

A *scenario* is a generative workload family (multi-turn
conversation, streaming video with scene churn, bursty multi-tenant
mixes) instantiated with a seed and a parameter map.  Every spec has
one **canonical name** — ``family:seed=S,key=value,...`` with defaults
filled in and keys sorted — and that string is what flows into
:class:`~repro.engine.jobs.EvalJob.dataset`.  Because the engine's
job ids are sha256 hashes over the job key, the canonical name *is*
the scenario's content address: any spelling of the same
``(family, seed, params)`` triple (params reordered, defaults
omitted) produces byte-identical job keys, so caches hit across
spellings and across processes.

Generation is prefix-stable exactly like the base datasets: sample
``i`` of a spec depends only on ``(experiment seed, canonical name,
i)`` — every stream is drawn from :func:`repro.utils.rng.rng_for`
keyed by the sample index — so per-sample eval shards carry over
unchanged and growing ``--samples`` re-executes only the suffix.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.model.embedding import Codebooks, SubspaceLayout
from repro.workloads.datasets import Sample

ParamValue = int | float | str

GenerateFn = Callable[["ScenarioSpec", Codebooks, int, int], Sample]
"""``(spec, codebooks, seed, sample_index) -> Sample``."""


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered generative workload family."""

    name: str
    description: str
    defaults: tuple[tuple[str, ParamValue], ...]
    generate: GenerateFn
    validate: Callable[[Mapping[str, ParamValue]], None] | None = None


SCENARIO_FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(
    name: str,
    description: str,
    defaults: Mapping[str, ParamValue],
    validate: Callable[[Mapping[str, ParamValue]], None] | None = None,
) -> Callable[[GenerateFn], GenerateFn]:
    """Decorator: register a generate function as a scenario family."""

    def wrap(fn: GenerateFn) -> GenerateFn:
        if name in SCENARIO_FAMILIES:
            raise ValueError(f"scenario family {name!r} already registered")
        SCENARIO_FAMILIES[name] = ScenarioFamily(
            name=name,
            description=description,
            defaults=tuple(sorted(defaults.items())),
            generate=fn,
            validate=validate,
        )
        return fn

    return wrap


def scenario_names() -> list[str]:
    """Registered family names, sorted."""
    return sorted(SCENARIO_FAMILIES)


def _format_value(value: ParamValue) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_value(family: str, key: str, raw: str,
                 default: ParamValue) -> ParamValue:
    """Coerce a textual param value to the default's type."""
    if isinstance(default, bool):  # future-proofing; bool is an int
        raise TypeError(f"{family}.{key}: bool params are unsupported")
    if isinstance(default, int):
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f"scenario param {key}={raw!r} must be an integer"
            ) from None
    if isinstance(default, float):
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"scenario param {key}={raw!r} must be a number"
            ) from None
        if not math.isfinite(value):
            raise ValueError(f"scenario param {key}={raw!r} must be finite")
        return value
    return raw


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully-resolved ``(family, seed, params)`` triple."""

    family: str
    seed: int
    params: tuple[tuple[str, ParamValue], ...]

    @property
    def param_map(self) -> dict[str, ParamValue]:
        return dict(self.params)

    @property
    def name(self) -> str:
        """Canonical name: defaults filled, keys sorted, seed first."""
        bits = [f"seed={self.seed}"]
        bits += [f"{key}={_format_value(value)}" for key, value in self.params]
        return f"{self.family}:{','.join(bits)}"

    @property
    def digest(self) -> str:
        """Content address of the spec (sha256 of the canonical name)."""
        return hashlib.sha256(self.name.encode("utf-8")).hexdigest()[:16]


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse ``family[:key=value,...]`` into a canonical spec.

    Unknown families and params, malformed ``key=value`` chunks, and
    values that don't coerce to the default's type all raise
    :class:`ValueError`.  ``seed`` is accepted as a pseudo-param of
    every family (default 0).
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"empty scenario spec {text!r}")
    head, _, tail = text.strip().partition(":")
    family = head.strip()
    if family not in SCENARIO_FAMILIES:
        raise ValueError(
            f"unknown scenario family {family!r}; "
            f"available: {scenario_names()}"
        )
    registered = SCENARIO_FAMILIES[family]
    defaults = dict(registered.defaults)
    params = dict(defaults)
    seed = 0
    for chunk in tail.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, raw = chunk.partition("=")
        key, raw = key.strip(), raw.strip()
        if not sep or not key or not raw:
            raise ValueError(
                f"scenario params must be key=value, got {chunk!r}"
            )
        if key == "seed":
            try:
                seed = int(raw)
            except ValueError:
                raise ValueError(
                    f"scenario seed must be an integer, got {raw!r}"
                ) from None
            continue
        if key not in defaults:
            raise ValueError(
                f"unknown {family!r} param {key!r}; "
                f"available: {sorted(defaults)} (plus 'seed')"
            )
        params[key] = _parse_value(family, key, raw, defaults[key])
    if registered.validate is not None:
        registered.validate(params)
    return ScenarioSpec(
        family=family, seed=seed, params=tuple(sorted(params.items()))
    )


def is_scenario_name(name: object) -> bool:
    """True if ``name`` addresses a registered scenario family."""
    return (
        isinstance(name, str)
        and name.partition(":")[0].strip() in SCENARIO_FAMILIES
    )


def canonical_scenario_name(text: str) -> str:
    """Canonicalize any spelling of a scenario spec."""
    return parse_scenario(text).name


def scenario_digest(text: str) -> str:
    """Content address of any spelling of a scenario spec."""
    return parse_scenario(text).digest


def make_scenario_span(
    name: str,
    layout: SubspaceLayout,
    start: int,
    stop: int,
    seed: int = 0,
    vocab_seed: int = 0,
) -> list[Sample]:
    """Generate items ``start .. stop`` of a scenario.

    The prefix-stability contract of
    :func:`repro.workloads.datasets.make_dataset_span` holds verbatim:
    sample ``i`` depends only on ``(seed, canonical name, i)``, so a
    span evaluated in isolation sees exactly the items the serial
    whole-cell loop would have fed it.  ``seed`` is the experiment
    seed; the spec's own ``seed=`` param varies the scenario
    population independently and is part of the content address.
    """
    if start < 0 or stop < start:
        raise ValueError(
            f"invalid sample span [{start}, {stop}): need 0 <= start <= stop"
        )
    spec = parse_scenario(name)
    family = SCENARIO_FAMILIES[spec.family]
    codebooks = Codebooks(layout, seed=vocab_seed)
    return [
        family.generate(spec, codebooks, seed, index)
        for index in range(start, stop)
    ]
