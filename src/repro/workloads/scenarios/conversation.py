"""Multi-turn conversational VQA with growing KV history (``mtconv``).

Samples group into conversations of ``turns`` questions about one
shared video: sample ``i`` is turn ``i % turns`` of conversation
``i // turns``.  The visual stream is rendered once per conversation
(every turn re-derives it bit-identically from the conversation
index), and the text stream *grows*: turn ``t`` carries ``history``
summary tokens for each of the ``t`` preceding questions followed by
the current question's full encoding, so later turns stress exactly
the growing-KV regime streaming concentration targets.  The query
token stays last, as the model requires.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.utils.rng import rng_for
from repro.workloads.datasets import ALL_PROFILES, Sample, get_profile
from repro.workloads.prompts import encode_text, random_question
from repro.workloads.scene import random_scene
from repro.workloads.scenarios.spec import (
    ParamValue,
    ScenarioSpec,
    register_family,
)
from repro.workloads.video import render_video, token_positions

from repro.model.embedding import Codebooks


def _validate(params: Mapping[str, ParamValue]) -> None:
    if int(params["turns"]) < 1:
        raise ValueError("mtconv: turns must be >= 1")
    if int(params["history"]) < 1:
        raise ValueError("mtconv: history must be >= 1")
    if params["profile"] not in ALL_PROFILES:
        raise ValueError(
            f"mtconv: unknown profile {params['profile']!r}; "
            f"available: {sorted(ALL_PROFILES)}"
        )


@register_family(
    "mtconv",
    "multi-turn conversational VQA with growing KV history",
    {"turns": 4, "history": 4, "profile": "videomme"},
    validate=_validate,
)
def generate(
    spec: ScenarioSpec, codebooks: Codebooks, seed: int, index: int
) -> Sample:
    params = spec.param_map
    profile = get_profile(str(params["profile"]))
    turns = int(params["turns"])
    history = int(params["history"])
    conversation, turn = divmod(index, turns)

    # The shared video: keyed by the conversation, not the turn, so
    # every turn of one conversation re-renders it bit-identically.
    stream = rng_for(seed, "scenario", spec.name, "conversation",
                     conversation)
    scene_seed = int(stream.integers(2**31))
    scene = random_scene(
        num_frames=profile.num_frames,
        grid_height=profile.grid_height,
        grid_width=profile.grid_width,
        num_objects=profile.num_objects,
        seed=scene_seed,
        motion_scale=profile.motion_scale,
        sample_index=conversation,
    )
    visual = render_video(scene, codebooks, profile.render, scene_seed,
                          sample_index=conversation)

    # Turn k's question is keyed by the global turn index, so turn t
    # sees the identical questions turns 0..t-1 asked.
    def turn_question(k: int):
        return random_question(scene, scene_seed,
                               sample_index=conversation * turns + k)

    pieces = [
        encode_text(turn_question(past), codebooks, history, scene_seed,
                    sample_index=conversation * turns + past)
        for past in range(turn)
    ]
    question = turn_question(turn)
    current = encode_text(question, codebooks, profile.num_text_tokens,
                          scene_seed,
                          sample_index=conversation * turns + turn)
    text = np.concatenate([*pieces, current], axis=0) if pieces else current
    return Sample(
        visual_tokens=visual,
        text_tokens=text,
        positions=token_positions(scene),
        scene=scene,
        question=question,
        codebooks=codebooks,
    )
