"""Bursty multi-tenant request mixes (``tenantmix``).

Models a serving frontend whose traffic arrives in *bursts*: each
burst belongs to one tenant, every tenant submits one benchmark
profile (tenant 0 sends VideoMME-style video QA, tenant 1 VQAv2-style
image QA, ...), and burst lengths are drawn from a seeded generator
around a mean of ``burst`` requests.  Consecutive samples therefore
alternate between grids and token shapes exactly the way mixed-tenant
traffic does — the adversarial case for shape-bucketed batched
forward passes and per-shape tile-plan caches.

Sample ``i``'s tenant is found by walking the burst-length stream
from the start; every draw is keyed by the burst index, so the walk
is deterministic and sample ``i`` is independent of how many samples
are requested (prefix stability).
"""

from __future__ import annotations

from typing import Mapping

from repro.utils.rng import rng_for
from repro.workloads.datasets import Sample, get_profile, make_sample
from repro.workloads.scenarios.spec import (
    ParamValue,
    ScenarioSpec,
    register_family,
)

from repro.model.embedding import Codebooks

TENANT_PROFILES = ("videomme", "vqav2", "mlvu", "mmbench", "mvbench", "mme")
"""Profile submitted by each tenant slot (video/image interleaved)."""


def _validate(params: Mapping[str, ParamValue]) -> None:
    tenants = int(params["tenants"])
    if not 1 <= tenants <= len(TENANT_PROFILES):
        raise ValueError(
            f"tenantmix: tenants must be in 1..{len(TENANT_PROFILES)}"
        )
    if int(params["burst"]) < 1:
        raise ValueError("tenantmix: burst must be >= 1")


@register_family(
    "tenantmix",
    "bursty multi-tenant request mixes over the benchmark profiles",
    {"tenants": 3, "burst": 4},
    validate=_validate,
)
def generate(
    spec: ScenarioSpec, codebooks: Codebooks, seed: int, index: int
) -> Sample:
    params = spec.param_map
    tenants = int(params["tenants"])
    burst = int(params["burst"])

    # Walk bursts until the one containing `index`.  Lengths are
    # uniform on [1, 2*burst - 1] (mean `burst`), each drawn from a
    # stream keyed by the burst number alone.
    start = 0
    burst_index = 0
    while True:
        draw = rng_for(seed, "scenario", spec.name, "burst", burst_index)
        length = 1 + int(draw.integers(2 * burst - 1))
        if index < start + length:
            break
        start += length
        burst_index += 1
    tenant = int(
        rng_for(seed, "scenario", spec.name, "tenant", burst_index)
        .integers(tenants)
    )
    profile = get_profile(TENANT_PROFILES[tenant])
    # The scenario's own sample stream: keyed by the canonical name so
    # tenantmix items never collide with the base dataset's.
    return make_sample(profile, codebooks, seed, index,
                       stream_label=spec.name)
