"""Long/streaming video with scene churn (``stream``).

Each sample is one long video stitched from several *segments*, each
an independently generated scene.  The per-sample churn rate and the
segment boundaries are drawn from a seeded generator: the nominal
``churn`` param (the per-frame probability of a scene cut) is jittered
per sample, then each inter-frame gap flips a coin at that rate, so
segment lengths are geometric around ``1/churn`` frames.  High churn
breaks the temporal redundancy streaming concentration exploits, low
churn restores it — sweeping ``churn`` traces out exactly the
streaming regime of the paper.

The question is asked about the *final* segment (the "live" scene a
streaming viewer is watching); earlier segments act as stale history
in the KV cache.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.utils.rng import rng_for
from repro.workloads.datasets import ALL_PROFILES, Sample, get_profile
from repro.workloads.prompts import encode_text, random_question
from repro.workloads.scene import Scene, random_scene
from repro.workloads.scenarios.spec import (
    ParamValue,
    ScenarioSpec,
    register_family,
)
from repro.workloads.video import render_video, token_positions

from repro.model.embedding import Codebooks


def _validate(params: Mapping[str, ParamValue]) -> None:
    if int(params["frames"]) < 1:
        raise ValueError("stream: frames must be >= 1")
    churn = float(params["churn"])
    if not 0.0 < churn <= 1.0:
        raise ValueError("stream: churn must be in (0, 1]")
    if params["profile"] not in ALL_PROFILES:
        raise ValueError(
            f"stream: unknown profile {params['profile']!r}; "
            f"available: {sorted(ALL_PROFILES)}"
        )


@register_family(
    "stream",
    "long/streaming video traces with scene churn",
    {"frames": 16, "churn": 0.25, "profile": "mlvu"},
    validate=_validate,
)
def generate(
    spec: ScenarioSpec, codebooks: Codebooks, seed: int, index: int
) -> Sample:
    params = spec.param_map
    profile = get_profile(str(params["profile"]))
    frames = int(params["frames"])
    churn = float(params["churn"])

    stream = rng_for(seed, "scenario", spec.name, "segments", index)
    rate = min(max(float(stream.uniform(0.5, 1.5)) * churn, 1e-6), 1.0)
    cuts = stream.random(frames - 1) < rate
    lengths: list[int] = []
    run = 1
    for cut in cuts:
        if cut:
            lengths.append(run)
            run = 1
        else:
            run += 1
    lengths.append(run)

    chunks = []
    segment_scene: Scene | None = None
    segment_seed = 0
    for length in lengths:
        segment_seed = int(stream.integers(2**31))
        segment_scene = random_scene(
            num_frames=length,
            grid_height=profile.grid_height,
            grid_width=profile.grid_width,
            num_objects=profile.num_objects,
            seed=segment_seed,
            motion_scale=profile.motion_scale,
            sample_index=index,
        )
        chunks.append(render_video(segment_scene, codebooks,
                                   profile.render, segment_seed,
                                   sample_index=index))
    visual = np.concatenate(chunks, axis=0)

    # The composite scene spans all frames; ground truth (objects, and
    # therefore the question) comes from the live final segment.
    composite = Scene(
        num_frames=frames,
        grid_height=profile.grid_height,
        grid_width=profile.grid_width,
        objects=segment_scene.objects,
    )
    question = random_question(segment_scene, segment_seed,
                               sample_index=index)
    text = encode_text(question, codebooks, profile.num_text_tokens,
                       segment_seed, sample_index=index)
    return Sample(
        visual_tokens=visual,
        text_tokens=text,
        positions=token_positions(composite),
        scene=composite,
        question=question,
        codebooks=codebooks,
    )
