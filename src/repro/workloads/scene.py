"""Synthetic scene description: objects with attributes and motion.

The paper's benchmarks (VideoMME, MLVU, MVBench, ...) supply videos in
which a handful of foreground objects move over largely static
backgrounds, plus natural-language questions about object attributes.
This module provides the scene model those videos are rendered from.

Scenes are deliberately parameterized by the two properties Focus
exploits:

* *temporal redundancy* — backgrounds repeat across frames and objects
  move by fractional-patch amounts per frame, and
* *semantic locality* — each question is answerable from the small
  patch region occupied by one object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.embedding import COLOR_NAMES, KIND_NAMES, MOTION_NAMES
from repro.utils.rng import rng_for

_MOTION_VELOCITY = {
    "static": (0.0, 0.0),
    "leftward": (0.0, -1.0),
    "rightward": (0.0, 1.0),
    "upward": (-1.0, 0.0),
}


@dataclass(frozen=True)
class SceneObject:
    """A foreground object occupying a rectangle of patches.

    Attributes:
        kind_index: Index into :data:`KIND_NAMES` (what the object is).
        color_index: Index into :data:`COLOR_NAMES`.
        motion_index: Index into :data:`MOTION_NAMES`; determines the
            per-frame velocity.
        row: Top edge at frame 0, in (possibly fractional) patch units.
        col: Left edge at frame 0.
        height: Vertical extent in patches.
        width: Horizontal extent in patches.
        speed: Magnitude of per-frame displacement in patch units;
            sub-unit speeds produce the partial token overlaps of
            Fig. 1(c).
    """

    kind_index: int
    color_index: int
    motion_index: int
    row: float
    col: float
    height: float
    width: float
    speed: float = 0.4

    @property
    def kind(self) -> str:
        return KIND_NAMES[self.kind_index]

    @property
    def color(self) -> str:
        return COLOR_NAMES[self.color_index]

    @property
    def motion(self) -> str:
        return MOTION_NAMES[self.motion_index]

    def rect_at(self, frame: int) -> tuple[float, float, float, float]:
        """Return ``(top, left, bottom, right)`` at the given frame."""
        drow, dcol = _MOTION_VELOCITY[self.motion]
        top = self.row + drow * self.speed * frame
        left = self.col + dcol * self.speed * frame
        return top, left, top + self.height, left + self.width


@dataclass(frozen=True)
class Scene:
    """A complete synthetic video scene."""

    num_frames: int
    grid_height: int
    grid_width: int
    objects: tuple[SceneObject, ...]

    @property
    def tokens_per_frame(self) -> int:
        return self.grid_height * self.grid_width

    @property
    def num_visual_tokens(self) -> int:
        return self.num_frames * self.tokens_per_frame


def _rect_overlap(
    a: tuple[float, float, float, float],
    b: tuple[float, float, float, float],
) -> float:
    """Intersection area of two (top, left, bottom, right) rectangles."""
    rows = max(0.0, min(a[2], b[2]) - max(a[0], b[0]))
    cols = max(0.0, min(a[3], b[3]) - max(a[1], b[1]))
    return rows * cols


def random_scene(
    num_frames: int,
    grid_height: int,
    grid_width: int,
    num_objects: int,
    seed: int,
    motion_scale: float = 0.4,
    sample_index: int = 0,
) -> Scene:
    """Generate a random scene with ``num_objects`` distinct objects.

    Object kinds within one scene are unique so that a question can
    reference an object unambiguously by kind (mirroring how benchmark
    questions reference "the dog", "the flower", ...).  Trajectories
    are confined to the frame for the whole clip (a questioned object
    must stay observable), and start positions are rejection-sampled to
    limit overlap between objects (overlapping patches carry mixed
    attribute codes, which makes questions genuinely ambiguous).
    """
    if num_objects > len(KIND_NAMES):
        raise ValueError(
            f"at most {len(KIND_NAMES)} objects per scene (unique kinds)"
        )
    if num_objects < 1:
        raise ValueError("a scene needs at least one object")
    rng = rng_for(seed, "scene", sample_index)
    kinds = rng.choice(len(KIND_NAMES), size=num_objects, replace=False)
    objects: list[SceneObject] = []
    for kind_index in kinds:
        height = float(rng.uniform(1.5, max(2.0, grid_height / 3)))
        width = float(rng.uniform(1.5, max(2.0, grid_width / 3)))
        motion_index = int(rng.integers(len(MOTION_NAMES)))
        speed = float(rng.uniform(0.5, 1.0)) * motion_scale
        drow, dcol = _MOTION_VELOCITY[MOTION_NAMES[motion_index]]
        total_dr = drow * speed * (num_frames - 1)
        total_dc = dcol * speed * (num_frames - 1)
        # Clamp the speed so the full trajectory fits inside the grid.
        max_dr = grid_height - height
        max_dc = grid_width - width
        if abs(total_dr) > max_dr or abs(total_dc) > max_dc:
            shrink = min(
                max_dr / abs(total_dr) if total_dr else 1.0,
                max_dc / abs(total_dc) if total_dc else 1.0,
            )
            speed *= max(shrink, 0.0)
            total_dr = drow * speed * (num_frames - 1)
            total_dc = dcol * speed * (num_frames - 1)

        row_lo, row_hi = max(0.0, -total_dr), grid_height - height - max(0.0, total_dr)
        col_lo, col_hi = max(0.0, -total_dc), grid_width - width - max(0.0, total_dc)
        best: SceneObject | None = None
        best_overlap = np.inf
        for _ in range(24):
            candidate = SceneObject(
                kind_index=int(kind_index),
                color_index=int(rng.integers(len(COLOR_NAMES))),
                motion_index=motion_index,
                row=float(rng.uniform(row_lo, max(row_lo, row_hi))),
                col=float(rng.uniform(col_lo, max(col_lo, col_hi))),
                height=height,
                width=width,
                speed=speed,
            )
            overlap = sum(
                _rect_overlap(candidate.rect_at(f), other.rect_at(f))
                for other in objects
                for f in (0, num_frames - 1)
            )
            if overlap < best_overlap:
                best, best_overlap = candidate, overlap
            if overlap <= 0.15 * height * width:
                break
        assert best is not None
        objects.append(best)
    return Scene(
        num_frames=num_frames,
        grid_height=grid_height,
        grid_width=grid_width,
        objects=tuple(objects),
    )


def coverage_map(scene: Scene, frame: int) -> np.ndarray:
    """Per-object patch coverage at ``frame``.

    Returns:
        Array of shape ``(num_objects, grid_height, grid_width)`` whose
        entries are the fraction of each unit patch cell covered by the
        object's rectangle (0..1).  Fractional coverage at object
        boundaries is what creates sub-token (vector-level) similarity
        across frames.
    """
    rows = np.arange(scene.grid_height, dtype=np.float32)
    cols = np.arange(scene.grid_width, dtype=np.float32)
    maps = np.zeros(
        (len(scene.objects), scene.grid_height, scene.grid_width),
        dtype=np.float32,
    )
    for i, obj in enumerate(scene.objects):
        top, left, bottom, right = obj.rect_at(frame)
        row_overlap = np.clip(
            np.minimum(rows + 1.0, bottom) - np.maximum(rows, top), 0.0, 1.0
        )
        col_overlap = np.clip(
            np.minimum(cols + 1.0, right) - np.maximum(cols, left), 0.0, 1.0
        )
        maps[i] = np.outer(row_overlap, col_overlap)
    return maps
