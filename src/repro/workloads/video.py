"""Rendering scenes into visual token embeddings.

This module plays the role of the VLM's vision encoder + projector: it
turns a :class:`~repro.workloads.scene.Scene` into the sequence of
visual token embeddings the LLM consumes, ordered frame-major then
row-major (the FHW order the paper's convolution-style layouter
assumes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.model.embedding import Codebooks, SubspaceLayout, positional_code
from repro.utils.rng import rng_for
from repro.workloads.scene import Scene, coverage_map


@dataclass(frozen=True)
class RenderParams:
    """Gains and noise levels of the synthetic vision encoder.

    Attributes:
        object_gain: Magnitude of object-identity codes in patch
            embeddings.
        attribute_gain: Magnitude of colour/motion codes.
        texture_gain: Magnitude of the background texture field.
        texture_smoothness: Gaussian sigma of the spatial texture
            field; larger values increase *spatial* redundancy.
        frame_noise: Magnitude of the per-frame change on *changed*
            texture channels; smaller values increase temporal
            redundancy.
        change_fraction: Fraction of texture channels that change
            between frames.  Real inter-frame differences are
            *structured* — a few feature channels (lighting, motion
            cues) move while the rest hold still — which is exactly why
            short sub-vectors are far more often near-identical than
            whole tokens (Fig. 2(b)).  Isotropic noise would invert
            that trend.
        position_gain: Magnitude of the (frame, row, col) positional
            code.
        feature_noise: I.i.d. noise over the full embedding, modelling
            encoder jitter.
        attribute_noise: Per-patch perturbation of the attribute codes.
            A single patch is an unreliable witness of the object's
            attribute; the dense model recovers it by averaging over
            all the object's patches, so methods that prune or distort
            patches pay a measurable accuracy cost — the mechanism
            behind the paper's Table II accuracy deltas.
    """

    object_gain: float = 1.0
    attribute_gain: float = 1.0
    texture_gain: float = 0.8
    texture_smoothness: float = 1.5
    frame_noise: float = 1.8
    change_fraction: float = 0.02
    position_gain: float = 0.25
    feature_noise: float = 0.01
    attribute_noise: float = 0.35
    background_residue: float = 0.5
    """Frame-stable low-level response of the object/attribute channels
    on background patches.  Real encoders emit non-zero features in
    every channel; without this, background sub-vectors in the unused
    channels would be pure noise with random (near-zero) inter-frame
    cosine, which distorts the Fig. 2(b) granularity statistics."""


def _background_texture(
    scene: Scene, dim: int, smoothness: float, rng: np.random.Generator
) -> np.ndarray:
    """Smooth spatial texture field, identical for every frame.

    Spatial smoothing makes neighbouring patches similar (intra-frame
    redundancy); reusing the same field across frames makes co-located
    patches nearly identical (inter-frame redundancy).
    """
    field = rng.standard_normal(
        (scene.grid_height, scene.grid_width, dim)
    ).astype(np.float32)
    field = ndimage.gaussian_filter(field, sigma=(smoothness, smoothness, 0.0))
    norms = np.linalg.norm(field, axis=-1, keepdims=True)
    return field / np.maximum(norms, 1e-8)


def render_video(
    scene: Scene,
    codebooks: Codebooks,
    params: RenderParams,
    seed: int,
    sample_index: int = 0,
) -> np.ndarray:
    """Render a scene into visual token embeddings.

    Returns:
        Array of shape ``(num_visual_tokens, hidden)`` in FHW order:
        token ``f * H * W + r * W + c`` is patch ``(r, c)`` of frame
        ``f``.
    """
    layout: SubspaceLayout = codebooks.layout
    hidden = layout.hidden
    rng = rng_for(seed, "render", sample_index)
    texture = _background_texture(
        scene, layout.quarter, params.texture_smoothness, rng
    )
    residue = _background_texture(
        scene, 2 * layout.quarter, params.texture_smoothness, rng
    )

    tokens = np.zeros((scene.num_visual_tokens, hidden), dtype=np.float32)
    token_index = 0
    for frame in range(scene.num_frames):
        cover = coverage_map(scene, frame)
        total_cover = np.clip(cover.sum(axis=0), 0.0, 1.0)
        change_mask = (
            rng.random((scene.grid_height, scene.grid_width, layout.quarter))
            < params.change_fraction
        )
        frame_jitter = (
            params.frame_noise
            * change_mask
            * rng.standard_normal(
                (scene.grid_height, scene.grid_width, layout.quarter)
            )
        ).astype(np.float32)
        half = layout.quarter // 2
        for row in range(scene.grid_height):
            for col in range(scene.grid_width):
                emb = np.zeros(hidden, dtype=np.float32)
                for obj_i, obj in enumerate(scene.objects):
                    weight = float(cover[obj_i, row, col])
                    if weight == 0.0:
                        continue
                    emb[layout.object_slice] += (
                        params.object_gain * weight
                        * codebooks.kind_codes[obj.kind_index]
                    )
                    color = codebooks.color_codes[obj.color_index]
                    motion = codebooks.motion_codes[obj.motion_index]
                    if params.attribute_noise > 0.0:
                        color = color + params.attribute_noise * (
                            rng.standard_normal(half).astype(np.float32)
                            / np.sqrt(half)
                        )
                        motion = motion + params.attribute_noise * (
                            rng.standard_normal(half).astype(np.float32)
                            / np.sqrt(half)
                        )
                    emb[layout.color_slice] += (
                        params.attribute_gain * weight * color
                    )
                    emb[layout.motion_slice] += (
                        params.attribute_gain * weight * motion
                    )
                background_weight = 1.0 - float(total_cover[row, col])
                emb[layout.texture_slice] = params.texture_gain * (
                    background_weight * texture[row, col]
                    + frame_jitter[row, col]
                )
                emb[: 2 * layout.quarter] += (
                    params.background_residue * background_weight
                    * residue[row, col]
                )
                emb[layout.position_slice] = (
                    params.position_gain
                    * positional_code(frame, row, col, layout.quarter)
                )
                tokens[token_index] = emb
                token_index += 1
    tokens += params.feature_noise * rng.standard_normal(tokens.shape).astype(
        np.float32
    )
    return tokens


def token_positions(scene: Scene) -> np.ndarray:
    """FHW coordinates of every visual token, shape ``(M, 3)``.

    Column order is ``(frame, row, col)``, matching the layouter's
    addressing equations (Fig. 7).
    """
    grid = np.indices(
        (scene.num_frames, scene.grid_height, scene.grid_width)
    )
    return grid.reshape(3, -1).T.astype(np.int64)
