"""Synthetic workloads standing in for the paper's video/image benchmarks."""

from repro.workloads.scene import Scene, SceneObject, random_scene, coverage_map
from repro.workloads.video import RenderParams, render_video, token_positions
from repro.workloads.prompts import Question, question_for, random_question, encode_text
from repro.workloads.datasets import (
    ALL_PROFILES,
    IMAGE_PROFILES,
    VIDEO_PROFILES,
    DatasetProfile,
    Sample,
    get_profile,
    make_dataset,
    make_dataset_span,
    make_sample,
)
from repro.workloads.scenarios import (  # noqa: E402  (needs datasets first)
    SCENARIO_FAMILIES,
    ScenarioSpec,
    canonical_scenario_name,
    is_scenario_name,
    make_scenario_span,
    parse_scenario,
    scenario_digest,
    scenario_names,
)

__all__ = [
    "Scene",
    "SceneObject",
    "random_scene",
    "coverage_map",
    "RenderParams",
    "render_video",
    "token_positions",
    "Question",
    "question_for",
    "random_question",
    "encode_text",
    "ALL_PROFILES",
    "IMAGE_PROFILES",
    "VIDEO_PROFILES",
    "DatasetProfile",
    "Sample",
    "get_profile",
    "make_dataset",
    "make_dataset_span",
    "make_sample",
    "SCENARIO_FAMILIES",
    "ScenarioSpec",
    "canonical_scenario_name",
    "is_scenario_name",
    "make_scenario_span",
    "parse_scenario",
    "scenario_digest",
    "scenario_names",
]
