"""Dataset profiles mirroring the paper's evaluation benchmarks.

The paper evaluates on three video benchmarks (VideoMME, MLVU,
MVBench) and three image benchmarks (VQAv2, MME, MMBench).  Each is
substituted by a synthetic profile whose knobs reproduce the property
that distinguishes it in the paper:

* ``videomme`` — general video understanding: medium length, several
  objects, moderate motion.
* ``mlvu`` — long-video understanding: more frames, slow scenes (high
  temporal redundancy; this is the dataset Fig. 2(b)'s similarity CDF
  is measured on).
* ``mvbench`` — temporal reasoning: fast motion (lowest inter-frame
  redundancy), motion questions more likely.
* ``vqav2`` / ``mme`` / ``mmbench`` — single-image QA at increasing
  visual clutter (Table V treats images as one-frame videos).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.embedding import Codebooks, SubspaceLayout
from repro.utils.rng import rng_for
from repro.workloads.prompts import Question, encode_text, random_question
from repro.workloads.scene import Scene, random_scene
from repro.workloads.video import RenderParams, render_video, token_positions


@dataclass(frozen=True)
class Sample:
    """One evaluation item: a rendered video plus an encoded question.

    Attributes:
        visual_tokens: ``(M, hidden)`` patch embeddings in FHW order.
        text_tokens: ``(T, hidden)`` question embeddings; the query
            token is last.
        positions: ``(M, 3)`` integer (frame, row, col) coordinates.
        scene: The underlying scene (ground truth).
        question: The question and its ground-truth answer.
    """

    visual_tokens: np.ndarray
    text_tokens: np.ndarray
    positions: np.ndarray
    scene: Scene
    question: Question
    codebooks: Codebooks

    @property
    def num_visual_tokens(self) -> int:
        return int(self.visual_tokens.shape[0])

    @property
    def num_text_tokens(self) -> int:
        return int(self.text_tokens.shape[0])

    @property
    def grid(self) -> tuple[int, int, int]:
        """(frames, height, width) of the visual token grid."""
        return (
            self.scene.num_frames,
            self.scene.grid_height,
            self.scene.grid_width,
        )


@dataclass(frozen=True)
class DatasetProfile:
    """Generation parameters for one synthetic benchmark."""

    name: str
    num_frames: int
    grid_height: int
    grid_width: int
    num_objects: int
    num_text_tokens: int
    motion_scale: float
    render: RenderParams = field(default_factory=RenderParams)
    is_video: bool = True

    @property
    def visual_tokens(self) -> int:
        return self.num_frames * self.grid_height * self.grid_width


VIDEO_PROFILES: dict[str, DatasetProfile] = {
    "videomme": DatasetProfile(
        name="videomme", num_frames=8, grid_height=7, grid_width=7,
        num_objects=4, num_text_tokens=12, motion_scale=0.5,
    ),
    "mlvu": DatasetProfile(
        name="mlvu", num_frames=12, grid_height=6, grid_width=6,
        num_objects=3, num_text_tokens=12, motion_scale=0.25,
        render=RenderParams(frame_noise=1.8, change_fraction=0.015),
    ),
    "mvbench": DatasetProfile(
        name="mvbench", num_frames=8, grid_height=7, grid_width=7,
        num_objects=3, num_text_tokens=10, motion_scale=0.9,
        render=RenderParams(frame_noise=2.2, change_fraction=0.035),
    ),
}

IMAGE_PROFILES: dict[str, DatasetProfile] = {
    "vqav2": DatasetProfile(
        name="vqav2", num_frames=1, grid_height=12, grid_width=12,
        num_objects=3, num_text_tokens=10, motion_scale=0.0, is_video=False,
        render=RenderParams(texture_smoothness=2.0),
    ),
    "mme": DatasetProfile(
        name="mme", num_frames=1, grid_height=12, grid_width=12,
        num_objects=4, num_text_tokens=12, motion_scale=0.0, is_video=False,
        render=RenderParams(texture_smoothness=1.5),
    ),
    "mmbench": DatasetProfile(
        name="mmbench", num_frames=1, grid_height=14, grid_width=14,
        num_objects=5, num_text_tokens=12, motion_scale=0.0, is_video=False,
        render=RenderParams(texture_smoothness=1.2),
    ),
}

ALL_PROFILES: dict[str, DatasetProfile] = {**VIDEO_PROFILES, **IMAGE_PROFILES}


def get_profile(name: str) -> DatasetProfile:
    """Look up a profile by benchmark name."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(ALL_PROFILES)}"
        ) from None


def make_sample(
    profile: DatasetProfile,
    codebooks: Codebooks,
    seed: int,
    sample_index: int,
    stream_label: str | None = None,
) -> Sample:
    """Generate one sample of a dataset profile.

    ``stream_label`` overrides the rng stream label (default: the
    profile name).  Scenario families pass their canonical name here
    so their samples draw from the scenario's own stream instead of
    colliding with the base dataset's.
    """
    label = profile.name if stream_label is None else stream_label
    stream = rng_for(seed, "dataset", label, sample_index)
    scene_seed = int(stream.integers(2**31))
    scene = random_scene(
        num_frames=profile.num_frames,
        grid_height=profile.grid_height,
        grid_width=profile.grid_width,
        num_objects=profile.num_objects,
        seed=scene_seed,
        motion_scale=profile.motion_scale,
        sample_index=sample_index,
    )
    question = random_question(scene, scene_seed, sample_index)
    visual = render_video(scene, codebooks, profile.render, scene_seed,
                          sample_index)
    text = encode_text(question, codebooks, profile.num_text_tokens,
                       scene_seed, sample_index)
    return Sample(
        visual_tokens=visual,
        text_tokens=text,
        positions=token_positions(scene),
        scene=scene,
        question=question,
        codebooks=codebooks,
    )


def make_dataset_span(
    name: str,
    layout: SubspaceLayout,
    start: int,
    stop: int,
    seed: int = 0,
    vocab_seed: int = 0,
) -> list[Sample]:
    """Generate items ``start .. stop`` of the named benchmark.

    Generation is *prefix-stable*: sample ``i`` depends only on
    ``(seed, dataset, i)`` — every stream is drawn from
    :func:`repro.utils.rng.rng_for` keyed by the sample index, and the
    codebooks derive from ``(layout, vocab_seed)`` alone — so the same
    index yields a bit-identical sample no matter which span requests
    it or how many samples the full dataset has.  Per-sample evaluation
    shards rest on this: a span evaluated in isolation sees exactly the
    items the serial whole-cell loop would have fed it.

    Args:
        name: One of the keys of :data:`ALL_PROFILES`.
        layout: Hidden-dimension layout of the consuming model (the
            same logical dataset is re-embedded per model, just as the
            real benchmarks are re-tokenized per VLM).
        start: First sample index (inclusive).
        stop: Last sample index (exclusive).
        seed: Experiment seed (varies scenes and questions).
        vocab_seed: Codebook seed; must match the model's
            ``vocab_seed`` (the shared "vocabulary").
    """
    if start < 0 or stop < start:
        raise ValueError(
            f"invalid sample span [{start}, {stop}): need 0 <= start <= stop"
        )
    # Lazy: scenarios import this module, so the dispatch can't be a
    # top-level import.  Scenario names carry a family prefix
    # ("mtconv:...") that no base profile uses.
    from repro.workloads.scenarios import is_scenario_name, make_scenario_span

    if is_scenario_name(name):
        return make_scenario_span(
            name, layout, start, stop, seed=seed, vocab_seed=vocab_seed
        )
    profile = get_profile(name)
    codebooks = Codebooks(layout, seed=vocab_seed)
    return [
        make_sample(profile, codebooks, seed, index)
        for index in range(start, stop)
    ]


def make_dataset(
    name: str,
    layout: SubspaceLayout,
    num_samples: int,
    seed: int = 0,
    vocab_seed: int = 0,
) -> list[Sample]:
    """Generate ``num_samples`` items of the named benchmark.

    Equivalent to :func:`make_dataset_span` over ``[0, num_samples)``;
    see there for the prefix-stability guarantee and argument details.
    """
    return make_dataset_span(
        name, layout, 0, num_samples, seed=seed, vocab_seed=vocab_seed
    )
