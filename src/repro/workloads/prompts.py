"""Question generation and text-token encoding.

Questions reference one scene object by kind and ask about one
attribute slot ("What is the color of the dog?").  The final text token
is the *query token*: its object sub-space carries the referenced
kind's code, which is what the constructed attention weights match
against image tokens — reproducing the prompt-conditioned attention
shift of Fig. 2(a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.embedding import Codebooks, QUESTION_SLOTS
from repro.utils.rng import rng_for
from repro.workloads.scene import Scene, SceneObject


@dataclass(frozen=True)
class Question:
    """A natural-language question about one object's attribute.

    Attributes:
        kind_index: Kind of the referenced object.
        slot: Which attribute is asked ("color" or "motion").
        answer_index: Ground-truth index into the slot's codebook.
        text: Human-readable form, for examples and logs.
    """

    kind_index: int
    slot: str
    answer_index: int
    text: str


def question_for(obj: SceneObject, slot: str) -> Question:
    """Build the question asking for ``slot`` of ``obj``."""
    if slot not in QUESTION_SLOTS:
        raise ValueError(f"unknown slot {slot!r}")
    answer_index = obj.color_index if slot == "color" else obj.motion_index
    return Question(
        kind_index=obj.kind_index,
        slot=slot,
        answer_index=answer_index,
        text=f"What is the {slot} of the {obj.kind}?",
    )


def random_question(scene: Scene, seed: int, sample_index: int = 0) -> Question:
    """Pick a random object and slot from the scene."""
    rng = rng_for(seed, "question", sample_index)
    obj = scene.objects[int(rng.integers(len(scene.objects)))]
    slot = QUESTION_SLOTS[int(rng.integers(len(QUESTION_SLOTS)))]
    return question_for(obj, slot)


def encode_text(
    question: Question,
    codebooks: Codebooks,
    num_tokens: int,
    seed: int,
    sample_index: int = 0,
    query_gain: float = 1.6,
) -> np.ndarray:
    """Encode a question as ``num_tokens`` text-token embeddings.

    The first ``num_tokens - 1`` tokens are filler "words" drawn from a
    fixed vocabulary (they model the linguistic scaffolding of the
    question); the final token is the query token carrying the
    referenced kind code.

    Returns:
        Array of shape ``(num_tokens, hidden)``.
    """
    if num_tokens < 1:
        raise ValueError("need at least one text token")
    layout = codebooks.layout
    rng = rng_for(seed, "text", sample_index)
    tokens = np.zeros((num_tokens, layout.hidden), dtype=np.float32)
    filler_ids = rng.integers(len(codebooks.filler_codes), size=num_tokens - 1)
    for i, filler_id in enumerate(filler_ids):
        tokens[i] = codebooks.filler_codes[filler_id]
        tokens[i] += 0.02 * rng.standard_normal(layout.hidden).astype(np.float32)
    query = np.zeros(layout.hidden, dtype=np.float32)
    query[layout.object_slice] = (
        query_gain * codebooks.kind_probe_codes[question.kind_index]
    )
    query += 0.02 * rng.standard_normal(layout.hidden).astype(np.float32)
    tokens[-1] = query
    return tokens
