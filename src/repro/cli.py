"""Command-line interface: regenerate any paper experiment through the
experiment engine.

Usage::

    python -m repro.cli list
    python -m repro.cli table2 --samples 8
    python -m repro.cli fig9 --samples 4 --workers 4
    python -m repro.cli table2 fig9 --samples 4      # shared cells run once
    python -m repro.cli all --cache-dir ~/.cache/repro-focus
    python -m repro.cli serve --port 8377 --workers 4 --eval-shards 1

Experiments come from the declarative registry
(:mod:`repro.engine.registry`); requesting several at once collects
their jobs into *one* deduplicated schedule, so evaluations shared
between tables and figures (Table II and Fig. 9 overlap on every video
cell) are computed a single time.

Flags:

``--samples N``
    Samples per evaluation cell (default: each driver's own default).
``--seed S``
    Experiment seed; all sample streams derive from it.
``--scenario SPEC``
    Generative workload spec ``family[:key=value,...]`` for the
    ``scenario`` experiment (families: ``mtconv``, ``stream``,
    ``tenantmix`` — see :mod:`repro.workloads.scenarios`).  Specs are
    canonicalized, so every spelling of one ``(family, seed, params)``
    triple shares one content-addressed cache entry, and scenario
    cells are prefix-stable: growing ``--samples`` re-executes only
    the suffix, exactly like the base datasets.
``--workers N``
    Process-pool size.  Results are bit-identical for any ``N``; only
    wall-clock changes.
``--sim-shards N``
    Split each trace-simulation batch into ``N`` sharded ``sim`` jobs
    (default: one per worker).  Sharded simulation is bit-identical to
    serial for any shard count.
``--eval-shards N``
    Evaluate each (model, dataset, method) cell in spans of ``N``
    samples, scheduled as individual ``eval-shard`` jobs (default:
    whole cells).  Sharded evaluation is bit-identical to serial for
    any span size; spans cache individually, so re-running with a
    larger ``--samples`` executes only each cell's new suffix spans.
    With ``--progress``, finished spans stream their cell's running
    accuracy/sparsity.
``--matcher {wavefront,reference}``
    Similarity-matcher implementation for every scheduled cell
    (default: wavefront, the level-scheduled batched matcher).
    ``reference`` re-runs on the retained row-at-a-time oracle — an
    A/B debugging escape hatch; both produce bit-identical results,
    only wall-clock differs.
``--forward-batch N``
    Forward-pass batch size for every scheduled cell (default: 1,
    the serial loop).  Same-shape samples stack into one tensorized
    pass; results are bit-identical for any batch size, only
    wall-clock differs.
``--retries N``
    Extra attempts per failed job (default: 0).  Attempts back off
    exponentially from ``--retry-backoff`` with deterministic jitter
    derived from the job key; every retry re-derives the same seeds,
    so retried results are bit-identical to first-try ones.
``--retry-backoff SECONDS``
    Base backoff before a job's second attempt (default: 0.05);
    doubles per retry, capped at 5s.
``--job-timeout SECONDS``
    Per-job wall-clock budget, enforced on the worker pool (needs
    ``--workers`` >= 2): a hung job's worker is reclaimed, innocent
    in-flight jobs are re-dispatched without penalty, and the job
    retries or fails per ``--retries``.
``--on-error {raise,collect}``
    What to do when a job exhausts its attempts: ``raise`` (default)
    aborts the run with the original error; ``collect`` keeps going,
    renders failed experiments as structured failure summaries, and
    exits with code 3 (partial results).  Worker-crash recovery is
    always on: a crashed worker's pool is respawned and only
    un-completed jobs are re-dispatched; a job that repeatedly kills
    its worker is quarantined as poisoned.
``--cache-dir DIR``
    On-disk content-addressed result cache.  A warm re-run of any
    experiment performs zero new evaluations.
``--cache-max-mb MB``
    LRU-prune the disk cache tier to at most ``MB`` megabytes, evicting
    the least-recently-used entries first.
``--no-cache``
    Disable result caching (memory and disk) entirely.
``--remote-cache URL``
    Shared result-cache server (``python -m repro.cli cache-server``)
    consulted as the third tier after memory and disk; fetched
    payloads are sha256-verified before use and new results are
    published back asynchronously.  Conflicts with ``--no-cache``.
``--peers URLS``
    Comma-separated ``repro serve`` peer base URLs.  Job batches are
    partitioned over the fleet (local engine included) by rendezvous
    hashing on each job's content address; an unreachable peer's
    share is requeued for local execution without penalty, so the
    run's results are bit-identical for any peer count.
``--progress``
    Stream per-job progress lines to stderr.
``--progress-jsonl PATH``
    Stream progress as canonical JSON-lines events (the same codec the
    serving frontend speaks — :mod:`repro.serve.events`) to ``PATH``,
    or to stderr with ``-``.  The stream ends with a terminal
    ``run-done`` event carrying per-report content digests, so offline
    and served runs of one spec are byte-comparable.

``serve`` subcommand
    ``python -m repro.cli serve`` starts the asyncio HTTP frontend
    (:mod:`repro.serve.server`): ``POST /runs`` launches any registry
    spec, ``GET /runs/{id}/events`` streams progress as Server-Sent
    Events or JSON lines with ``Last-Event-ID`` resume, and
    ``GET /runs/{id}/result`` returns the assembled reports.  Every
    event writes through to a durable SQLite run store (default
    ``repro-runs.sqlite``; disable with ``--no-store``), so resume is
    lossless past ring eviction and across restarts.  Serve flags:
    ``--host/--port/--workers/--sim-shards/--eval-shards/--cache-dir/
    --cache-max-mb/--no-cache/--retries/--retry-backoff/--job-timeout/
    --ring-size/--store-path/--no-store``.

``replay`` subcommand
    ``python -m repro.cli replay <run-id>`` re-streams a stored run
    byte-identically to the recorded live SSE stream (``--format
    jsonl`` for the JSON-lines body), with ``--last-event-id N`` for
    mid-replay resume — the offline twin of the events endpoint.

``runs`` subcommand
    ``python -m repro.cli runs [run-id]`` lists stored runs (newest
    first) or inspects one: status, event count, per-report sha256
    digests.  ``--latest`` prints only the newest run id; ``--json``
    for machines.

``load`` subcommand
    ``python -m repro.cli load`` replays a traffic trace against a
    live ``repro serve`` endpoint (:mod:`repro.load`): open-loop
    Poisson/burst arrivals or closed-loop concurrency with think
    time, a ``--virtual`` clock for deterministic simulated
    timelines, and per-request p50/p95/p99 latency, time-to-first-
    event, and subscriber fan-out written as a ``BENCH_load.json``-
    shaped report via ``--output``.

``cache-server`` subcommand
    ``python -m repro.cli cache-server`` starts the standalone
    content-addressed result-cache server
    (:mod:`repro.remote.cache_server`): ``GET/PUT/HEAD
    /cache/{job_id}`` plus a batched ``POST /cache/manifest``
    presence probe, with LRU pruning past ``--max-mb``.  Point any
    number of engines at it with ``--remote-cache``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.engine import (
    ExperimentEngine,
    ExperimentFailure,
    ProgressEvent,
    ResultCache,
    RetryPolicy,
)
from repro.engine import registry
from repro.engine.registry import (
    EXPERIMENT_REGISTRY,
    experiment_names,
)
from repro.eval import reporting as rep  # noqa: F401  (attaches formatters)

EXIT_PARTIAL = 3
"""Exit status of an ``--on-error collect`` run that lost experiments."""


def positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (>= 1)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def nonnegative_int(text: str) -> int:
    """Argparse type: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def positive_float(text: str) -> float:
    """Argparse type: a strictly positive, finite number."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def nonnegative_float(text: str) -> float:
    """Argparse type: a finite number >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not value >= 0 or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def http_url(text: str) -> str:
    """Argparse type: an ``http://host[:port]`` base URL."""
    from urllib.parse import urlsplit

    candidate = text.strip().rstrip("/")
    parts = urlsplit(candidate)
    if parts.scheme != "http" or not parts.hostname:
        raise argparse.ArgumentTypeError(
            f"must look like http://host[:port], got {text!r}"
        )
    if parts.path or parts.query or parts.fragment:
        raise argparse.ArgumentTypeError(
            f"must be a bare base URL (no path/query), got {text!r}"
        )
    try:
        parts.port  # raises ValueError on a malformed port
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad port in {text!r}")
    return candidate


def peer_list(text: str) -> list[str]:
    """Argparse type: comma-separated peer base URLs, each validated."""
    urls = [piece for piece in
            (chunk.strip() for chunk in text.split(",")) if piece]
    if not urls:
        raise argparse.ArgumentTypeError("no peer URLs given")
    return [http_url(url) for url in urls]


def scenario_spec(text: str) -> str:
    """Argparse type: a ``family[:key=value,...]`` scenario spec.

    The spec is canonicalized (defaults filled in, params sorted), so
    every spelling of one ``(family, seed, params)`` triple produces
    byte-identical engine job keys — and therefore shared cache
    entries.
    """
    from repro.workloads.scenarios import parse_scenario

    try:
        return parse_scenario(text).name
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate experiments from the Focus paper.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help="experiment names (or 'list' / 'all')",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="samples per evaluation cell (default: driver default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed",
    )
    parser.add_argument(
        "--scenario", type=scenario_spec, default=None, metavar="SPEC",
        help="generative workload spec 'family[:key=value,...]' for "
             "the 'scenario' experiment (families: mtconv, stream, "
             "tenantmix; canonicalized so every spelling of one spec "
             "shares one content-addressed cache entry)",
    )
    parser.add_argument(
        "--workers", type=positive_int, default=1,
        help="worker processes (results are identical for any count)",
    )
    parser.add_argument(
        "--sim-shards", type=positive_int, default=None,
        help="shards per trace-simulation batch (default: one per "
             "worker; results are identical for any count)",
    )
    parser.add_argument(
        "--eval-shards", type=positive_int, default=None,
        help="samples per evaluation shard (default: whole cells; "
             "results are identical for any span size)",
    )
    parser.add_argument(
        "--matcher", choices=("wavefront", "reference"), default=None,
        help="similarity-matcher implementation (default: wavefront; "
             "'reference' is the serial oracle for A/B debugging — "
             "results are bit-identical, only wall-clock differs)",
    )
    parser.add_argument(
        "--forward-batch", type=int, default=None,
        help="forward-pass batch size (default: 1, the serial loop; "
             "same-shape samples stack into one tensorized pass — "
             "results are bit-identical, only wall-clock differs)",
    )
    parser.add_argument(
        "--retries", type=nonnegative_int, default=0,
        help="extra attempts per failed job (default: 0; retried "
             "results are bit-identical to first-try ones)",
    )
    parser.add_argument(
        "--retry-backoff", type=nonnegative_float, default=0.05,
        metavar="SECONDS",
        help="base backoff before a job's second attempt (default: "
             "0.05; doubles per retry with deterministic jitter)",
    )
    parser.add_argument(
        "--job-timeout", type=positive_float, default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (pool mode only): a hung "
             "job's worker is reclaimed and the job retries or fails "
             "per --retries",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "collect"), default="raise",
        help="when a job exhausts its attempts: 'raise' aborts the "
             "run (default); 'collect' keeps going, reports failed "
             "experiments as structured summaries, and exits 3",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="on-disk result cache directory (reused across runs)",
    )
    parser.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="LRU-prune the disk cache to at most this many megabytes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the evaluation result cache",
    )
    parser.add_argument(
        "--remote-cache", type=http_url, default=None, metavar="URL",
        help="shared result-cache server (repro.cli cache-server) "
             "consulted after the memory and disk tiers; results are "
             "published back asynchronously and digest-verified on "
             "fetch",
    )
    parser.add_argument(
        "--peers", type=peer_list, default=None, metavar="URLS",
        help="comma-separated 'repro serve' peer base URLs; job "
             "batches are partitioned over the fleet by rendezvous "
             "hashing, and an unreachable peer's share falls back to "
             "local execution (results stay bit-identical)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="stream per-job progress to stderr",
    )
    parser.add_argument(
        "--progress-jsonl", default=None, metavar="PATH",
        help="stream progress as JSON-lines events (the serving "
             "frontend's codec) to PATH, or stderr with '-'",
    )
    return parser


def _print_progress(event: ProgressEvent) -> None:
    if event.action == "eval-shard-done" and event.detail:
        d = event.detail
        print(
            f"[engine {event.completed}/{event.total} "
            f"{event.elapsed_s:6.1f}s] shard "
            f"{d['shards_done']}/{d['shards_total']} of {d['parent']} | "
            f"running acc {d['accuracy']:.1f}% "
            f"sparsity {d['sparsity']:.1f}% "
            f"({d['samples']} samples)",
            file=sys.stderr,
        )
        return
    print(
        f"[engine {event.completed}/{event.total} "
        f"{event.elapsed_s:6.1f}s] {event.action:9s} "
        f"{event.job.describe()}",
        file=sys.stderr,
    )


def _jsonl_progress(stream) -> "ProgressCallback":
    """Progress callback writing canonical codec events as JSON lines."""
    from repro.serve import events as codec

    def write(event: ProgressEvent) -> None:
        stream.write(codec.to_json(codec.encode_progress(event)) + "\n")
        stream.flush()

    return write


def make_engine(
    workers: int = 1,
    cache_dir: str | None = None,
    no_cache: bool = False,
    progress: bool = False,
    sim_shards: int | None = None,
    cache_max_mb: float | None = None,
    eval_shards: int | None = None,
    progress_jsonl=None,
    retries: int = 0,
    retry_backoff: float = 0.05,
    job_timeout: float | None = None,
    remote_cache: str | None = None,
    peers: list[str] | None = None,
) -> ExperimentEngine:
    """Build an engine from CLI-style options.

    ``progress_jsonl`` is an open text stream; when given, every
    progress event is also written to it as one canonical JSON line
    (:mod:`repro.serve.events`) — the same wire format the serving
    frontend streams, so offline and served runs are comparable.

    ``retries`` extra attempts per failed job (``max_attempts =
    retries + 1``) backing off from ``retry_backoff`` seconds, and
    ``job_timeout`` caps each job's wall clock (pool mode).

    ``remote_cache`` is a cache-server base URL wired in as the
    third lookup tier, and ``peers`` a list of ``repro serve`` base
    URLs to fan job batches out to (rendezvous-partitioned, with
    local fallback for any share a peer cannot finish).
    """
    max_disk_bytes = (
        int(cache_max_mb * 1e6) if cache_max_mb is not None else None
    )
    remote = None
    if remote_cache is not None and not no_cache:
        # Lazy: only remote-tier runs pay for the client stack.
        from repro.remote.client import RemoteCacheClient

        remote = RemoteCacheClient(remote_cache)
    cache = ResultCache(
        cache_dir=cache_dir,
        enabled=not no_cache,
        max_disk_bytes=max_disk_bytes,
        remote=remote,
    )
    callbacks = []
    if progress:
        callbacks.append(_print_progress)
    if progress_jsonl is not None:
        callbacks.append(_jsonl_progress(progress_jsonl))
    if not callbacks:
        callback = None
    elif len(callbacks) == 1:
        callback, = callbacks
    else:
        def callback(event: ProgressEvent) -> None:
            for each in callbacks:
                each(event)
    retry_policy = None
    if retries > 0:
        retry_policy = RetryPolicy(
            max_attempts=retries + 1, backoff_s=retry_backoff
        )
    return ExperimentEngine(
        workers=workers,
        cache=cache,
        progress=callback,
        sim_shards=sim_shards,
        eval_shards=eval_shards,
        retry_policy=retry_policy,
        job_timeout_s=job_timeout,
        peers=peers,
    )


def run_experiment(
    name: str,
    samples: int | None = None,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
    matcher: str | None = None,
    forward_batch: int | None = None,
    on_error: str = "raise",
    scenario: str | None = None,
) -> str:
    """Run one experiment and return its formatted report."""
    text, = run_experiments(
        [name], samples, seed, engine, matcher, forward_batch, on_error,
        scenario,
    ).values()
    return text


def run_experiments(
    names: list[str],
    samples: int | None = None,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
    matcher: str | None = None,
    forward_batch: int | None = None,
    on_error: str = "raise",
    scenario: str | None = None,
) -> dict[str, str]:
    """Run several experiments as one schedule; return formatted reports.

    Jobs are collected from every requested experiment before anything
    executes, so duplicates across experiments are evaluated once.
    With ``on_error="collect"``, experiments whose jobs were
    permanently lost render their deterministic failure summary
    instead of raising.
    """
    reports, _ = _run_detailed(
        names, samples, seed, engine, matcher, forward_batch, on_error,
        scenario,
    )
    return reports


def _run_detailed(
    names: list[str],
    samples: int | None,
    seed: int,
    engine: ExperimentEngine | None,
    matcher: str | None,
    forward_batch: int | None,
    on_error: str,
    scenario: str | None = None,
) -> tuple[dict[str, str], dict[str, object]]:
    """Run a schedule; return formatted reports + structured failures.

    ``failures`` maps each failed experiment name (``on_error=
    "collect"`` only) to its :meth:`~repro.engine.faults.
    ExperimentFailure.as_detail` record.
    """
    engine = engine if engine is not None else make_engine()
    params: dict = {"seed": seed}
    if samples is not None:
        params["num_samples"] = samples
    if matcher is not None:
        params["matcher"] = matcher
    if forward_batch is not None:
        params["forward_batch"] = forward_batch
    if scenario is not None:
        params["scenario"] = scenario
    results = registry.run_experiments(
        names, engine, on_error=on_error, **params
    )
    reports = {}
    failures: dict[str, object] = {}
    for name, result in results.items():
        reports[name] = registry.format_result(name, result)
        if isinstance(result, ExperimentFailure):
            failures[name] = result.as_detail()
    return reports, failures


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        # Lazy: only the serve path pays for the serving stack.
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["replay"]:
        from repro.store.replay import replay_main

        return replay_main(argv[1:])
    if argv[:1] == ["runs"]:
        from repro.store.replay import runs_main

        return runs_main(argv[1:])
    if argv[:1] == ["cache-server"]:
        from repro.remote.cache_server import main as cache_server_main

        return cache_server_main(argv[1:])
    if argv[:1] == ["load"]:
        from repro.load.cli import main as load_main

        return load_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_cache and args.remote_cache is not None:
        parser.error("--no-cache conflicts with --remote-cache")
    names = list(args.experiments)
    available = experiment_names()
    if names == ["list"]:
        for name in available:
            print(f"  {name:10s} {EXPERIMENT_REGISTRY[name].description}")
        return 0
    if names == ["all"]:
        names = list(available)
    unknown = [n for n in names if n not in available]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'list'",
              file=sys.stderr)
        return 2
    if args.scenario is not None and set(names) != {"scenario"}:
        # run_experiments forwards params to every requested plan
        # factory, and only the scenario factory accepts a spec.
        parser.error("--scenario only applies to the 'scenario' "
                     "experiment")
    if args.cache_dir is not None:
        cache_path = Path(args.cache_dir)
        if cache_path.exists() and not cache_path.is_dir():
            print(
                f"--cache-dir {args.cache_dir!r} exists and is not a "
                "directory", file=sys.stderr,
            )
            return 2

    jsonl_stream = None
    if args.progress_jsonl is not None:
        jsonl_stream = (
            sys.stderr if args.progress_jsonl == "-"
            else open(args.progress_jsonl, "w", encoding="utf-8")
        )
    engine = make_engine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        progress=args.progress,
        sim_shards=args.sim_shards,
        cache_max_mb=args.cache_max_mb,
        eval_shards=args.eval_shards,
        progress_jsonl=jsonl_stream,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        job_timeout=args.job_timeout,
        remote_cache=args.remote_cache,
        peers=args.peers,
    )
    start = time.time()
    if jsonl_stream is not None:
        from repro.serve import events as codec

        params = {"seed": args.seed}
        if args.samples is not None:
            params["num_samples"] = args.samples
        if args.matcher is not None:
            params["matcher"] = args.matcher
        if args.forward_batch is not None:
            params["forward_batch"] = args.forward_batch
        if args.scenario is not None:
            params["scenario"] = args.scenario
        jsonl_stream.write(codec.to_json(
            codec.encode_run_started("offline", names, params)
        ) + "\n")
    try:
        reports, failures = _run_detailed(
            names, args.samples, args.seed, engine, args.matcher,
            args.forward_batch, args.on_error, args.scenario,
        )
    except BaseException as exc:
        if jsonl_stream is not None:
            # Terminate the stream explicitly: consumers must be able
            # to tell a failed run from a truncated one.
            jsonl_stream.write(codec.to_json(codec.encode_run_failed(
                "offline", f"{type(exc).__name__}: {exc}",
                time.time() - start,
            )) + "\n")
            jsonl_stream.flush()
            if jsonl_stream is not sys.stderr:
                jsonl_stream.close()
        engine.close()
        raise
    else:
        engine.close()
    if jsonl_stream is not None:
        if failures:
            terminal = codec.encode_run_partial(
                "offline", reports, failures, time.time() - start
            )
        else:
            terminal = codec.encode_run_done(
                "offline", reports, time.time() - start
            )
        jsonl_stream.write(codec.to_json(terminal) + "\n")
        jsonl_stream.flush()
        if jsonl_stream is not sys.stderr:
            jsonl_stream.close()
    for name in names:
        print(reports[name])
        print()
    stats = engine.stats
    cache = engine.cache.stats
    shard_notes = []
    for kind, label in (("sim", "sim shards"), ("eval-shard", "eval shards")):
        executed = stats.executed_by_kind.get(kind, 0)
        if executed:
            shard_notes.append(f"{executed} {label}")
    shard_note = f" ({', '.join(shard_notes)})" if shard_notes else ""
    fault_notes = []
    for field, label in (
        ("retries", "retries"), ("timeouts", "timeouts"),
        ("pool_crashes", "pool crashes"), ("quarantined", "quarantined"),
        ("peer_failures", "peer failures"), ("failed", "failed"),
    ):
        count = getattr(stats, field)
        if count:
            fault_notes.append(f"{count} {label}")
    fault_note = f" | faults: {', '.join(fault_notes)}" if fault_notes else ""
    tier_bits = [f"{cache.disk_hits} from disk"]
    if engine.cache.remote is not None:
        tier_bits.append(f"{cache.remote_hits} from remote")
    peer_note = (
        f", {stats.remote_jobs} on peers" if stats.remote_jobs else ""
    )
    print(
        f"[{', '.join(names)} done in {time.time() - start:.1f}s | "
        f"jobs: {stats.jobs_submitted} submitted, "
        f"{stats.jobs_deduped} deduped, {stats.cache_hits} cached "
        f"({', '.join(tier_bits)}), {stats.executed} executed"
        f"{shard_note}{peer_note}{fault_note} | workers={engine.workers}]"
    )
    if failures:
        print(
            f"warning: {len(failures)} experiment(s) incomplete: "
            f"{', '.join(sorted(failures))}",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
