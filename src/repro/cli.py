"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro.cli list
    python -m repro.cli table2 --samples 8
    python -m repro.cli fig9 --samples 4
    python -m repro.cli fig10a fig10b --samples 2

Each experiment prints the paper-style rows produced by
:mod:`repro.eval.reporting`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.eval import experiments as exp
from repro.eval import reporting as rep

EXPERIMENTS: dict[str, tuple[Callable, Callable, str]] = {
    "table2": (exp.table2, rep.format_table2,
               "accuracy and sparsity of all methods (Table II)"),
    "table3": (exp.table3, rep.format_table3,
               "architecture config comparison (Table III)"),
    "table4": (exp.table4, rep.format_table4,
               "INT8 quantization synergy (Table IV)"),
    "table5": (exp.table5, rep.format_table5,
               "image-VLM generalization (Table V)"),
    "fig2b": (exp.fig2b, rep.format_fig2b,
              "similarity CDF vs vector size (Fig. 2b)"),
    "fig2c": (exp.fig2c, rep.format_fig2c,
              "sparsity/accuracy bars (Fig. 2c)"),
    "fig9": (exp.fig9, rep.format_fig9,
             "speedup + energy vs baselines (Fig. 9)"),
    "fig10a": (exp.fig10a,
               lambda p: rep.format_sweep("FIG 10(a): m-tile size", p),
               "DSE: GEMM m-tile size (Fig. 10a)"),
    "fig10b": (exp.fig10b,
               lambda p: rep.format_sweep("FIG 10(b): vector size", p),
               "DSE: vector size (Fig. 10b)"),
    "fig10c": (exp.fig10c,
               lambda p: rep.format_sweep("FIG 10(c): block size", p),
               "DSE: SIC block size (Fig. 10c)"),
    "fig10d": (exp.fig10d,
               lambda p: rep.format_sweep("FIG 10(d): accumulators", p),
               "DSE: scatter accumulators (Fig. 10d)"),
    "fig11": (exp.fig11, rep.format_fig11, "ablation study (Fig. 11)"),
    "fig12": (exp.fig12, rep.format_fig12, "memory access (Fig. 12)"),
    "fig13": (exp.fig13, rep.format_fig13,
              "tile lengths + utilization (Fig. 13)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate experiments from the Focus paper.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help="experiment names (or 'list' / 'all')",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="samples per evaluation cell (default: driver default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed",
    )
    return parser


def run_experiment(name: str, samples: int | None, seed: int) -> str:
    driver, formatter, _ = EXPERIMENTS[name]
    kwargs: dict = {"seed": seed}
    if samples is not None:
        kwargs["num_samples"] = samples
    result = driver(**kwargs)
    return formatter(result)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(args.experiments)
    if names == ["list"]:
        for name, (_, _, description) in EXPERIMENTS.items():
            print(f"  {name:10s} {description}")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'list'",
              file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        print(run_experiment(name, args.samples, args.seed))
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
