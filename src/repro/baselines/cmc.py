"""CMC baseline (Song et al., ASPLOS 2024).

CMC accelerates video transformers with a codec-assisted matrix
condensing unit: an H.264-style block-matching search finds, for every
token of frame ``f``, the best-matching token within a small spatial
search window of frame ``f-1``; sufficiently similar tokens are
*condensed* out of the GEMMs and restored from their reference
afterwards.  The search operates on raw content (the codec sees
pixels, not positional embeddings), at whole-token granularity, and
globally over the sequence — the three properties the Focus paper
contrasts against.

Our port runs the same search over the content sub-spaces of the
synthetic patch embeddings (object + attribute + texture; the
positional sub-space is excluded exactly because a codec never sees
it), then drops condensed tokens for the whole LLM run.
"""

from __future__ import annotations

import numpy as np

from repro.model.embedding import SubspaceLayout
from repro.model.plugins import InferencePlugin
from repro.model.vlm import TokenState


class CMCPlugin(InferencePlugin):
    """Codec-style inter-frame token condensing at model entry."""

    reusable = True
    """Configuration-only state (layout, threshold, search range)."""

    def __init__(
        self,
        layout: SubspaceLayout,
        threshold: float = 0.55,
        search_range: int = 1,
    ) -> None:
        """Create a CMC plugin.

        Args:
            layout: Hidden-dimension layout (to exclude positional dims
                from the codec's view).
            threshold: Content cosine above which a token is condensed
                into its reference.
            search_range: Spatial search radius (patches) in the
                previous frame, mirroring codec motion search.
        """
        if search_range < 0:
            raise ValueError("search_range must be >= 0")
        self.layout = layout
        self.threshold = threshold
        self.search_range = search_range

    def _content(self, hidden: np.ndarray) -> np.ndarray:
        """The codec's view: everything except the positional code."""
        pos = self.layout.position_slice
        return np.concatenate(
            [hidden[:, : pos.start], hidden[:, pos.stop:]], axis=1
        )

    def on_visual_tokens(self, state: TokenState) -> None:
        content = self._content(state.hidden)
        norms = np.linalg.norm(content, axis=1)
        positions = state.positions
        lookup: dict[tuple[int, int, int], int] = {}
        for idx in np.nonzero(~state.is_text)[0]:
            frame, row, col = (int(v) for v in positions[idx])
            lookup[(frame, row, col)] = int(idx)

        drop = np.zeros(state.num_tokens, dtype=bool)
        comparisons = 0
        span = range(-self.search_range, self.search_range + 1)
        for (frame, row, col), idx in sorted(lookup.items()):
            if frame == 0:
                continue
            best_sim, best_ref = -1.0, -1
            for dr in span:
                for dc in span:
                    ref = lookup.get((frame - 1, row + dr, col + dc))
                    if ref is None or drop[ref]:
                        continue
                    comparisons += 1
                    denominator = norms[idx] * norms[ref]
                    if denominator < 1e-12:
                        continue
                    sim = float(content[idx] @ content[ref]) / denominator
                    if sim > best_sim:
                        best_sim, best_ref = sim, ref
            if best_ref >= 0 and best_sim > self.threshold:
                # Condense: the token drops out of every GEMM and is
                # restored from its reference at the output.
                drop[idx] = True

        state.trace.preprocess_macs += comparisons * content.shape[1]
        if drop.any():
            state.apply_keep(~drop)
