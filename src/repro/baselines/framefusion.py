"""FrameFusion baseline (Fu et al., 2024).

FrameFusion combines *similarity* and *importance* for video token
reduction: in an early layer it merges tokens that are highly similar
to the token at the same spatial position of the previous frame, then
prunes the least-important remaining tokens (by attention received)
until a fixed compute-sparsity budget is met.  The paper runs it at a
70% sparsity target (Table II's "FF" column) as a software-only method
on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.model.functional import cosine_similarity_matrix
from repro.model.plugins import InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.vlm import TokenState


class FrameFusionPlugin(InferencePlugin):
    """Similarity merge + importance prune at a fixed sparsity target."""

    needs_attention_summary = True
    """Importance pruning reads ``state.scratch["attn_received"]``; the
    engine computes it lazily only for plugins that declare the need."""

    reusable = True
    """The only cross-forward state, ``_token_history``, is reset in
    :meth:`begin`, so one instance may drive many passes."""

    def __init__(
        self,
        model_config: ModelConfig,
        target_sparsity: float = 0.70,
        merge_layer: int = 1,
        prune_layer: int = 2,
        merge_threshold: float = 0.6,
    ) -> None:
        """Create a FrameFusion plugin.

        Args:
            model_config: Geometry of the model (for the op-accurate
                sparsity budget).
            target_sparsity: Fraction of dense compute to eliminate.
            merge_layer: Layer before which temporal merging runs.
            prune_layer: Layer before which importance pruning runs.
            merge_threshold: Hidden-state cosine above which a token is
                merged into its previous-frame counterpart.
        """
        if not 0.0 <= target_sparsity < 1.0:
            raise ValueError("target_sparsity must lie in [0, 1)")
        if prune_layer <= merge_layer:
            raise ValueError("pruning must follow merging")
        self.model_config = model_config
        self.num_layers = model_config.num_layers
        self.target_sparsity = target_sparsity
        self.merge_layer = merge_layer
        self.prune_layer = prune_layer
        self.merge_threshold = merge_threshold
        self._token_history: list[int] = []

    def _layer_ops(self, tokens: int) -> float:
        """Per-layer MACs at a given token count (linear + quadratic)."""
        d = self.model_config.hidden
        ffn = self.model_config.ffn_hidden
        linear = d * (4 * d + 2 * ffn)
        quadratic = 2 * d
        return linear * tokens + quadratic * tokens * tokens

    def begin(self, state: TokenState) -> None:
        self._token_history = []

    def before_layer(self, layer_index: int, state: TokenState) -> None:
        self._token_history.append(state.num_tokens)
        if layer_index == self.merge_layer:
            self._merge_temporal(state)
        elif layer_index == self.prune_layer:
            self._prune_importance(state)

    def _merge_temporal(self, state: TokenState) -> None:
        """Merge tokens similar to their previous-frame counterpart."""
        image = ~state.is_text
        positions = state.positions
        hidden = state.hidden
        lookup: dict[tuple[int, int, int], int] = {}
        for idx in np.nonzero(image)[0]:
            frame, row, col = (int(v) for v in positions[idx])
            lookup[(frame, row, col)] = int(idx)

        drop = np.zeros(state.num_tokens, dtype=bool)
        comparisons = 0
        for (frame, row, col), idx in lookup.items():
            if frame == 0 or drop[idx]:
                continue
            prev = lookup.get((frame - 1, row, col))
            if prev is None or drop[prev]:
                continue
            comparisons += 1
            sim = cosine_similarity_matrix(
                hidden[idx:idx + 1], hidden[prev:prev + 1]
            )[0, 0]
            if sim > self.merge_threshold:
                # Average into the earlier token, drop the later one.
                hidden[prev] = 0.5 * (hidden[prev] + hidden[idx])
                drop[idx] = True
        state.trace.preprocess_macs += comparisons * hidden.shape[1]
        if drop.any():
            state.hidden = hidden
            state.apply_keep(~drop)

    def _prune_importance(self, state: TokenState) -> None:
        """Prune least-attended tokens to hit the sparsity budget."""
        budget = self._keep_budget(state)
        image_indices = np.nonzero(~state.is_text)[0]
        if image_indices.size <= budget:
            return
        received = state.scratch.get("attn_received")
        if received is None:
            return
        importance = np.asarray(received)[image_indices]
        order = np.argsort(-importance, kind="stable")
        keep = np.ones(state.num_tokens, dtype=bool)
        keep[image_indices[order[budget:]]] = False
        state.trace.preprocess_macs += int(importance.size)
        state.apply_keep(keep)

    def _keep_budget(self, state: TokenState) -> int:
        """Image tokens to keep so total compute hits the target.

        With some layers already executed at recorded token counts, the
        per-layer allowance for the remaining layers solves the
        quadratic ``linear * s + quadratic * s^2 = allowance`` for the
        total token count ``s`` (attention is quadratic in tokens).
        """
        num_text = state.num_text
        dense_tokens = state.num_image_initial + num_text
        dense_total = self.num_layers * self._layer_ops(dense_tokens)
        executed = sum(self._layer_ops(s) for s in self._token_history[:-1])
        remaining = self.num_layers - max(len(self._token_history) - 1, 0)
        allowance = (1.0 - self.target_sparsity) * dense_total - executed
        per_layer = allowance / max(remaining, 1)

        d = self.model_config.hidden
        linear = d * (4 * d + 2 * self.model_config.ffn_hidden)
        quadratic = 2 * d
        discriminant = linear * linear + 4 * quadratic * max(per_layer, 0.0)
        tokens_total = (-linear + np.sqrt(discriminant)) / (2 * quadratic)
        return max(int(tokens_total) - num_text, 1)
