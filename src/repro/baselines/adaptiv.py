"""AdapTiV baseline (Yoo et al., MICRO 2024).

AdapTiV is a ViT accelerator that merges *spatially adjacent* tokens
using a lightweight sign-bit similarity check: two embeddings whose
element signs mostly agree are deemed redundant and averaged.  It
operates on static images (intra-frame only), processes whole tokens,
and runs before the transformer stack.  The paper extends it to VLMs
by applying the merge to every frame independently and excluding text
tokens; we implement that extension.
"""

from __future__ import annotations

import numpy as np

from repro.model.plugins import InferencePlugin
from repro.model.vlm import TokenState


def sign_agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of elements whose signs agree (the AdapTiV metric)."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError("sign agreement needs equal-length vectors")
    return float(np.mean(np.sign(a) == np.sign(b)))


class AdapTiVPlugin(InferencePlugin):
    """Sign-similarity intra-frame token merging at model entry."""

    reusable = True
    """Configuration-only state (threshold, rounds); every pass reads
    fresh token state."""

    def __init__(self, threshold: float = 0.80, rounds: int = 2) -> None:
        """Create an AdapTiV plugin.

        Args:
            threshold: Sign-agreement fraction above which the current
                token merges into its left neighbour.
            rounds: Merge passes (each pass halves at most).
        """
        if not 0.5 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0.5, 1]")
        self.threshold = threshold
        self.rounds = rounds

    def on_visual_tokens(self, state: TokenState) -> None:
        hidden = state.hidden
        positions = state.positions
        comparisons = 0
        drop = np.zeros(state.num_tokens, dtype=bool)
        merged_into = np.arange(state.num_tokens)

        for _ in range(self.rounds):
            # Raster-order pass per frame: compare each surviving token
            # with the nearest surviving token to its left in the same
            # row (AdapTiV pairs neighbours; holes skip ahead).
            last_seen: dict[tuple[int, int], int] = {}
            for idx in np.nonzero(~state.is_text & ~drop)[0]:
                frame, row, col = (int(v) for v in positions[idx])
                key = (frame, row)
                prev = last_seen.get(key)
                last_seen[key] = int(idx)
                if prev is None:
                    continue
                comparisons += 1
                if sign_agreement(hidden[idx], hidden[prev]) > self.threshold:
                    root = int(merged_into[prev])
                    hidden[root] = 0.5 * (hidden[root] + hidden[idx])
                    merged_into[idx] = root
                    drop[idx] = True
                    last_seen[key] = root

        # Sign comparisons are 1-bit ops; count them in MAC-equivalents
        # at 1/16 cost (16-bit datapath).
        state.trace.preprocess_macs += comparisons * hidden.shape[1] // 16
        if drop.any():
            state.hidden = hidden
            state.apply_keep(~drop)
