"""Dense baseline: the vanilla systolic-array execution (no compression)."""

from __future__ import annotations

from repro.model.plugins import InferencePlugin


class DensePlugin(InferencePlugin):
    """Explicit no-op plugin, for symmetric method registries."""

    reusable = True
    """No state at all; one instance serves any number of passes."""
