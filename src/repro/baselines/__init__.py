"""Baseline methods: FrameFusion, AdapTiV, CMC, dense, GPU roofline."""

from repro.baselines.adaptiv import AdapTiVPlugin, sign_agreement
from repro.baselines.cmc import CMCPlugin
from repro.baselines.dense import DensePlugin
from repro.baselines.framefusion import FrameFusionPlugin
from repro.baselines.gpu import (
    A100,
    JETSON_ORIN_NANO,
    GpuSimResult,
    GpuSpec,
    simulate_gpu,
)

__all__ = [
    "AdapTiVPlugin",
    "sign_agreement",
    "CMCPlugin",
    "DensePlugin",
    "FrameFusionPlugin",
    "A100",
    "JETSON_ORIN_NANO",
    "GpuSimResult",
    "GpuSpec",
    "simulate_gpu",
]
