"""GPU roofline comparator (the Fig. 9 "GPU" and "GPU + FF" bars).

The paper's GPU reference is an NVIDIA Jetson Orin Nano running the
VLM in FP16, with and without FrameFusion.  A roofline model — latency
is the max of compute time at achievable FLOPs and transfer time at
achievable bandwidth — captures exactly the regime those bars encode:
the GPU under-utilizes its tensor cores on irregularly-sparse work,
while the dedicated accelerator converts sparsity into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.trace import ModelTrace


@dataclass(frozen=True)
class GpuSpec:
    """Roofline parameters of a GPU.

    Attributes:
        name: Display name.
        peak_tflops: Peak dense FP16 tensor throughput (TFLOP/s).
        bandwidth_gbs: Peak DRAM bandwidth (GB/s).
        board_power_w: Sustained board power under inference load.
        utilization: Achievable fraction of peak compute on transformer
            GEMMs (kernel-launch overheads, attention memory-bound
            phases, unpadded shapes).
        sparse_utilization: Achievable fraction of peak on *irregularly
            sparse* work (token pruning produces ragged shapes that
            tensor cores pad away — the reason FrameFusion's 70%
            sparsity does not become a 3.3x GPU speedup).
        overhead_fraction: Extra runtime fraction spent by token-
            reduction logic itself (ToMe-style modules add up to 36.8%;
            FrameFusion's selection adds a milder cost).
    """

    name: str
    peak_tflops: float
    bandwidth_gbs: float
    board_power_w: float
    utilization: float = 0.55
    sparse_utilization: float = 0.35
    overhead_fraction: float = 0.12


JETSON_ORIN_NANO = GpuSpec(
    name="jetson-orin-nano",
    peak_tflops=5.0,
    bandwidth_gbs=68.0,
    board_power_w=15.0,
    utilization=0.12,
    sparse_utilization=0.11,
    overhead_fraction=0.05,
)
"""Jetson Orin Nano 8GB: ~5 dense FP16 TFLOPS peak; batch-1 VLM prefill
achieves ~12% of it (kernel launches, attention memory phases, unpadded
shapes), which puts the GPU at ~0.6x of the 1-TOPS systolic array as in
Fig. 9."""

A100 = GpuSpec(
    name="a100",
    peak_tflops=312.0,
    bandwidth_gbs=1555.0,
    board_power_w=400.0,
)
"""A100-SXM4-80GB, the paper's algorithm-evaluation GPU."""


@dataclass(frozen=True)
class GpuSimResult:
    """Latency and energy of one forward pass on the roofline model."""

    latency_s: float
    energy_j: float
    compute_bound: bool


def simulate_gpu(
    trace: ModelTrace,
    spec: GpuSpec = JETSON_ORIN_NANO,
    sparse: bool = False,
) -> GpuSimResult:
    """Roofline latency/energy for an executed trace.

    Args:
        trace: Trace of the forward pass (dense or token-reduced).
        spec: GPU parameters.
        sparse: Whether the workload carries irregular sparsity (token
            reduction); lowers achievable utilization and adds the
            reduction logic's overhead.
    """
    flops = 2.0 * trace.total_macs
    payload_bytes = (
        trace.activation_read_bytes
        + trace.activation_write_bytes
        + trace.weight_bytes
    )
    utilization = spec.sparse_utilization if sparse else spec.utilization
    compute_s = flops / (spec.peak_tflops * 1e12 * utilization)
    memory_s = payload_bytes / (spec.bandwidth_gbs * 1e9)
    latency = max(compute_s, memory_s)
    if sparse:
        latency *= 1.0 + spec.overhead_fraction
    return GpuSimResult(
        latency_s=latency,
        energy_j=latency * spec.board_power_w,
        compute_bound=compute_s >= memory_s,
    )
