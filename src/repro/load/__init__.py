"""Open/closed-loop load harness for the serving frontend.

``repro load`` replays a traffic trace — generated Poisson/burst
arrivals or a recorded JSON-lines schedule — against a live
``repro serve`` endpoint, or simulates it on a deterministic virtual
clock.  See :mod:`repro.load.harness` for the driving disciplines and
:mod:`repro.load.trace` for the trace format.
"""

from repro.load.client import (
    LoadError,
    ServeTransport,
    TERMINAL_EVENTS,
    VirtualTransport,
)
from repro.load.harness import (
    HISTOGRAM_EDGES_MS,
    LoadReport,
    RequestRecord,
    latency_histogram,
    run_closed_loop,
    run_open_loop,
)
from repro.load.trace import (
    LoadRequest,
    TraceError,
    poisson_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "HISTOGRAM_EDGES_MS",
    "LoadError",
    "LoadReport",
    "LoadRequest",
    "RequestRecord",
    "ServeTransport",
    "TERMINAL_EVENTS",
    "TraceError",
    "VirtualTransport",
    "latency_histogram",
    "poisson_trace",
    "read_trace",
    "run_closed_loop",
    "run_open_loop",
    "write_trace",
]
