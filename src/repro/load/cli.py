"""``repro load`` — replay a traffic trace against a live server.

Open-loop mode (``--mode open``) generates Poisson/burst arrivals
(``--rate``/``--duration``/``--burst-size``) or replays a recorded
``--trace`` schedule; closed-loop mode (``--mode closed``, the
default) drives ``--concurrency`` workers with ``--think`` seconds of
think time for ``--requests`` requests.  ``--virtual`` switches to
the deterministic simulated clock (no server contacted); otherwise
requests go to ``--url``.  ``--output`` writes the full
``BENCH_load.json``-shaped report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli import (
    http_url,
    nonnegative_float,
    positive_float,
    positive_int,
    scenario_spec,
)
from repro.load.client import ServeTransport, VirtualTransport
from repro.load.harness import run_closed_loop, run_open_loop
from repro.load.trace import (
    LoadRequest,
    TraceError,
    poisson_trace,
    read_trace,
)

OPEN_ONLY = ("rate", "duration", "burst_size")
CLOSED_ONLY = ("concurrency", "think", "requests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli load",
        description="Replay a traffic trace against a repro serve "
                    "endpoint (open/closed loop, virtual or wall clock).",
    )
    parser.add_argument(
        "--url", type=http_url, default="http://127.0.0.1:8377",
        help="repro serve base URL (wall-clock mode)",
    )
    parser.add_argument(
        "--mode", choices=("open", "closed"), default="closed",
        help="open loop replays an arrival schedule; closed loop "
             "drives a fixed concurrency with think time",
    )
    parser.add_argument(
        "--virtual", action="store_true",
        help="virtual clock: deterministic simulated timeline, no "
             "server contacted (for tests and regression pinning)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="JSON-lines trace to replay (default: generate from the "
             "flags below)",
    )
    # Open-loop arrival generation.
    parser.add_argument(
        "--rate", type=positive_float, default=None,
        help="open loop: mean request arrivals per second (default 8)",
    )
    parser.add_argument(
        "--duration", type=positive_float, default=None,
        metavar="SECONDS",
        help="open loop: length of the generated schedule (default 2)",
    )
    parser.add_argument(
        "--burst-size", type=positive_int, default=None,
        help="open loop: requests per Poisson burst epoch (default 1)",
    )
    # Closed-loop driving.
    parser.add_argument(
        "--concurrency", type=positive_int, default=None,
        help="closed loop: concurrent workers (default 4)",
    )
    parser.add_argument(
        "--think", type=nonnegative_float, default=None,
        metavar="SECONDS",
        help="closed loop: think time between a worker's requests "
             "(default 0)",
    )
    parser.add_argument(
        "--requests", type=positive_int, default=None,
        help="closed loop: total requests to issue (default 16)",
    )
    # Request template (ignored when --trace is given).
    parser.add_argument(
        "--experiments", nargs="+", default=["fig13"],
        help="experiments each request runs (default: fig13)",
    )
    parser.add_argument(
        "--samples", type=positive_int, default=1,
        help="samples per request (default 1)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="trace-generation / virtual-service seed")
    parser.add_argument(
        "--scenario", type=scenario_spec, default=None, metavar="SPEC",
        help="scenario spec for requests running the 'scenario' "
             "experiment",
    )
    parser.add_argument(
        "--subscribers", type=positive_int, default=1,
        help="event-stream subscribers per request (fan-out; default 1)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the full report JSON (BENCH_load.json shape) here",
    )
    return parser


def _flag(name: str) -> str:
    return "--" + name.replace("_", "-")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    conflicts = CLOSED_ONLY if args.mode == "open" else OPEN_ONLY
    bad = [_flag(name) for name in conflicts
           if getattr(args, name) is not None]
    if bad:
        other = "closed" if args.mode == "open" else "open"
        parser.error(
            f"--mode {args.mode} conflicts with {other}-loop "
            f"flags: {', '.join(bad)}"
        )
    if args.scenario is not None and list(args.experiments) != ["scenario"]:
        parser.error("--scenario only applies to the 'scenario' "
                     "experiment")

    template = LoadRequest(
        experiments=tuple(args.experiments),
        samples=args.samples,
        seed=args.seed,
        scenario=args.scenario,
        subscribers=args.subscribers,
    )
    trace = None
    if args.trace is not None:
        try:
            trace = read_trace(args.trace)
        except TraceError as exc:
            parser.error(f"bad trace file: {exc}")

    transport = (
        VirtualTransport(seed=args.seed) if args.virtual
        else ServeTransport(args.url)
    )
    if args.mode == "open":
        if trace is None:
            trace = poisson_trace(
                rate=args.rate if args.rate is not None else 8.0,
                duration_s=(args.duration if args.duration is not None
                            else 2.0),
                seed=args.seed,
                template=template,
                burst_size=(args.burst_size
                            if args.burst_size is not None else 1),
            )
        report = run_open_loop(trace, transport, virtual=args.virtual)
    else:
        report = run_closed_loop(
            trace if trace is not None else [template],
            concurrency=(args.concurrency
                         if args.concurrency is not None else 4),
            transport=transport,
            think_s=args.think if args.think is not None else 0.0,
            max_requests=(args.requests
                          if args.requests is not None else 16),
            virtual=args.virtual,
        )

    summary = report.summary()
    fmt = lambda ms: "n/a" if ms is None else f"{ms:.1f}ms"  # noqa: E731
    latency = summary["latency_ms"]
    ttfe = summary["ttfe_ms"]
    fanout = summary["fanout"]
    print(
        f"[load {summary['mode']}/{summary['clock']}] "
        f"{summary['requests']} requests "
        f"({summary['failed']} failed) in {summary['wall_s']:.2f}s | "
        f"latency p50 {fmt(latency['p50'])} p95 {fmt(latency['p95'])} "
        f"p99 {fmt(latency['p99'])} | ttfe p50 {fmt(ttfe['p50'])} | "
        f"fanout {fanout['subscribers']} subs, {fanout['events']} "
        f"events | peak concurrency "
        f"{summary['concurrency']['peak']}"
    )
    edges = summary["histogram_ms"]["edges"]
    counts = summary["histogram_ms"]["counts"]
    occupied = [
        f"<={edges[i]:g}ms:{counts[i]}"
        for i in range(len(counts)) if counts[i]
    ]
    print(f"histogram: {' '.join(occupied) if occupied else '(empty)'}")
    for error in summary["errors"]:
        print(f"error: {error}", file=sys.stderr)
    if args.output is not None:
        Path(args.output).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0 if summary["failed"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
