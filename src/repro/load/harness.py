"""Open/closed-loop load drivers with virtual- and wall-clock modes.

Two driving disciplines:

* **Open loop** replays a trace's arrival schedule regardless of how
  the server keeps up — the classic way to measure latency under a
  target arrival rate (coordinated omission avoided by construction).
* **Closed loop** keeps a fixed number of workers issuing requests
  back-to-back with optional think time — the classic way to measure
  throughput at a concurrency cap.

Both run in two clock modes.  **Wall clock** fires real requests
through a transport (:class:`~repro.load.client.ServeTransport`) and
measures real time.  **Virtual clock** integrates the transport's
reported durations on a simulated timeline — nothing sleeps, no
socket opens, and the whole report (timelines, percentiles,
histograms) is bit-identical across runs for one seed, which is what
the deterministic tests pin.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.load.trace import LoadRequest

HISTOGRAM_EDGES_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 120000.0,
)
"""Log-spaced latency bin edges; the last bin is open-ended."""


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one replayed request."""

    index: int
    start_s: float
    ttfe_s: float | None
    latency_s: float | None
    events: int
    subscribers: int
    ok: bool
    error: str | None = None


def _percentile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def latency_histogram(records: list[RequestRecord]) -> list[int]:
    """Latency counts per :data:`HISTOGRAM_EDGES_MS` bin (+ overflow)."""
    counts = [0] * len(HISTOGRAM_EDGES_MS)
    for record in records:
        if not record.ok or record.latency_s is None:
            continue
        ms = record.latency_s * 1e3
        for bin_index, edge in enumerate(HISTOGRAM_EDGES_MS):
            if ms <= edge:
                counts[bin_index] += 1
                break
        else:
            counts[-1] += 1
    return counts


def _peak_overlap(intervals: list[tuple[float, float]]) -> int:
    """Maximum number of intervals alive at once (end == start doesn't
    overlap)."""
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((end, -1))
    peak = alive = 0
    for _, delta in sorted(events):
        alive += delta
        peak = max(peak, alive)
    return peak


@dataclass
class LoadReport:
    """Everything a load run measured, plus derived summaries."""

    mode: str    # "open" | "closed"
    clock: str   # "virtual" | "wall"
    records: list[RequestRecord] = field(default_factory=list)
    wall_s: float = 0.0
    concurrency_peak: int = 0
    concurrency_cap: int | None = None

    @property
    def ok_records(self) -> list[RequestRecord]:
        return [record for record in self.records if record.ok]

    def summary(self) -> dict:
        """The ``BENCH_load.json``-shaped report."""
        ok = self.ok_records
        latencies = sorted(r.latency_s for r in ok)
        ttfes = sorted(r.ttfe_s for r in ok if r.ttfe_s is not None)
        to_ms = lambda s: None if s is None else s * 1e3  # noqa: E731
        return {
            "mode": self.mode,
            "clock": self.clock,
            "requests": len(self.records),
            "failed": len(self.records) - len(ok),
            "errors": sorted({r.error for r in self.records
                              if r.error})[:5],
            "wall_s": self.wall_s,
            "latency_ms": {
                "p50": to_ms(_percentile(latencies, 50)),
                "p95": to_ms(_percentile(latencies, 95)),
                "p99": to_ms(_percentile(latencies, 99)),
                "mean": to_ms(
                    float(np.mean(latencies)) if latencies else None
                ),
            },
            "ttfe_ms": {
                "p50": to_ms(_percentile(ttfes, 50)),
                "p95": to_ms(_percentile(ttfes, 95)),
                "p99": to_ms(_percentile(ttfes, 99)),
            },
            "histogram_ms": {
                "edges": list(HISTOGRAM_EDGES_MS),
                "counts": latency_histogram(self.records),
            },
            "fanout": {
                "subscribers": max(
                    (r.subscribers for r in self.records), default=0
                ),
                "events": sum(r.events for r in ok),
            },
            "concurrency": {
                "peak": self.concurrency_peak,
                "cap": self.concurrency_cap,
            },
        }


def run_open_loop(
    trace: list[LoadRequest],
    transport,
    virtual: bool = True,
) -> LoadReport:
    """Replay a trace's arrival schedule through ``transport``.

    Virtual mode places each request at its scheduled ``at_s`` and
    integrates the transport's durations; wall mode sleeps to each
    arrival and fires a thread per request (arrivals never wait for
    responses — open loop).
    """
    if virtual:
        records = []
        for index, request in enumerate(trace):
            ttfe, latency, events = transport(request, ("open", index))
            records.append(RequestRecord(
                index=index, start_s=request.at_s, ttfe_s=ttfe,
                latency_s=latency, events=events,
                subscribers=request.subscribers, ok=True,
            ))
        wall = max(
            (r.start_s + r.latency_s for r in records), default=0.0
        )
        peak = _peak_overlap(
            [(r.start_s, r.start_s + r.latency_s) for r in records]
        )
        return LoadReport("open", "virtual", records, wall, peak)

    records: list[RequestRecord | None] = [None] * len(trace)
    lock = threading.Lock()
    active = 0
    peak = 0
    origin = time.monotonic()

    def fire(index: int, request: LoadRequest) -> None:
        nonlocal active, peak
        start = time.monotonic() - origin
        with lock:
            active += 1
            peak = max(peak, active)
        try:
            ttfe, latency, events = transport(request, ("open", index))
            records[index] = RequestRecord(
                index=index, start_s=start, ttfe_s=ttfe,
                latency_s=latency, events=events,
                subscribers=request.subscribers, ok=True,
            )
        except Exception as exc:
            records[index] = RequestRecord(
                index=index, start_s=start, ttfe_s=None, latency_s=None,
                events=0, subscribers=request.subscribers, ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            with lock:
                active -= 1

    threads = []
    for index, request in enumerate(trace):
        delay = request.at_s - (time.monotonic() - origin)
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(index, request),
                                  daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    return LoadReport(
        "open", "wall", [r for r in records if r is not None],
        time.monotonic() - origin, peak,
    )


def run_closed_loop(
    requests: list[LoadRequest],
    concurrency: int,
    transport,
    think_s: float = 0.0,
    max_requests: int = 16,
    virtual: bool = True,
) -> LoadReport:
    """Drive ``concurrency`` workers through ``requests`` (cycled).

    Each worker issues its next request as soon as the previous one
    finishes plus ``think_s`` of think time; at most ``concurrency``
    requests are ever in flight (the property test pins this from the
    recorded timeline).  Virtual mode assigns request ``g`` to worker
    ``g % concurrency`` and integrates per-worker clocks, which is
    exactly the wall-mode schedule when service times are uniform.
    """
    if concurrency < 1 or max_requests < 1:
        raise ValueError("run_closed_loop: need concurrency >= 1 and "
                         "max_requests >= 1")
    if not requests:
        raise ValueError("run_closed_loop: empty request list")

    if virtual:
        worker_clock = [0.0] * concurrency
        records = []
        for index in range(max_requests):
            worker = index % concurrency
            request = requests[index % len(requests)]
            start = worker_clock[worker]
            ttfe, latency, events = transport(request, ("closed", index))
            records.append(RequestRecord(
                index=index, start_s=start, ttfe_s=ttfe,
                latency_s=latency, events=events,
                subscribers=request.subscribers, ok=True,
            ))
            worker_clock[worker] = start + latency + think_s
        peak = _peak_overlap(
            [(r.start_s, r.start_s + r.latency_s) for r in records]
        )
        return LoadReport(
            "closed", "virtual", records, max(worker_clock), peak,
            concurrency_cap=concurrency,
        )

    lock = threading.Lock()
    next_index = 0
    active = 0
    peak = 0
    records = []
    origin = time.monotonic()

    def worker() -> None:
        nonlocal next_index, active, peak
        while True:
            with lock:
                if next_index >= max_requests:
                    return
                index = next_index
                next_index += 1
                active += 1
                peak = max(peak, active)
            request = requests[index % len(requests)]
            start = time.monotonic() - origin
            try:
                ttfe, latency, events = transport(
                    request, ("closed", index)
                )
                record = RequestRecord(
                    index=index, start_s=start, ttfe_s=ttfe,
                    latency_s=latency, events=events,
                    subscribers=request.subscribers, ok=True,
                )
            except Exception as exc:
                record = RequestRecord(
                    index=index, start_s=start, ttfe_s=None,
                    latency_s=None, events=0,
                    subscribers=request.subscribers, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            with lock:
                active -= 1
                records.append(record)
            if think_s:
                time.sleep(think_s)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    records.sort(key=lambda record: record.index)
    return LoadReport(
        "closed", "wall", records, time.monotonic() - origin, peak,
        concurrency_cap=concurrency,
    )
