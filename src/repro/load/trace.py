"""Traffic traces: recorded or generated request arrival schedules.

A trace is an ordered list of :class:`LoadRequest` records — what to
POST to a ``repro serve`` endpoint and when (``at_s``, seconds from
the start of the replay, used by the open-loop driver).  Traces
round-trip through JSON-lines files, so a recorded production
schedule and a generated Poisson/burst schedule replay through the
same harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.utils.rng import rng_for


class TraceError(ValueError):
    """A trace file or record is malformed."""


@dataclass(frozen=True)
class LoadRequest:
    """One request of a traffic trace."""

    at_s: float = 0.0
    experiments: tuple[str, ...] = ("fig13",)
    samples: int | None = 1
    seed: int = 0
    scenario: str | None = None
    subscribers: int = 1

    def spec(self) -> dict:
        """The ``POST /runs`` body this request submits."""
        spec: dict = {"experiments": list(self.experiments),
                      "seed": self.seed}
        if self.samples is not None:
            spec["samples"] = self.samples
        if self.scenario is not None:
            spec["scenario"] = self.scenario
        return spec

    def as_record(self) -> dict:
        record: dict = {
            "at_s": self.at_s,
            "experiments": list(self.experiments),
            "seed": self.seed,
            "subscribers": self.subscribers,
        }
        if self.samples is not None:
            record["samples"] = self.samples
        if self.scenario is not None:
            record["scenario"] = self.scenario
        return record

    @classmethod
    def from_record(cls, record: object, where: str = "trace")\
            -> "LoadRequest":
        if not isinstance(record, dict):
            raise TraceError(f"{where}: record must be a JSON object, "
                             f"got {type(record).__name__}")
        known = {"at_s", "experiments", "samples", "seed", "scenario",
                 "subscribers"}
        unknown = sorted(set(record) - known)
        if unknown:
            raise TraceError(f"{where}: unknown fields {unknown}")
        at_s = record.get("at_s", 0.0)
        if not isinstance(at_s, (int, float)) or isinstance(at_s, bool) \
                or at_s < 0:
            raise TraceError(f"{where}: at_s must be a number >= 0, "
                             f"got {at_s!r}")
        experiments = record.get("experiments", ["fig13"])
        if (not isinstance(experiments, list) or not experiments
                or not all(isinstance(n, str) for n in experiments)):
            raise TraceError(f"{where}: experiments must be a non-empty "
                             f"list of names, got {experiments!r}")
        samples = record.get("samples", 1)
        if samples is not None and (not isinstance(samples, int)
                                    or isinstance(samples, bool)
                                    or samples < 1):
            raise TraceError(f"{where}: samples must be a positive "
                             f"integer, got {samples!r}")
        seed = record.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TraceError(f"{where}: seed must be an integer, "
                             f"got {seed!r}")
        scenario = record.get("scenario")
        if scenario is not None and not isinstance(scenario, str):
            raise TraceError(f"{where}: scenario must be a string, "
                             f"got {scenario!r}")
        subscribers = record.get("subscribers", 1)
        if not isinstance(subscribers, int) or isinstance(subscribers, bool) \
                or subscribers < 1:
            raise TraceError(f"{where}: subscribers must be a positive "
                             f"integer, got {subscribers!r}")
        return cls(
            at_s=float(at_s),
            experiments=tuple(experiments),
            samples=samples,
            seed=seed,
            scenario=scenario,
            subscribers=subscribers,
        )


def read_trace(path: str | Path) -> list[LoadRequest]:
    """Load a JSON-lines trace file, sorted by arrival time.

    Raises :class:`TraceError` on unreadable files, malformed JSON,
    bad records, and empty traces.
    """
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from None
    requests = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{lineno}: invalid JSON: {exc}") \
                from None
        requests.append(
            LoadRequest.from_record(record, where=f"{path}:{lineno}")
        )
    if not requests:
        raise TraceError(f"{path}: empty trace")
    return sorted(requests, key=lambda request: request.at_s)


def write_trace(path: str | Path, requests: list[LoadRequest]) -> None:
    """Write a trace as JSON lines (the format :func:`read_trace` reads)."""
    body = "".join(
        json.dumps(request.as_record(), sort_keys=True) + "\n"
        for request in requests
    )
    Path(path).write_text(body, encoding="utf-8")


def poisson_trace(
    rate: float,
    duration_s: float,
    seed: int = 0,
    template: LoadRequest = LoadRequest(),
    burst_size: int = 1,
) -> list[LoadRequest]:
    """Generate open-loop arrivals: Poisson bursts of ``burst_size``.

    Burst epochs arrive as a Poisson process of ``rate / burst_size``
    epochs per second (so the *request* rate averages ``rate``); each
    epoch fires ``burst_size`` back-to-back copies of ``template``.
    ``burst_size=1`` is plain Poisson traffic.  Deterministic in
    ``(rate, duration_s, seed, burst_size)``.
    """
    if rate <= 0 or duration_s <= 0 or burst_size < 1:
        raise ValueError("poisson_trace: need rate > 0, duration_s > 0, "
                         "burst_size >= 1")
    rng = rng_for(seed, "load", "arrivals")
    epoch_rate = rate / burst_size
    out: list[LoadRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / epoch_rate))
        if t >= duration_s:
            break
        out.extend(replace(template, at_s=t) for _ in range(burst_size))
    return out
