"""Load-harness transports: real HTTP against ``repro serve``, and a
deterministic virtual service model for simulated timelines.

A transport is a callable ``(request, key) -> (ttfe_s, latency_s,
events)``: time to the first streamed event, total latency until
every subscriber saw the terminal event, and the total number of
events fanned out across subscribers.  ``key`` is a stable label
tuple identifying the request within the run — the virtual transport
derives its service-time stream from it, so simulated timelines are
bit-identical across runs.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from urllib.parse import urlsplit

from repro.load.trace import LoadRequest
from repro.utils.rng import rng_for

TERMINAL_EVENTS = frozenset(
    {"run-done", "run-partial", "run-failed", "run-cancelled"}
)


class LoadError(RuntimeError):
    """A load request failed against the target server."""


class VirtualTransport:
    """Deterministic service-time model for virtual-clock runs.

    Latency is ``base_s`` plus an exponential jitter drawn from a
    stream keyed by ``(seed, key)``; time-to-first-event is a fixed
    fraction of the latency; fan-out is ``events_per_run`` events per
    subscriber.  Nothing sleeps and no server is contacted — the
    harness integrates these durations on a virtual clock.
    """

    def __init__(
        self,
        seed: int = 0,
        base_s: float = 0.05,
        jitter_s: float = 0.02,
        ttfe_fraction: float = 0.35,
        events_per_run: int = 12,
    ) -> None:
        self.seed = seed
        self.base_s = base_s
        self.jitter_s = jitter_s
        self.ttfe_fraction = ttfe_fraction
        self.events_per_run = events_per_run

    def __call__(self, request: LoadRequest,
                 key: tuple) -> tuple[float, float, int]:
        rng = rng_for(self.seed, "load", "service", *key)
        latency = self.base_s + float(rng.exponential(self.jitter_s))
        ttfe = latency * self.ttfe_fraction
        events = self.events_per_run * max(1, request.subscribers)
        return ttfe, latency, events


class ServeTransport:
    """Real wall-clock transport: POST a run, fan out subscribers.

    Each call POSTs the request's spec to ``/runs``, then opens
    ``request.subscribers`` concurrent JSON-lines event streams and
    reads each to its terminal event.  Returns the measured
    time-to-first-event (any subscriber), the latency until the
    slowest subscriber finished, and the total events received.
    """

    def __init__(self, base_url: str, timeout_s: float = 120.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host[:port], "
                f"got {base_url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s

    def _post_run(self, request: LoadRequest) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(
                "POST", "/runs", body=json.dumps(request.spec()),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read()
            if response.status != 201:
                raise LoadError(
                    f"POST /runs -> {response.status}: "
                    f"{body.decode('utf-8', 'replace')[:200]}"
                )
            return json.loads(body)["run_id"]
        finally:
            conn.close()

    def _subscribe(self, run_id: str, first_event_s: list[float],
                   lock: threading.Lock, counts: list[int],
                   errors: list[str], origin: float) -> None:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("GET", f"/runs/{run_id}/events?format=jsonl")
            response = conn.getresponse()
            if response.status != 200:
                raise LoadError(
                    f"GET events -> {response.status} for run {run_id}"
                )
            events = 0
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                events += 1
                now = time.monotonic() - origin
                with lock:
                    if not first_event_s or now < first_event_s[0]:
                        first_event_s[:] = [now]
                    counts[0] += 1
                if json.loads(line).get("event") in TERMINAL_EVENTS:
                    break
            if not events:
                raise LoadError(f"empty event stream for run {run_id}")
        except Exception as exc:  # collected per subscriber
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            conn.close()

    def __call__(self, request: LoadRequest,
                 key: tuple) -> tuple[float, float, int]:
        origin = time.monotonic()
        run_id = self._post_run(request)
        lock = threading.Lock()
        first_event_s: list[float] = []
        counts = [0]
        errors: list[str] = []
        threads = [
            threading.Thread(
                target=self._subscribe,
                args=(run_id, first_event_s, lock, counts, errors, origin),
                daemon=True,
            )
            for _ in range(max(1, request.subscribers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout_s)
        latency = time.monotonic() - origin
        if errors:
            raise LoadError("; ".join(errors[:3]))
        if any(thread.is_alive() for thread in threads):
            raise LoadError(f"subscriber timed out after {self.timeout_s}s")
        return first_event_s[0], latency, counts[0]
