"""Inference plugin protocol.

Every efficiency method in the paper — Focus, FrameFusion, AdapTiV,
CMC — is a transformation of the token stream at specific points of
the forward pass.  The :class:`InferencePlugin` interface exposes
those points; the engine (:mod:`repro.model.vlm`) stays method-agnostic
and the methods never duplicate transformer code.

Hook order within one forward pass::

    begin(state)
    on_visual_tokens(state)            # entry compression (AdapTiV, CMC)
    for each layer:
        before_layer(layer, state)     # token merging (FrameFusion)
        gemm_input(layer, "qkv", ...)  # vector dedup (Focus SIC)
        after_attention_probs(...)     # semantic pruning (Focus SEC)
        gemm_input(layer, "o_proj", ...)
        gemm_input(layer, "fc1", ...)
    finish(state)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.accel.trace import GemmTrace
    from repro.model.vlm import BatchState, TokenState


@dataclass
class DedupStats:
    """Outcome of a similarity-gather on one GEMM input.

    Attributes:
        unique_vectors: Total unique vectors over all
            (m-tile, k-block) pairs.
        total_vectors: Vector count before gathering.
        map_bits: Similarity-map metadata bits.
        tile_lengths: Unique-vector count per (m-tile, k-block); feeds
            the Fig. 13 histogram.
        tile_rows: Row count of the tile each entry came from.
        scatter_ops: Accumulations needed to scatter the concentrated
            partial sums back to the full output.
    """

    unique_vectors: int
    total_vectors: int
    map_bits: int
    vector_size: int = 32
    tile_lengths: list[int] = field(default_factory=list)
    tile_rows: list[int] = field(default_factory=list)
    scatter_ops: int = 0


class InferencePlugin:
    """Base plugin: all hooks are no-ops (dense execution)."""

    needs_attention_summary: bool = False
    """Whether the engine should compute the per-key attention summary
    (``state.scratch["attn_received"]``, mean attention received over
    heads and queries) at every layer.  Importance-style plugins
    (FrameFusion) set this; computing the summary lazily keeps an
    O(heads x s^2) reduction off every other method's hot path.
    Wrapper plugins must delegate it to the plugin they wrap."""

    reusable: bool = False
    """Whether one instance may drive many forward passes.  A plugin
    is reusable when it carries no cross-forward state (or resets it
    in :meth:`begin`); the evaluation loop then constructs it once per
    cell instead of once per sample.  Defaults to ``False`` so
    stateful plugins stay correct by default; wrapper plugins must
    delegate it to the plugin they wrap."""

    def begin(self, state: "TokenState") -> None:
        """Called once before the first layer."""

    def on_visual_tokens(self, state: "TokenState") -> None:
        """Entry-level token compression, before the LLM stack.

        Implementations mutate ``state`` (hidden/positions/masks) via
        :meth:`TokenState.apply_keep` or by replacing token values, and
        account their own search cost in
        ``state.trace.preprocess_macs``.
        """

    def before_layer(self, layer_index: int, state: "TokenState") -> None:
        """Called before each transformer layer."""

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        state: "TokenState",
        producer: "GemmTrace | None",
        n: int,
    ) -> tuple[np.ndarray, DedupStats | None]:
        """Optionally concentrate the input of a projection GEMM.

        Args:
            layer_index: Current layer.
            site: ``"qkv"``, ``"o_proj"`` or ``"fc1"`` — the GEMMs whose
                inputs are outputs of FFN / PV / O-projection, i.e. the
                gather sites of the paper (Sec. VI-A, footnote 1).
            x: GEMM input of shape ``(tokens, k)``.
            state: Current token state (positions for block grouping).
            producer: Trace record of the GEMM that produced ``x``;
                implementations may annotate its output compression.
            n: Output width of the consuming GEMM (for scatter-op
                accounting).

        Returns:
            The (possibly approximated) input and gather statistics, or
            ``(x, None)`` to run dense.
        """
        return x, None

    def after_attention_probs(
        self,
        layer_index: int,
        probs: np.ndarray,
        state: "TokenState",
    ) -> np.ndarray | None:
        """Optionally select tokens to keep after the attention softmax.

        Args:
            probs: Attention probabilities of shape
                ``(heads, tokens, tokens)`` for the *current* token set.

        Returns:
            Boolean keep-mask over tokens, or ``None`` to keep all.
        """
        return None

    def finish(self, state: "TokenState") -> None:
        """Called once after the last layer."""


DENSE_PLUGIN = InferencePlugin()
"""Shared no-op plugin instance for dense runs."""


class BatchPlugin:
    """Hook protocol of the cross-sample batched forward pass.

    :meth:`SyntheticVLM.forward_batch <repro.model.vlm.SyntheticVLM.
    forward_batch>` stacks same-shape samples into ``(lanes, tokens,
    ...)`` arrays and invokes these hooks once per site instead of
    once per sample.  Implementations must keep every lane's observable
    outputs (values, keep masks, :class:`DedupStats`, trace updates on
    ``lane.trace``) bit-identical to what the corresponding serial
    :class:`InferencePlugin` would produce for that lane alone — the
    contract the differential suite enforces.

    Only the hooks below exist in batched mode; methods that need
    ``on_visual_tokens``/``before_layer`` (entry compression, token
    merging) have no batched implementation and fall back to the
    serial loop.  All hooks are no-ops here (dense execution).
    """

    reusable: bool = True
    """Batched plugins must be reusable across chunks of a bucket (and
    across buckets): one batched cell evaluation constructs exactly
    one plugin."""

    def begin(self, batch: "BatchState") -> None:
        """Called once before the first layer of a batched pass."""

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        batch: "BatchState",
        producers: "list[GemmTrace | None]",
        n: int,
    ) -> tuple[np.ndarray, "list[DedupStats | None]"]:
        """Optionally concentrate a stacked GEMM input.

        Args:
            x: GEMM input of shape ``(lanes, tokens, k)``.
            batch: Current batch state (per-lane token states).
            producers: Per-lane trace records of the GEMM that
                produced ``x``.
            n: Output width of the consuming GEMM.

        Returns:
            The (possibly approximated) stacked input and one
            :class:`DedupStats` (or ``None``) per lane.
        """
        return x, [None] * batch.num_lanes

    def after_attention_probs(
        self,
        layer_index: int,
        probs: np.ndarray,
        batch: "BatchState",
    ) -> "list[np.ndarray] | None":
        """Optionally select tokens to keep after the attention softmax.

        Args:
            probs: Stacked attention probabilities ``(lanes, heads,
                tokens, tokens)``.

        Returns:
            One boolean keep-mask per lane — every mask must keep the
            same number of tokens (the stack stays rectangular) — or
            ``None`` to keep all.
        """
        return None

    def finish(self, batch: "BatchState") -> None:
        """Called once after the last layer."""
