"""Numerical primitives for the NumPy transformer substrate.

These mirror the operations the paper's accelerator executes: GEMMs on
the systolic array, and softmax / RMSNorm on the special function unit
(SFU).  All functions are pure and operate on ``float32`` arrays.
"""

from __future__ import annotations

import functools

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    The exponential and the normalizing division run in place on the
    shifted copy (never on the caller's array), halving the temporary
    allocations on the attention hot path without changing a bit of
    the result.
    """
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= np.sum(shifted, axis=axis, keepdims=True)
    return shifted


def rms_norm(x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalization (no learned gain).

    RMSNorm is the normalization used by the Qwen2 backbones of the
    paper's evaluation models and is one of the SFU operations Focus
    shares silicon with (Sec. VI-A).
    """
    x = np.asarray(x, dtype=np.float32)
    scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / scale


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    x = np.asarray(x, dtype=np.float32)
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * np.power(x, 3))
    return 0.5 * x * (1.0 + np.tanh(inner))


MASK_CACHE_MAX_ENTRIES = 32
"""LRU bound on memoized causal masks.  Each entry is ``s^2`` float32;
token counts repeat heavily within a forward pass (every layer between
two pruning events sees the same count) and across samples of one
dataset, so a small cap captures nearly all reuse at bounded memory."""


@functools.lru_cache(maxsize=MASK_CACHE_MAX_ENTRIES)
def causal_mask(num_tokens: int) -> np.ndarray:
    """Additive causal mask: 0 on/below the diagonal, -inf above.

    Masks are memoized per token count (the forward pass requests the
    same sizes at every layer) and returned *read-only* so a cached
    array can never be corrupted in place; add it, don't mutate it.
    """
    num_tokens = int(num_tokens)
    mask = np.zeros((num_tokens, num_tokens), dtype=np.float32)
    upper = np.triu_indices(num_tokens, k=1)
    mask[upper] = -np.inf
    mask.flags.writeable = False
    return mask


def attention_scores(
    q_h: np.ndarray, k_h: np.ndarray, head_dim: int
) -> np.ndarray:
    """Scaled, causally masked attention scores.

    Accepts per-head arrays of shape ``(..., s, head_dim)`` — the
    serial forward passes ``(heads, s, head_dim)``, the batched
    forward ``(lanes, heads, s, head_dim)``; ``matmul`` runs the very
    same per-slice GEMM either way and the scale/mask apply
    elementwise, so each lane's scores are bit-identical to its own
    serial pass.

    The float32 scale keeps the attention path in float32 end to end:
    a bare ``np.sqrt(python int)`` is a float64 scalar and would
    silently promote every score matrix.  Scale and mask apply in
    place on the fresh matmul output (the memoized mask is only read).
    """
    scores = q_h @ np.swapaxes(k_h, -2, -1)
    scores /= np.float32(np.sqrt(head_dim))
    scores += causal_mask(scores.shape[-1])
    assert scores.dtype == np.float32, (
        f"attention scores promoted to {scores.dtype}"
    )
    return scores


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``.

    Args:
        a: Array of shape ``(na, d)``.
        b: Array of shape ``(nb, d)``.
        eps: Norm floor preventing division by zero.

    Returns:
        Array of shape ``(na, nb)``.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    na = np.linalg.norm(a, axis=-1, keepdims=True)
    nb = np.linalg.norm(b, axis=-1, keepdims=True)
    return (a @ b.T) / np.maximum(na @ nb.T, eps)


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-8) -> float:
    """Cosine similarity between two 1-D vectors."""
    a = np.asarray(a, dtype=np.float32).ravel()
    b = np.asarray(b, dtype=np.float32).ravel()
    denom = max(float(np.linalg.norm(a)) * float(np.linalg.norm(b)), eps)
    return float(a @ b) / denom
