"""Embedding codebooks for the synthetic VLM.

The paper's VLMs embed video patches and text into a shared hidden
space in which cross-modal attention retrieves prompt-relevant visual
content.  We reproduce that *mechanism* directly: token embeddings are
composed from labelled sub-spaces, and the transformer weights (see
:mod:`repro.model.attention`) are constructed so that attention scores
measure object-identity agreement while values carry attribute codes.

Hidden-dimension layout (fractions of the hidden size ``d``):

=============  ==========  ====================================================
sub-space      dims        content
=============  ==========  ====================================================
``object``     ``d/4``     identity code of the object a patch belongs to
``attribute``  ``d/4``     first half: colour code; second half: motion code
``texture``    ``d/4``     smooth spatial texture, stable across frames
``position``   ``d/4``     sinusoidal (frame, row, col) encoding
=============  ==========  ====================================================

The object/attribute coupling is what makes accuracy *causally* depend
on concentration quality: prune the tokens of the queried object and
the retrieved attribute code disappears, exactly the failure mode the
paper's Table II accuracy column measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_for

KIND_NAMES = (
    "dog", "cat", "bird", "car", "bicycle", "person",
    "flower", "tree", "ball", "boat", "kite", "horse",
)
COLOR_NAMES = ("white", "black", "red", "blue", "green", "yellow", "brown", "gray")
MOTION_NAMES = ("static", "leftward", "rightward", "upward")

QUESTION_SLOTS = ("color", "motion")
"""Attribute slots a question may ask about."""


@dataclass(frozen=True)
class SubspaceLayout:
    """Index ranges of the labelled sub-spaces within the hidden dim."""

    hidden: int

    def __post_init__(self) -> None:
        if self.hidden % 8 != 0:
            raise ValueError("hidden size must be divisible by 8")

    @property
    def quarter(self) -> int:
        return self.hidden // 4

    @property
    def object_slice(self) -> slice:
        return slice(0, self.quarter)

    @property
    def attribute_slice(self) -> slice:
        return slice(self.quarter, 2 * self.quarter)

    @property
    def color_slice(self) -> slice:
        return slice(self.quarter, self.quarter + self.quarter // 2)

    @property
    def motion_slice(self) -> slice:
        return slice(self.quarter + self.quarter // 2, 2 * self.quarter)

    @property
    def texture_slice(self) -> slice:
        return slice(2 * self.quarter, 3 * self.quarter)

    @property
    def position_slice(self) -> slice:
        return slice(3 * self.quarter, 4 * self.quarter)


def _unit_rows(rng: np.random.Generator, count: int, dim: int) -> np.ndarray:
    """Random unit-norm row vectors, decorrelated by construction."""
    rows = rng.standard_normal((count, dim)).astype(np.float32)
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    return rows


def _confusable_unit_rows(
    rng: np.random.Generator, count: int, dim: int, delta: float
) -> np.ndarray:
    """Unit rows arranged in similar pairs.

    Row ``2i+1`` is a ``delta``-sized perturbation of row ``2i``
    (cosine ``~ 1/sqrt(1+delta^2)``), modelling answer options that are
    genuinely confusable (white/gray, leftward/rightward).  Retrieval
    with a clean attribute estimate still separates them; a noisy
    estimate — the result of aggressive pruning or lossy merging —
    tips the argmax, which is what produces graded accuracy.
    """
    rows = _unit_rows(rng, count, dim)
    for i in range(1, count, 2):
        mixed = rows[i - 1] + delta * rows[i]
        rows[i] = mixed / np.linalg.norm(mixed)
    return rows


class Codebooks:
    """Fixed vocabulary of object-kind, colour and motion codes.

    The codebooks are shared between the scene renderer (which writes
    codes into patch embeddings) and the model readout (which decodes
    the retrieved attribute).  They play the role of the real VLM's
    word-embedding matrix.
    """

    def __init__(
        self, layout: SubspaceLayout, seed: int = 0, confusable_delta: float = 0.4
    ) -> None:
        self.layout = layout
        quarter = layout.quarter
        half = quarter // 2
        self.kind_codes = _unit_rows(rng_for(seed, "codebook", "kind"),
                                     len(KIND_NAMES), quarter)
        self.kind_probe_codes = _unit_rows(
            rng_for(seed, "codebook", "kind-probe"), len(KIND_NAMES), quarter
        )
        self.color_codes = _confusable_unit_rows(
            rng_for(seed, "codebook", "color"), len(COLOR_NAMES), half,
            confusable_delta,
        )
        self.motion_codes = _confusable_unit_rows(
            rng_for(seed, "codebook", "motion"), len(MOTION_NAMES), half,
            confusable_delta,
        )
        self.filler_codes = _unit_rows(rng_for(seed, "codebook", "filler"),
                                       32, layout.hidden) * 0.3

    def association_matrix(self) -> np.ndarray:
        """Associative content-to-probe map over the object sub-space.

        Row-vector form: ``content_k @ M ~= probe_k`` for every kind
        ``k``.  Used as the object-sub-space block of ``Wk`` so that a
        question's *probe* code (query side) matches the patches
        carrying the referenced kind's *content* code (key side) while
        the query token's own key stays near-orthogonal to its query —
        the asymmetry real cross-modal attention heads learn.
        """
        return (self.kind_codes.T @ self.kind_probe_codes).astype(np.float32)

    def slot_codes(self, slot: str) -> np.ndarray:
        """Codebook rows for a question slot (``color`` or ``motion``)."""
        if slot == "color":
            return self.color_codes
        if slot == "motion":
            return self.motion_codes
        raise ValueError(f"unknown slot {slot!r}; expected one of {QUESTION_SLOTS}")

    def slot_names(self, slot: str) -> tuple[str, ...]:
        """Human-readable answer vocabulary for a slot."""
        if slot == "color":
            return COLOR_NAMES
        if slot == "motion":
            return MOTION_NAMES
        raise ValueError(f"unknown slot {slot!r}; expected one of {QUESTION_SLOTS}")

    def decode_slot(self, attr_vector: np.ndarray, slot: str) -> int:
        """Return the codebook index closest (cosine) to ``attr_vector``."""
        codes = self.slot_codes(slot)
        vec = np.asarray(attr_vector, dtype=np.float32)
        norm = float(np.linalg.norm(vec))
        if norm < 1e-12:
            return 0
        scores = codes @ (vec / norm)
        return int(np.argmax(scores))


def positional_code(frame: int, row: int, col: int, dim: int) -> np.ndarray:
    """Sinusoidal positional code over (frame, row, col).

    Each coordinate gets a third of the positional sub-space.  Codes of
    spatially adjacent patches are similar but not identical, mirroring
    how RoPE-style encodings perturb hidden-state similarity in the
    real models (cf. Fig. 2(b): full-token similarity is much lower
    than sub-vector similarity).
    """
    code = np.zeros(dim, dtype=np.float32)
    third = dim // 3
    for part, coord in enumerate((frame, row, col)):
        start = part * third
        span = third if part < 2 else dim - 2 * third
        idx = np.arange(span, dtype=np.float32)
        freq = 1.0 / np.power(50.0, idx / max(span, 1))
        phase = coord * freq
        code[start:start + span] = np.where(idx % 2 == 0, np.sin(phase), np.cos(phase))
    return code / np.linalg.norm(code)
