"""Registry of synthetic models mirroring the paper's evaluation VLMs.

The paper evaluates three video VLMs (Llava-Video-7B, Llava-OneVision-
7B, MiniCPM-V-2.6) and one image VLM (Qwen2.5-VL-7B).  All are ~7B
Qwen2-class backbones (28 layers, hidden 3584, head_dim 128); our
analogs keep head_dim = 32 (the paper's vector size) and scale width
and depth down so a forward pass is CPU-friendly.  Distinct weight
seeds and small geometry differences make the models behave like
different checkpoints, giving per-model variation in accuracy and
sparsity as in Tables II/IV/V.
"""

from __future__ import annotations

from repro.model.spec import ModelConfig

MODEL_CONFIGS: dict[str, ModelConfig] = {
    "llava-video": ModelConfig(
        name="llava-video", hidden=192, num_layers=12, num_heads=6, seed=11,
    ),
    "llava-onevision": ModelConfig(
        name="llava-onevision", hidden=192, num_layers=12, num_heads=6,
        seed=23, weight_noise=0.025,
    ),
    "minicpm": ModelConfig(
        name="minicpm", hidden=160, num_layers=10, num_heads=5, seed=37,
        weight_noise=0.03, mlp_scale=0.12,
    ),
    "qwen25-vl": ModelConfig(
        name="qwen25-vl", hidden=224, num_layers=14, num_heads=7, seed=53,
    ),
}

VIDEO_MODELS = ("llava-video", "llava-onevision", "minicpm")
"""Models used in the video-benchmark tables (II, IV, Figs. 9/12)."""

IMAGE_MODELS = ("llava-onevision", "qwen25-vl")
"""Models used in the image-benchmark table (V)."""

PAPER_MODEL_NAMES = {
    "llava-video": "Llava-Vid",
    "llava-onevision": "Llava-OV",
    "minicpm": "MiniCPM",
    "qwen25-vl": "Qwen2.5-VL",
}
"""Row labels as printed in the paper's tables."""


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by registry name."""
    try:
        return MODEL_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_CONFIGS)}"
        ) from None
