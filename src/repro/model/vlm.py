"""The synthetic VLM forward engine.

:class:`SyntheticVLM` runs a causal transformer over the concatenated
``[visual tokens | text tokens]`` sequence (the layout of Fig. 5's
attention matrix), invokes :class:`~repro.model.plugins.InferencePlugin`
hooks at the points where concentration methods intervene, and records
every executed GEMM into a :class:`~repro.accel.trace.ModelTrace` for
the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.trace import GemmTrace, ModelTrace
from repro.model.functional import causal_mask, rms_norm, softmax
from repro.model.plugins import DedupStats, InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.weights import LayerWeights, build_all_weights
from repro.utils.fp import quantize_fp16
from repro.workloads.datasets import Sample

TEXT_POSITION = np.array([-1, -1, -1], dtype=np.int64)
"""Sentinel FHW position for text tokens (never block-matched)."""


@dataclass
class TokenState:
    """Mutable token stream threaded through the forward pass.

    Attributes:
        hidden: Current hidden states, shape ``(tokens, hidden)``.
        positions: Integer (frame, row, col) per token; text tokens
            carry :data:`TEXT_POSITION`.
        is_text: Boolean mask of text tokens (never pruned).
        original_index: Index of each surviving token in the initial
            sequence.
        num_image_initial: Image-token count before any compression.
        grid: (frames, height, width) of the visual grid.
        trace: Execution trace being accumulated.
        scratch: Free-form storage for plugins (e.g. attention
            summaries used by FrameFusion).
    """

    hidden: np.ndarray
    positions: np.ndarray
    is_text: np.ndarray
    original_index: np.ndarray
    num_image_initial: int
    grid: tuple[int, int, int]
    trace: ModelTrace = field(default_factory=ModelTrace)
    scratch: dict = field(default_factory=dict)
    version: int = 0
    """Incremented whenever the token set changes; plugins use it to
    invalidate cached position-derived structures."""

    @property
    def num_tokens(self) -> int:
        return int(self.hidden.shape[0])

    @property
    def num_image(self) -> int:
        return int(np.count_nonzero(~self.is_text))

    @property
    def num_text(self) -> int:
        return int(np.count_nonzero(self.is_text))

    def apply_keep(self, keep: np.ndarray) -> None:
        """Prune the token stream to the boolean mask ``keep``.

        Text tokens must all be kept; methods only compress the visual
        stream (every method in the paper excludes text tokens).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.num_tokens,):
            raise ValueError("keep mask must cover the current token set")
        if not keep[self.is_text].all():
            raise ValueError("text tokens cannot be pruned")
        self.hidden = self.hidden[keep]
        self.positions = self.positions[keep]
        self.is_text = self.is_text[keep]
        self.original_index = self.original_index[keep]
        self.version += 1


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of one forward pass."""

    predicted_index: int
    correct: bool
    trace: ModelTrace
    final_tokens: int


class SyntheticVLM:
    """A constructed-weight VLM with pluggable concentration hooks."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self.layers: list[LayerWeights] = build_all_weights(config)

    def initial_state(self, sample: Sample) -> TokenState:
        """Assemble the token stream ``[visual | text]`` for a sample."""
        cfg = self.config
        if sample.visual_tokens.shape[1] != cfg.hidden:
            raise ValueError(
                f"sample hidden dim {sample.visual_tokens.shape[1]} does not"
                f" match model hidden dim {cfg.hidden}"
            )
        hidden = np.concatenate(
            [sample.visual_tokens, sample.text_tokens], axis=0
        )
        hidden = quantize_fp16(hidden, cfg.fp16)
        num_image = sample.num_visual_tokens
        num_text = sample.num_text_tokens
        positions = np.concatenate(
            [sample.positions, np.tile(TEXT_POSITION, (num_text, 1))], axis=0
        )
        is_text = np.zeros(num_image + num_text, dtype=bool)
        is_text[num_image:] = True
        return TokenState(
            hidden=hidden,
            positions=positions,
            is_text=is_text,
            original_index=np.arange(num_image + num_text),
            num_image_initial=num_image,
            grid=sample.grid,
        )

    def forward(
        self, sample: Sample, plugin: InferencePlugin | None = None
    ) -> InferenceResult:
        """Run the model on a sample under an optional plugin."""
        plugin = plugin or InferencePlugin()
        state = self.initial_state(sample)
        state.trace.initial_tokens = state.num_tokens
        plugin.begin(state)
        plugin.on_visual_tokens(state)

        last_writer: GemmTrace | None = None
        for layer_index, weights in enumerate(self.layers):
            plugin.before_layer(layer_index, state)
            last_writer = self._run_layer(layer_index, weights, state,
                                          plugin, last_writer)
            state.trace.tokens_per_layer.append(state.num_tokens)
        plugin.finish(state)

        predicted = self._readout(sample, state)
        return InferenceResult(
            predicted_index=predicted,
            correct=predicted == sample.question.answer_index,
            trace=state.trace,
            final_tokens=state.num_tokens,
        )

    def _run_layer(
        self,
        layer_index: int,
        weights: LayerWeights,
        state: TokenState,
        plugin: InferencePlugin,
        last_writer: GemmTrace | None,
    ) -> GemmTrace:
        cfg = self.config
        d, heads, head_dim = cfg.hidden, cfg.num_heads, cfg.head_dim

        x = state.hidden
        normed = rms_norm(x)
        normed, _ = self._concentrated_gemm(
            plugin, layer_index, "qkv", normed, state, last_writer,
            k=d, n=3 * d,
        )
        q = normed @ weights.wq
        k = normed @ weights.wk
        v = normed @ weights.wv

        s = state.num_tokens
        q_h = q.reshape(s, heads, head_dim).transpose(1, 0, 2)
        k_h = k.reshape(s, heads, head_dim).transpose(1, 0, 2)
        v_h = v.reshape(s, heads, head_dim).transpose(1, 0, 2)
        # The float32 scale keeps the attention path in float32 end to
        # end: a bare np.sqrt(python int) is a float64 scalar and would
        # silently promote every score matrix.  Scale and mask apply in
        # place on the fresh matmul output (the memoized mask is only
        # read).
        scores = q_h @ k_h.transpose(0, 2, 1)
        scores /= np.float32(np.sqrt(head_dim))
        scores += causal_mask(s)[None, :, :]
        assert scores.dtype == np.float32, (
            f"attention scores promoted to {scores.dtype}"
        )
        state.trace.add(GemmTrace(name="qk", layer=layer_index, m=s, k=d, n=s))
        probs = softmax(scores, axis=-1)

        if plugin.needs_attention_summary:
            # Attention received per key, averaged over heads and
            # queries; computed only for plugins that declare the need
            # (importance-style baselines such as FrameFusion).
            state.scratch["attn_received"] = probs.mean(axis=(0, 1))

        keep = plugin.after_attention_probs(layer_index, probs, state)
        if keep is not None:
            # Semantic pruning: only retained query rows proceed to
            # P x V; keys/values of this layer stay full (they were
            # already computed), exactly as in Sec. V-C.
            probs = probs[:, keep, :]
            state.apply_keep(keep)
        x = state.hidden
        s_q = probs.shape[1]

        ctx = (probs @ v_h).transpose(1, 0, 2).reshape(s_q, d)
        pv_trace = state.trace.add(
            GemmTrace(name="pv", layer=layer_index, m=s_q, k=s, n=d)
        )

        ctx, o_trace = self._concentrated_gemm(
            plugin, layer_index, "o_proj", ctx, state, pv_trace, k=d, n=d,
        )
        attn_out = ctx @ weights.wo
        x = quantize_fp16(x + attn_out, cfg.fp16)

        normed2 = rms_norm(x)
        normed2, fc1_trace = self._concentrated_gemm(
            plugin, layer_index, "fc1", normed2, state, o_trace,
            k=d, n=cfg.ffn_hidden,
        )
        # tanh rather than GELU: GELU's positive DC offset would add an
        # identical mean vector to every token's residual each layer,
        # inflating inter-token similarity toward 1 by depth and
        # erasing the hidden-state redundancy structure SIC operates on.
        h = np.tanh(normed2 @ weights.w_fc1)
        fc2_trace = state.trace.add(
            GemmTrace(name="fc2", layer=layer_index, m=s_q,
                      k=cfg.ffn_hidden, n=d)
        )
        x = quantize_fp16(x + h @ weights.w_fc2, cfg.fp16)

        state.hidden = x
        return fc2_trace

    def _concentrated_gemm(
        self,
        plugin: InferencePlugin,
        layer_index: int,
        site: str,
        x: np.ndarray,
        state: TokenState,
        producer: GemmTrace | None,
        k: int,
        n: int,
    ) -> tuple[np.ndarray, GemmTrace]:
        """Apply the plugin's input gather and record the GEMM trace."""
        x, stats = plugin.gemm_input(layer_index, site, x, state, producer, n)
        trace = GemmTrace(name=site, layer=layer_index, m=x.shape[0], k=k, n=n)
        if stats is not None:
            self._annotate(trace, producer, stats, state)
        state.trace.add(trace)
        return x, trace

    @staticmethod
    def _annotate(
        trace: GemmTrace,
        producer: GemmTrace | None,
        stats: DedupStats,
        state: TokenState,
    ) -> None:
        trace.input_unique = stats.unique_vectors
        trace.vector_size = stats.vector_size
        trace.input_map_bits = stats.map_bits
        trace.scatter_ops = stats.scatter_ops
        state.trace.metadata_bits += stats.map_bits
        state.trace.tile_lengths.extend(stats.tile_lengths)
        state.trace.tile_rows.extend(stats.tile_rows)
        if producer is not None:
            producer.output_compressed_rows = stats.unique_vectors
            producer.output_map_bits = stats.map_bits
            producer.vector_size = stats.vector_size

    def _readout(self, sample: Sample, state: TokenState) -> int:
        """Decode the answer from the query token's attribute sub-space."""
        layout = self.config.layout
        query_hidden = state.hidden[-1]
        slot = sample.question.slot
        if slot == "color":
            attr = query_hidden[layout.color_slice]
        else:
            attr = query_hidden[layout.motion_slice]
        return sample.codebooks.decode_slot(attr, slot)
