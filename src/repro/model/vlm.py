"""The synthetic VLM forward engine.

:class:`SyntheticVLM` runs a causal transformer over the concatenated
``[visual tokens | text tokens]`` sequence (the layout of Fig. 5's
attention matrix), invokes :class:`~repro.model.plugins.InferencePlugin`
hooks at the points where concentration methods intervene, and records
every executed GEMM into a :class:`~repro.accel.trace.ModelTrace` for
the hardware simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.trace import GemmTrace, ModelTrace
from repro.model.functional import attention_scores, rms_norm, softmax
from repro.model.plugins import BatchPlugin, DedupStats, InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.weights import LayerWeights, build_all_weights
from repro.utils.fp import quantize_fp16
from repro.workloads.datasets import Sample

TEXT_POSITION = np.array([-1, -1, -1], dtype=np.int64)
"""Sentinel FHW position for text tokens (never block-matched)."""


def _flat_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Stacked ``(L, s, k) @ (k, n)`` as one flattened 2D GEMM.

    A single ``(L*s, k) @ (k, n)`` call replaces the gufunc's L
    per-slice GEMMs; each output row is the same row-by-column dot
    either way, so the result is bit-identical while the BLAS kernel
    sees one large matrix instead of L small ones.
    """
    lanes, s, k = x.shape
    return (x.reshape(lanes * s, k) @ w).reshape(lanes, s, w.shape[1])


@dataclass
class TokenState:
    """Mutable token stream threaded through the forward pass.

    Attributes:
        hidden: Current hidden states, shape ``(tokens, hidden)``.
        positions: Integer (frame, row, col) per token; text tokens
            carry :data:`TEXT_POSITION`.
        is_text: Boolean mask of text tokens (never pruned).
        original_index: Index of each surviving token in the initial
            sequence.
        num_image_initial: Image-token count before any compression.
        grid: (frames, height, width) of the visual grid.
        trace: Execution trace being accumulated.
        scratch: Free-form storage for plugins (e.g. attention
            summaries used by FrameFusion).
    """

    hidden: np.ndarray
    positions: np.ndarray
    is_text: np.ndarray
    original_index: np.ndarray
    num_image_initial: int
    grid: tuple[int, int, int]
    trace: ModelTrace = field(default_factory=ModelTrace)
    scratch: dict = field(default_factory=dict)
    version: int = 0
    """Incremented whenever the token set changes; plugins use it to
    invalidate cached position-derived structures."""

    @property
    def num_tokens(self) -> int:
        return int(self.hidden.shape[0])

    @property
    def num_image(self) -> int:
        return int(np.count_nonzero(~self.is_text))

    @property
    def num_text(self) -> int:
        return int(np.count_nonzero(self.is_text))

    def apply_keep(self, keep: np.ndarray) -> None:
        """Prune the token stream to the boolean mask ``keep``.

        Text tokens must all be kept; methods only compress the visual
        stream (every method in the paper excludes text tokens).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.num_tokens,):
            raise ValueError("keep mask must cover the current token set")
        if not keep[self.is_text].all():
            raise ValueError("text tokens cannot be pruned")
        self.hidden = self.hidden[keep]
        self.positions = self.positions[keep]
        self.is_text = self.is_text[keep]
        self.original_index = self.original_index[keep]
        self.version += 1


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of one forward pass."""

    predicted_index: int
    correct: bool
    trace: ModelTrace
    final_tokens: int


@dataclass
class BatchState:
    """Token state of a cross-sample batched forward pass.

    ``hidden`` is the master ``(lanes, tokens, hidden)`` stack; each
    lane's :class:`TokenState` views its slice (``lane.hidden is
    batch.hidden[i]`` between layers), so per-lane bookkeeping —
    positions, versions, traces, scratch — runs unchanged on views of
    the stacked data.  All lanes hold the same token count at every
    point of the pass (samples are bucketed by shape and the SEC's
    budget is a deterministic function of the initial image count), so
    the stack stays rectangular end to end.
    """

    lanes: list[TokenState]
    hidden: np.ndarray

    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    @property
    def num_tokens(self) -> int:
        return int(self.hidden.shape[1])

    def set_hidden(self, hidden: np.ndarray) -> None:
        """Install a new stack and re-point every lane's view at it."""
        self.hidden = hidden
        for index, lane in enumerate(self.lanes):
            lane.hidden = hidden[index]

    def restack(self) -> None:
        """Re-stack per-lane hidden states (after a per-lane prune).

        Raises if the lanes diverged in shape — the rectangularity
        invariant batched execution rests on.
        """
        shapes = {lane.hidden.shape for lane in self.lanes}
        if len(shapes) != 1:
            raise ValueError(
                f"lanes diverged in shape after pruning: {sorted(shapes)}"
            )
        self.set_hidden(np.stack([lane.hidden for lane in self.lanes]))


class SyntheticVLM:
    """A constructed-weight VLM with pluggable concentration hooks."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self.layers: list[LayerWeights] = build_all_weights(config)

    def initial_state(self, sample: Sample) -> TokenState:
        """Assemble the token stream ``[visual | text]`` for a sample."""
        cfg = self.config
        if sample.visual_tokens.shape[1] != cfg.hidden:
            raise ValueError(
                f"sample hidden dim {sample.visual_tokens.shape[1]} does not"
                f" match model hidden dim {cfg.hidden}"
            )
        hidden = np.concatenate(
            [sample.visual_tokens, sample.text_tokens], axis=0
        )
        hidden = quantize_fp16(hidden, cfg.fp16)
        num_image = sample.num_visual_tokens
        num_text = sample.num_text_tokens
        positions = np.concatenate(
            [sample.positions, np.tile(TEXT_POSITION, (num_text, 1))], axis=0
        )
        is_text = np.zeros(num_image + num_text, dtype=bool)
        is_text[num_image:] = True
        return TokenState(
            hidden=hidden,
            positions=positions,
            is_text=is_text,
            original_index=np.arange(num_image + num_text),
            num_image_initial=num_image,
            grid=sample.grid,
        )

    def forward(
        self, sample: Sample, plugin: InferencePlugin | None = None
    ) -> InferenceResult:
        """Run the model on a sample under an optional plugin."""
        plugin = plugin or InferencePlugin()
        state = self.initial_state(sample)
        state.trace.initial_tokens = state.num_tokens
        plugin.begin(state)
        plugin.on_visual_tokens(state)

        last_writer: GemmTrace | None = None
        for layer_index, weights in enumerate(self.layers):
            plugin.before_layer(layer_index, state)
            last_writer = self._run_layer(layer_index, weights, state,
                                          plugin, last_writer)
            state.trace.tokens_per_layer.append(state.num_tokens)
        plugin.finish(state)

        predicted = self._readout(sample, state)
        return InferenceResult(
            predicted_index=predicted,
            correct=predicted == sample.question.answer_index,
            trace=state.trace,
            final_tokens=state.num_tokens,
        )

    def forward_batch(
        self, samples: list[Sample], plugin: BatchPlugin | None = None
    ) -> list[InferenceResult]:
        """Run the model on a stack of same-shape samples at once.

        The samples must share their token layout (visual/text counts
        and grid — callers bucket by shape); the whole stack then runs
        as one tensorized pass over ``(lanes, tokens, hidden)`` arrays.
        Every stacked operation applies the serial pass's kernels
        per lane slice (matmul loops the same per-slice GEMM, norms
        and softmax reduce over trailing axes, elementwise ops are
        elementwise), so each lane's :class:`InferenceResult` — answer,
        trace, token counts — is bit-identical to
        :meth:`forward` on that sample alone, for every batch size.
        """
        plugin = plugin or BatchPlugin()
        if not samples:
            return []
        lanes = [self.initial_state(sample) for sample in samples]
        shapes = {
            (lane.num_tokens, lane.grid, int(lane.num_image_initial))
            for lane in lanes
        }
        if len(shapes) != 1:
            raise ValueError(
                f"forward_batch needs same-shape samples, got {sorted(shapes)}"
            )
        batch = BatchState(lanes=lanes, hidden=np.empty(0))
        batch.set_hidden(np.stack([lane.hidden for lane in lanes]))
        for lane in lanes:
            lane.trace.initial_tokens = lane.num_tokens
        plugin.begin(batch)

        last_writers: list[GemmTrace | None] = [None] * len(lanes)
        for layer_index, weights in enumerate(self.layers):
            last_writers = self._run_layer_batch(
                layer_index, weights, batch, plugin, last_writers
            )
            for lane in lanes:
                lane.trace.tokens_per_layer.append(lane.num_tokens)
        plugin.finish(batch)

        results = []
        for sample, lane in zip(samples, lanes):
            predicted = self._readout(sample, lane)
            results.append(InferenceResult(
                predicted_index=predicted,
                correct=predicted == sample.question.answer_index,
                trace=lane.trace,
                final_tokens=lane.num_tokens,
            ))
        return results

    def _run_layer(
        self,
        layer_index: int,
        weights: LayerWeights,
        state: TokenState,
        plugin: InferencePlugin,
        last_writer: GemmTrace | None,
    ) -> GemmTrace:
        cfg = self.config
        d, heads, head_dim = cfg.hidden, cfg.num_heads, cfg.head_dim

        x = state.hidden
        normed = rms_norm(x)
        normed, _ = self._concentrated_gemm(
            plugin, layer_index, "qkv", normed, state, last_writer,
            k=d, n=3 * d,
        )
        q = normed @ weights.wq
        k = normed @ weights.wk
        v = normed @ weights.wv

        s = state.num_tokens
        q_h = q.reshape(s, heads, head_dim).transpose(1, 0, 2)
        k_h = k.reshape(s, heads, head_dim).transpose(1, 0, 2)
        v_h = v.reshape(s, heads, head_dim).transpose(1, 0, 2)
        scores = attention_scores(q_h, k_h, head_dim)
        state.trace.add(GemmTrace(name="qk", layer=layer_index, m=s, k=d, n=s))
        probs = softmax(scores, axis=-1)

        if plugin.needs_attention_summary:
            # Attention received per key, averaged over heads and
            # queries; computed only for plugins that declare the need
            # (importance-style baselines such as FrameFusion).
            state.scratch["attn_received"] = probs.mean(axis=(0, 1))

        keep = plugin.after_attention_probs(layer_index, probs, state)
        if keep is not None:
            # Semantic pruning: only retained query rows proceed to
            # P x V; keys/values of this layer stay full (they were
            # already computed), exactly as in Sec. V-C.
            probs = probs[:, keep, :]
            state.apply_keep(keep)
        x = state.hidden
        s_q = probs.shape[1]

        ctx = (probs @ v_h).transpose(1, 0, 2).reshape(s_q, d)
        pv_trace = state.trace.add(
            GemmTrace(name="pv", layer=layer_index, m=s_q, k=s, n=d)
        )

        ctx, o_trace = self._concentrated_gemm(
            plugin, layer_index, "o_proj", ctx, state, pv_trace, k=d, n=d,
        )
        attn_out = ctx @ weights.wo
        x = quantize_fp16(x + attn_out, cfg.fp16)

        normed2 = rms_norm(x)
        normed2, fc1_trace = self._concentrated_gemm(
            plugin, layer_index, "fc1", normed2, state, o_trace,
            k=d, n=cfg.ffn_hidden,
        )
        # tanh rather than GELU: GELU's positive DC offset would add an
        # identical mean vector to every token's residual each layer,
        # inflating inter-token similarity toward 1 by depth and
        # erasing the hidden-state redundancy structure SIC operates on.
        h = np.tanh(normed2 @ weights.w_fc1)
        fc2_trace = state.trace.add(
            GemmTrace(name="fc2", layer=layer_index, m=s_q,
                      k=cfg.ffn_hidden, n=d)
        )
        x = quantize_fp16(x + h @ weights.w_fc2, cfg.fp16)

        state.hidden = x
        return fc2_trace

    def _run_layer_batch(
        self,
        layer_index: int,
        weights: LayerWeights,
        batch: BatchState,
        plugin: BatchPlugin,
        last_writers: list[GemmTrace | None],
    ) -> list[GemmTrace | None]:
        """One transformer layer over the whole lane stack.

        Mirrors :meth:`_run_layer` operation for operation with a
        leading lane axis; per-lane trace records are appended at the
        identical points so each lane's trace equals its serial one.
        """
        cfg = self.config
        d, heads, head_dim = cfg.hidden, cfg.num_heads, cfg.head_dim
        lanes = batch.lanes
        num_lanes = batch.num_lanes

        x = batch.hidden                              # (L, s, d)
        normed = rms_norm(x)
        normed, _ = self._concentrated_gemm_batch(
            plugin, layer_index, "qkv", normed, batch, last_writers,
            k=d, n=3 * d,
        )
        q = _flat_matmul(normed, weights.wq)
        k = _flat_matmul(normed, weights.wk)
        v = _flat_matmul(normed, weights.wv)

        s = batch.num_tokens
        q_h = q.reshape(num_lanes, s, heads, head_dim).transpose(0, 2, 1, 3)
        k_h = k.reshape(num_lanes, s, heads, head_dim).transpose(0, 2, 1, 3)
        v_h = v.reshape(num_lanes, s, heads, head_dim).transpose(0, 2, 1, 3)
        scores = attention_scores(q_h, k_h, head_dim)
        for lane in lanes:
            lane.trace.add(
                GemmTrace(name="qk", layer=layer_index, m=s, k=d, n=s)
            )
        probs = softmax(scores, axis=-1)

        keeps = plugin.after_attention_probs(layer_index, probs, batch)
        if keeps is not None:
            # Semantic pruning, per lane: retained query rows proceed
            # to P x V exactly as in the serial pass; equal budgets
            # keep the stack rectangular (restack checks).
            pruned = [
                probs[index][:, keep, :]
                for index, keep in enumerate(keeps)
            ]
            for lane, keep in zip(lanes, keeps):
                lane.apply_keep(keep)
            batch.restack()
            probs = np.stack(pruned)
        x = batch.hidden
        s_q = probs.shape[2]

        ctx = (probs @ v_h).transpose(0, 2, 1, 3).reshape(num_lanes, s_q, d)
        pv_traces = [
            lane.trace.add(
                GemmTrace(name="pv", layer=layer_index, m=s_q, k=s, n=d)
            )
            for lane in lanes
        ]

        ctx, o_traces = self._concentrated_gemm_batch(
            plugin, layer_index, "o_proj", ctx, batch, pv_traces, k=d, n=d,
        )
        attn_out = _flat_matmul(ctx, weights.wo)
        x = quantize_fp16(x + attn_out, cfg.fp16)

        normed2 = rms_norm(x)
        normed2, fc1_traces = self._concentrated_gemm_batch(
            plugin, layer_index, "fc1", normed2, batch, o_traces,
            k=d, n=cfg.ffn_hidden,
        )
        h = np.tanh(_flat_matmul(normed2, weights.w_fc1))
        fc2_traces = [
            lane.trace.add(
                GemmTrace(name="fc2", layer=layer_index, m=s_q,
                          k=cfg.ffn_hidden, n=d)
            )
            for lane in lanes
        ]
        x = quantize_fp16(x + _flat_matmul(h, weights.w_fc2), cfg.fp16)

        batch.set_hidden(x)
        return list(fc2_traces)

    def _concentrated_gemm_batch(
        self,
        plugin: BatchPlugin,
        layer_index: int,
        site: str,
        x: np.ndarray,
        batch: BatchState,
        producers: list[GemmTrace | None],
        k: int,
        n: int,
    ) -> tuple[np.ndarray, list[GemmTrace]]:
        """Apply the batch plugin's gather; record per-lane GEMM traces."""
        x, stats_list = plugin.gemm_input(
            layer_index, site, x, batch, producers, n
        )
        traces = []
        for lane, stats, producer in zip(batch.lanes, stats_list, producers):
            trace = GemmTrace(
                name=site, layer=layer_index, m=x.shape[1], k=k, n=n
            )
            if stats is not None:
                self._annotate(trace, producer, stats, lane)
            lane.trace.add(trace)
            traces.append(trace)
        return x, traces

    def _concentrated_gemm(
        self,
        plugin: InferencePlugin,
        layer_index: int,
        site: str,
        x: np.ndarray,
        state: TokenState,
        producer: GemmTrace | None,
        k: int,
        n: int,
    ) -> tuple[np.ndarray, GemmTrace]:
        """Apply the plugin's input gather and record the GEMM trace."""
        x, stats = plugin.gemm_input(layer_index, site, x, state, producer, n)
        trace = GemmTrace(name=site, layer=layer_index, m=x.shape[0], k=k, n=n)
        if stats is not None:
            self._annotate(trace, producer, stats, state)
        state.trace.add(trace)
        return x, trace

    @staticmethod
    def _annotate(
        trace: GemmTrace,
        producer: GemmTrace | None,
        stats: DedupStats,
        state: TokenState,
    ) -> None:
        trace.input_unique = stats.unique_vectors
        trace.vector_size = stats.vector_size
        trace.input_map_bits = stats.map_bits
        trace.scatter_ops = stats.scatter_ops
        state.trace.metadata_bits += stats.map_bits
        state.trace.tile_lengths.extend(stats.tile_lengths)
        state.trace.tile_rows.extend(stats.tile_rows)
        if producer is not None:
            producer.output_compressed_rows = stats.unique_vectors
            producer.output_map_bits = stats.map_bits
            producer.vector_size = stats.vector_size

    def _readout(self, sample: Sample, state: TokenState) -> int:
        """Decode the answer from the query token's attribute sub-space."""
        layout = self.config.layout
        query_hidden = state.hidden[-1]
        slot = sample.question.slot
        if slot == "color":
            attr = query_hidden[layout.color_slice]
        else:
            attr = query_hidden[layout.motion_slice]
        return sample.codebooks.decode_slot(attr, slot)
