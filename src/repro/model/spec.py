"""Model architecture specification for the synthetic VLM substrate."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.embedding import SubspaceLayout


@dataclass(frozen=True)
class ModelConfig:
    """Architecture and construction parameters of a synthetic VLM.

    The transformer geometry (hidden size, depth, heads, FFN ratio)
    mirrors the paper's evaluation models at roughly 1/14 width and
    1/2 depth so that a full forward pass runs in well under a second
    on CPU while keeping every structural property the concentration
    pipeline interacts with (head_dim = vector size = 32, FHW visual
    token order, image-then-text causal layout).

    Attributes:
        name: Registry name (see :mod:`repro.model.zoo`).
        hidden: Hidden dimension; must be divisible by 8 and by
            ``num_heads``.
        num_layers: Transformer depth.
        num_heads: Attention heads; ``hidden // num_heads`` should be
            32 to match the paper's vector size.
        ffn_mult: FFN expansion ratio.
        seed: Seed for weight construction (distinguishes the "models"
            of the zoo the way different pretrained checkpoints would).
        object_gain: Scale of the object-identity match in Wq/Wk; sets
            cross-modal attention sharpness.
        self_gain: Scale of the texture-similarity match in Wq/Wk.
            Image tokens attend to texturally similar tokens (mostly
            themselves and their previous-frame counterparts), the way
            real ViT attention maps behave.  Without it every image
            query is diffuse and retrieves the same scene-average
            attribute, accumulating a shared residual direction that
            inflates inter-token similarity with depth.
        value_gain: Scale of the attribute pass-through in Wv.
        out_gain: Scale of the output projection's attribute
            accumulation into the residual stream (at layer 0).
        out_gain_decay: Per-layer multiplier on ``out_gain``; retrieval
            is front-loaded into early layers the way trained VLMs
            specialize heads, while the Q/K score geometry (which the
            SEC reads) is identical at every layer.
        weight_noise: Std-dev of the dense random component of every
            projection (models everything the constructed sub-spaces
            do not capture).
        mlp_scale: Scale of the random MLP mixing.
        fp16: Round hidden states through FP16 between stages, matching
            the accelerator's FP16 datapath.
        vocab_seed: Seed of the shared codebooks (the "vocabulary" the
            model was trained on); must match the dataset's.
    """

    name: str
    hidden: int = 192
    num_layers: int = 12
    num_heads: int = 6
    ffn_mult: int = 3
    seed: int = 0
    object_gain: float = 2.0
    self_gain: float = 1.2
    value_gain: float = 1.0
    out_gain: float = 0.3
    out_gain_decay: float = 0.5
    weight_noise: float = 0.02
    mlp_scale: float = 0.10
    fp16: bool = True
    vocab_seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden % 8 != 0:
            raise ValueError("hidden must be divisible by 8")
        if self.hidden % self.num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads

    @property
    def ffn_hidden(self) -> int:
        return self.hidden * self.ffn_mult

    @property
    def layout(self) -> SubspaceLayout:
        return SubspaceLayout(self.hidden)

    def dense_macs(self, num_image_tokens: int, num_text_tokens: int) -> int:
        """MACs of one dense forward pass over ``M + T`` tokens.

        This is the Sec. VII-B sparsity denominator: the operations a
        vanilla systolic array needs for the original input.
        """
        s = num_image_tokens + num_text_tokens
        d = self.hidden
        per_layer = (
            s * d * 3 * d          # QKV projection
            + s * d * s            # QK^T over all heads
            + s * s * d            # PV over all heads
            + s * d * d            # output projection
            + 2 * s * d * self.ffn_hidden  # FFN up + down
        )
        return per_layer * self.num_layers
