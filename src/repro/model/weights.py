"""Constructed transformer weights implementing cross-modal retrieval.

Real VLMs *learn* attention heads in which text queries match the
visual tokens they talk about, and value paths that carry the visual
content back to the text stream.  We construct that circuit explicitly
so it exists without training:

* ``Wq``/``Wk`` share a block-orthogonal rotation on the *object*
  sub-space, so ``q . k`` measures object-identity agreement — the
  query token attends to exactly the patches of the referenced object
  (Fig. 2(a) behaviour).
* ``Wv``/``Wo`` pass the *attribute* sub-space through attention, so
  the query token accumulates the referenced object's colour/motion
  code in its residual stream, where the readout decodes it.
* Everything is perturbed by a dense random component and the MLP is a
  smooth random mixing, giving hidden states the full-rank, noisy
  character that the similarity concentrator has to cope with in the
  real models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.embedding import Codebooks
from repro.model.spec import ModelConfig
from repro.utils.rng import rng_for


@dataclass(frozen=True)
class LayerWeights:
    """Projection matrices of one transformer layer (all ``float32``)."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_fc1: np.ndarray
    w_fc2: np.ndarray


def build_layer_weights(config: ModelConfig, layer_index: int) -> LayerWeights:
    """Construct the weights of layer ``layer_index``.

    The query projection passes the object sub-space through unchanged
    (probe codes stay probe codes); the key projection applies the
    codebooks' associative content-to-probe map.  The asymmetry is
    essential: with a shared transform, Cauchy-Schwarz makes every
    token's best match *itself*, and softmax would park all attention
    mass on the query token instead of the referenced object.
    """
    layout = config.layout
    d = config.hidden
    rng = rng_for(config.seed, "weights", config.name, layer_index)
    sigma = config.weight_noise
    codebooks = Codebooks(layout, seed=config.vocab_seed)

    def noise(rows: int, cols: int) -> np.ndarray:
        return sigma * rng.standard_normal((rows, cols)).astype(np.float32)

    obj = layout.object_slice
    attr = layout.attribute_slice
    obj_dim = obj.stop - obj.start
    attr_dim = attr.stop - attr.start

    wq = noise(d, d)
    wk = noise(d, d)
    wq[obj, obj] += config.object_gain * np.eye(obj_dim, dtype=np.float32)
    wk[obj, obj] += config.object_gain * codebooks.association_matrix()

    # Texture self-match *in the value-carrying heads*: image tokens
    # attend to texturally similar tokens (themselves, neighbours,
    # previous-frame counterparts) instead of diffusing over the whole
    # sequence.  The projection must land in the object sub-space —
    # the score dims of the heads Wo actually reads — or the circuit
    # would be invisible to the residual stream, and every image token
    # would keep accumulating the same scene-average attribute.
    tex = layout.texture_slice
    tex_dim = tex.stop - tex.start
    tex_map = (
        rng.standard_normal((tex_dim, obj_dim)).astype(np.float32)
        / np.sqrt(tex_dim)
    )
    wq[tex, obj] += config.self_gain * tex_map
    wk[tex, obj] += config.self_gain * tex_map

    # The value path must ride in the same heads that carry the probe
    # signal (the object sub-space spans the first heads); otherwise
    # the diffuse remaining heads average everyone's attributes into
    # the channel.  ``wv`` packs the attribute code into the leading
    # ``attr_dim`` value dims, attention moves it, and ``wo`` unpacks
    # it back into the attribute channel of the residual stream.  Both
    # matrices are kept noise-free on the channels the retrieval
    # circuit reads and writes — a trained network's circuit lives in
    # aligned low-rank sub-spaces.
    pack = slice(0, attr_dim)
    wv = noise(d, d)
    wv[:, pack] = 0.0
    wv[attr, pack] = config.value_gain * np.eye(attr_dim, dtype=np.float32)

    # Wo is a pure low-rank unpack of the retrieved attribute: every
    # query's attention context includes a near-identical diffuse
    # component (attention sinks), and a dense Wo would pump that
    # *shared* vector into all residual streams each layer, inflating
    # inter-token similarity toward 1 and washing out the Fig. 2(b)
    # granularity statistics.
    wo = np.zeros((d, d), dtype=np.float32)
    layer_gain = config.out_gain * config.out_gain_decay**layer_index
    wo[pack, attr] = layer_gain * np.eye(attr_dim, dtype=np.float32)

    mlp_sigma = config.mlp_scale / np.sqrt(d)
    w_fc1 = (mlp_sigma * rng.standard_normal((d, config.ffn_hidden))).astype(
        np.float32
    )
    w_fc2 = (mlp_sigma * rng.standard_normal((config.ffn_hidden, d))).astype(
        np.float32
    )
    w_fc2[:, obj] = 0.0
    w_fc2[:, attr] = 0.0
    # The positional code is small-magnitude; random MLP writes would
    # swamp it within a few layers and destroy the cross-frame
    # similarity of position-dominated sub-vectors.  Trained models
    # preserve positional sub-spaces the same way; the MLP mixes into
    # the texture channels only.
    w_fc2[:, layout.position_slice] = 0.0
    return LayerWeights(wq=wq, wk=wk, wv=wv, wo=wo, w_fc1=w_fc1, w_fc2=w_fc2)


def build_all_weights(config: ModelConfig) -> list[LayerWeights]:
    """Construct weights for every layer of the model."""
    return [
        build_layer_weights(config, layer) for layer in range(config.num_layers)
    ]
