"""NumPy transformer VLM substrate with constructed retrieval weights."""

from repro.model.embedding import (
    COLOR_NAMES,
    KIND_NAMES,
    MOTION_NAMES,
    QUESTION_SLOTS,
    Codebooks,
    SubspaceLayout,
)
from repro.model.functional import (
    causal_mask,
    cosine_similarity,
    cosine_similarity_matrix,
    gelu,
    rms_norm,
    softmax,
)
from repro.model.plugins import DENSE_PLUGIN, DedupStats, InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.vlm import InferenceResult, SyntheticVLM, TokenState
from repro.model.weights import LayerWeights, build_all_weights, build_layer_weights
from repro.model.zoo import (
    IMAGE_MODELS,
    MODEL_CONFIGS,
    PAPER_MODEL_NAMES,
    VIDEO_MODELS,
    get_model_config,
)

__all__ = [
    "COLOR_NAMES",
    "KIND_NAMES",
    "MOTION_NAMES",
    "QUESTION_SLOTS",
    "Codebooks",
    "SubspaceLayout",
    "causal_mask",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "gelu",
    "rms_norm",
    "softmax",
    "DENSE_PLUGIN",
    "DedupStats",
    "InferencePlugin",
    "ModelConfig",
    "InferenceResult",
    "SyntheticVLM",
    "TokenState",
    "LayerWeights",
    "build_all_weights",
    "build_layer_weights",
    "IMAGE_MODELS",
    "MODEL_CONFIGS",
    "PAPER_MODEL_NAMES",
    "VIDEO_MODELS",
    "get_model_config",
]
