"""Paired statistics for small-sample accuracy comparisons.

The paper's Table II reports accuracy differences of 1-2 points; at
our synthetic sample counts such deltas need paired analysis to mean
anything.  Because every method is evaluated on *identical* samples
(the runner pairs them by construction), we can bootstrap the paired
accuracy difference and report a confidence interval instead of two
noisy marginals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import EvalResult
from repro.utils.rng import rng_for


@dataclass(frozen=True)
class PairedComparison:
    """Bootstrap summary of ``candidate - reference`` accuracy.

    Attributes:
        mean_delta: Mean paired accuracy difference, in percent.
        low: Lower bound of the confidence interval.
        high: Upper bound of the confidence interval.
        n_samples: Number of paired samples.
        confidence: Interval coverage (e.g. 0.95).
    """

    mean_delta: float
    low: float
    high: float
    n_samples: int
    confidence: float

    @property
    def significant(self) -> bool:
        """Whether the interval excludes zero."""
        return self.low > 0.0 or self.high < 0.0

    def __str__(self) -> str:
        return (
            f"delta = {self.mean_delta:+.1f}pp "
            f"[{self.low:+.1f}, {self.high:+.1f}] "
            f"({int(self.confidence * 100)}% CI, n={self.n_samples})"
        )


def paired_bootstrap(
    candidate: EvalResult | list[bool],
    reference: EvalResult | list[bool],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Bootstrap CI of the paired accuracy difference.

    Args:
        candidate: Evaluation (or raw correctness flags) of the method
            under test.
        reference: Evaluation of the comparison method on the *same*
            samples, in the same order.
        confidence: Two-sided interval coverage.
        resamples: Bootstrap resamples.
        seed: Resampling seed.

    Returns:
        A :class:`PairedComparison` in percentage points.
    """
    cand = np.asarray(
        candidate.correct if isinstance(candidate, EvalResult) else candidate,
        dtype=np.float64,
    )
    ref = np.asarray(
        reference.correct if isinstance(reference, EvalResult) else reference,
        dtype=np.float64,
    )
    if cand.shape != ref.shape:
        raise ValueError("paired comparison needs equal-length results")
    if cand.size == 0:
        raise ValueError("paired comparison needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")

    deltas = 100.0 * (cand - ref)
    rng = rng_for(seed, "bootstrap")
    indices = rng.integers(0, deltas.size, size=(resamples, deltas.size))
    means = deltas[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return PairedComparison(
        mean_delta=float(deltas.mean()),
        low=float(low),
        high=float(high),
        n_samples=int(deltas.size),
        confidence=confidence,
    )


def sparsity_summary(result: EvalResult) -> dict[str, float]:
    """Mean/std/min/max of a method's per-sample sparsity (percent)."""
    values = 100.0 * np.asarray(result.sparsities, dtype=np.float64)
    if values.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "max": float(values.max()),
    }
