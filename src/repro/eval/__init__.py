"""Evaluation harness, experiment drivers, and paper-style reporting."""

from repro.eval.metrics import (
    EvalResult,
    computation_sparsity,
    dense_macs_for,
)
from repro.eval.runner import (
    METHOD_REGISTRY,
    PAPER_METHOD_NAMES,
    ModelCache,
    evaluate,
    evaluate_samples,
    evaluate_span,
    make_plugin,
)
from repro.eval.statistics import (
    PairedComparison,
    paired_bootstrap,
    sparsity_summary,
)

__all__ = [
    "EvalResult",
    "computation_sparsity",
    "dense_macs_for",
    "METHOD_REGISTRY",
    "PAPER_METHOD_NAMES",
    "ModelCache",
    "evaluate",
    "evaluate_samples",
    "evaluate_span",
    "make_plugin",
    "PairedComparison",
    "paired_bootstrap",
    "sparsity_summary",
]
