"""Accuracy and sparsity metrics (Sec. VII-B definitions).

*Computation sparsity* is the fraction of the operations a vanilla
systolic array would execute on the original input that a method
avoids: ``1 - ops(method) / ops(dense)``.  Dense operations are
computed analytically from the model geometry and original token
counts, so pruned-token methods are charged correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.trace import ModelTrace
from repro.model.spec import ModelConfig
from repro.workloads.datasets import Sample


def dense_macs_for(model: ModelConfig, sample: Sample) -> int:
    """Dense-execution MACs of one sample on the given model."""
    return model.dense_macs(sample.num_visual_tokens, sample.num_text_tokens)


def computation_sparsity(
    trace: ModelTrace, model: ModelConfig, sample: Sample
) -> float:
    """Sec. VII-B computation sparsity of one forward pass."""
    dense = dense_macs_for(model, sample)
    if dense == 0:
        return 0.0
    return 1.0 - trace.total_macs / dense


@dataclass
class EvalResult:
    """Aggregated outcome of one (model, dataset, method) evaluation.

    Attributes:
        model: Model registry name.
        dataset: Dataset profile name.
        method: Method registry name.
        correct: Per-sample correctness flags.
        sparsities: Per-sample computation sparsity.
        traces: Per-sample execution traces (for the simulator).
        dense_macs: Per-sample dense-reference MACs.
    """

    model: str
    dataset: str
    method: str
    correct: list[bool] = field(default_factory=list)
    sparsities: list[float] = field(default_factory=list)
    traces: list[ModelTrace] = field(default_factory=list)
    dense_macs: list[int] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Mean accuracy in percent (paper tables report percent)."""
        if not self.correct:
            return 0.0
        return 100.0 * float(np.mean(self.correct))

    @property
    def sparsity(self) -> float:
        """Mean computation sparsity in percent."""
        if not self.sparsities:
            return 0.0
        return 100.0 * float(np.mean(self.sparsities))

    @property
    def merged_trace(self) -> ModelTrace:
        """All per-sample traces folded into one (simulator input)."""
        merged = ModelTrace()
        for trace in self.traces:
            merged.merge(trace)
        return merged
