"""Accuracy and sparsity metrics (Sec. VII-B definitions).

*Computation sparsity* is the fraction of the operations a vanilla
systolic array would execute on the original input that a method
avoids: ``1 - ops(method) / ops(dense)``.  Dense operations are
computed analytically from the model geometry and original token
counts, so pruned-token methods are charged correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.accel.trace import ModelTrace
from repro.model.spec import ModelConfig
from repro.workloads.datasets import Sample


def dense_macs_for(model: ModelConfig, sample: Sample) -> int:
    """Dense-execution MACs of one sample on the given model."""
    return model.dense_macs(sample.num_visual_tokens, sample.num_text_tokens)


def computation_sparsity(
    trace: ModelTrace, model: ModelConfig, sample: Sample
) -> float:
    """Sec. VII-B computation sparsity of one forward pass."""
    dense = dense_macs_for(model, sample)
    if dense == 0:
        return 0.0
    return 1.0 - trace.total_macs / dense


@dataclass
class EvalResult:
    """Aggregated outcome of one (model, dataset, method) evaluation.

    Attributes:
        model: Model registry name.
        dataset: Dataset profile name.
        method: Method registry name.
        correct: Per-sample correctness flags.
        sparsities: Per-sample computation sparsity.
        traces: Per-sample execution traces (for the simulator).
        dense_macs: Per-sample dense-reference MACs.
    """

    model: str
    dataset: str
    method: str
    correct: list[bool] = field(default_factory=list)
    sparsities: list[float] = field(default_factory=list)
    traces: list[ModelTrace] = field(default_factory=list)
    dense_macs: list[int] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Mean accuracy in percent (paper tables report percent)."""
        if not self.correct:
            return 0.0
        return 100.0 * float(np.mean(self.correct))

    @property
    def sparsity(self) -> float:
        """Mean computation sparsity in percent."""
        if not self.sparsities:
            return 0.0
        return 100.0 * float(np.mean(self.sparsities))

    @property
    def merged_trace(self) -> ModelTrace:
        """All per-sample traces folded into one (simulator input)."""
        merged = ModelTrace()
        for trace in self.traces:
            merged.merge(trace)
        return merged

    @property
    def num_samples(self) -> int:
        return len(self.correct)

    def accumulate(self, other: "EvalResult") -> None:
        """Append another span's per-sample records to this one.

        Both results must describe the same (model, dataset, method)
        cell; the per-sample lists concatenate in call order, so
        accumulating span results in global sample order reproduces
        the serial :func:`~repro.eval.runner.evaluate` loop exactly.
        """
        labels = (self.model, self.dataset, self.method)
        if (other.model, other.dataset, other.method) != labels:
            raise ValueError(
                "cannot accumulate across cells: "
                f"{labels} vs {(other.model, other.dataset, other.method)}"
            )
        self.correct.extend(other.correct)
        self.sparsities.extend(other.sparsities)
        self.traces.extend(other.traces)
        self.dense_macs.extend(other.dense_macs)

    @staticmethod
    def merge(
        results: Sequence["EvalResult"],
        model: str | None = None,
        dataset: str | None = None,
        method: str | None = None,
    ) -> "EvalResult":
        """Fold per-span results into one cell (associative reduce).

        Merging starts from an empty identity and concatenates each
        span's per-sample lists in sequence order, so merging spans in
        global sample order is *bit-identical* to evaluating the whole
        cell serially: the same flags, sparsities, and traces in the
        same positions, hence the same ``accuracy``/``sparsity`` means
        down to the last bit.  Concatenation is exactly associative;
        only a *reordering* of spans can move the floating-point means
        by summation rounding.

        Args:
            results: Span results to fold; all must share one
                (model, dataset, method) cell.
            model / dataset / method: Cell labels for the
                empty-sequence identity (required when ``results`` is
                empty, checked for consistency otherwise).
        """
        results = list(results)
        if not results:
            if model is None or dataset is None or method is None:
                raise ValueError(
                    "merging zero results needs explicit model/dataset/"
                    "method labels for the identity element"
                )
            return EvalResult(model=model, dataset=dataset, method=method)
        first = results[0]
        total = EvalResult(
            model=model if model is not None else first.model,
            dataset=dataset if dataset is not None else first.dataset,
            method=method if method is not None else first.method,
        )
        for result in results:
            total.accumulate(result)
        return total
