"""Inter-frame similarity statistics (the Fig. 2(b) measurement).

Captures per-layer FC inputs — the tensors the similarity concentrator
operates on — and measures, for each candidate vector size, how much
of the stream is redundant against the co-located sub-vectors of the
previous frame.

The whole measurement is registered as the ``fig2b`` engine job kind,
so it shares the engine's dedupe/cache/parallelism machinery with the
standard evaluation cells.
"""

from __future__ import annotations

import numpy as np

from repro.engine.jobs import EvalJob, register_job_kind
from repro.eval.runner import ModelCache
from repro.model.plugins import InferencePlugin
from repro.workloads.datasets import make_dataset


class ActivationCapture(InferencePlugin):
    """Capture per-layer FC inputs (the tensors SIC operates on)."""

    def __init__(self) -> None:
        self.captured: list[np.ndarray] = []
        self.positions: np.ndarray | None = None
        self.is_text: np.ndarray | None = None

    def gemm_input(self, layer_index, site, x, state, producer, n):
        if site == "fc1":
            self.captured.append(np.array(x))
            self.positions = np.array(state.positions)
            self.is_text = np.array(state.is_text)
        return x, None


def similarity_fractions(
    model_name: str,
    dataset: str,
    vector_sizes: tuple[int, ...],
    num_samples: int,
    seed: int,
    threshold: float = 0.9,
    cdf_points: int = 101,
) -> dict[str, object]:
    """Previous-frame cosine-similarity statistics per vector size.

    Returns a picklable payload::

        {"fraction_above": {v: float},
         "cdf_grid": np.ndarray,
         "cdfs": {v: np.ndarray}}

    where ``fraction_above[v]`` is the share of sub-vectors whose
    similarity to the co-located previous-frame sub-vector exceeds
    ``threshold`` — the redundancy the SIC can harvest at size ``v``.
    """
    model = ModelCache.get(model_name)
    samples = make_dataset(dataset, model.config.layout, num_samples, seed)
    cdf_grid = np.linspace(0, 1, cdf_points)
    sims_by_size: dict[int, list[np.ndarray]] = {v: [] for v in vector_sizes}
    for sample in samples:
        capture = ActivationCapture()
        model.forward(sample, capture)
        frames, height, width = sample.grid
        for hidden in capture.captured:
            image = hidden[: sample.num_visual_tokens]
            per_frame = image.reshape(frames, height * width, -1)
            current = per_frame[1:]
            previous = per_frame[:-1]
            for v in vector_sizes:
                blocks = -(-image.shape[1] // v)
                pad = blocks * v - image.shape[1]
                cur = np.pad(current, ((0, 0), (0, 0), (0, pad)))
                prev = np.pad(previous, ((0, 0), (0, 0), (0, pad)))
                cur = cur.reshape(*cur.shape[:2], blocks, v)
                prev = prev.reshape(*prev.shape[:2], blocks, v)
                dots = np.einsum("fpbv,fpbv->fpb", cur, prev)
                denom = (
                    np.linalg.norm(cur, axis=-1)
                    * np.linalg.norm(prev, axis=-1)
                )
                sims = dots / np.maximum(denom, 1e-8)
                sims_by_size[v].append(sims.ravel())

    fraction_above: dict[int, float] = {}
    cdfs: dict[int, np.ndarray] = {}
    for v in vector_sizes:
        values = np.concatenate(sims_by_size[v])
        fraction_above[v] = float(np.mean(values > threshold))
        cdfs[v] = np.array([np.mean(values <= g) for g in cdf_grid])
    return {
        "fraction_above": fraction_above,
        "cdf_grid": cdf_grid,
        "cdfs": cdfs,
    }


@register_job_kind("fig2b")
def _execute_fig2b(job: EvalJob) -> dict[str, object]:
    params = job.extra_map
    return similarity_fractions(
        job.model,
        job.dataset,
        tuple(params["vector_sizes"]),
        job.num_samples,
        job.sample_seed,
        threshold=float(params.get("threshold", 0.9)),
    )
