"""Experiment drivers: one function per table/figure of the paper.

Each driver runs the algorithm on the synthetic VLMs, simulates the
resulting traces at paper-scale geometry where the figure reports
hardware quantities, and returns a structured result that
:mod:`repro.eval.reporting` renders in the paper's layout.

The sample-count defaults are sized for the benchmark harness; all
drivers accept ``num_samples`` for quicker smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.arch import ADAPTIV, CMC, FOCUS, METHOD_TO_ARCH, SYSTOLIC, ArchConfig
from repro.accel.area import area_breakdown, total_area_mm2
from repro.accel.scaling import PAPER_IMAGE_TOKENS, PAPER_TEXT_TOKENS, scale_to_paper
from repro.accel.simulator import SimResult, simulate_many
from repro.accel.systolic import tile_utilization
from repro.accel.trace import ModelTrace
from repro.baselines.gpu import JETSON_ORIN_NANO, simulate_gpu
from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.core.pipeline import FocusPlugin
from repro.eval.metrics import EvalResult
from repro.eval.runner import ModelCache, evaluate, evaluate_samples
from repro.model.plugins import InferencePlugin
from repro.model.zoo import IMAGE_MODELS, VIDEO_MODELS
from repro.quant.int8 import Int8ActivationPlugin, quantize_model
from repro.workloads.datasets import make_dataset

VIDEO_DATASETS = ("videomme", "mlvu", "mvbench")
IMAGE_DATASETS = ("vqav2", "mme", "mmbench")
TABLE2_METHODS = ("dense", "framefusion", "adaptiv", "cmc", "focus")


def _paper_scale_sim(
    result: EvalResult, arch: ArchConfig, target_tokens: int | None = None
) -> SimResult:
    """Simulate an evaluation's traces at paper-scale geometry."""
    hidden = ModelCache.get(result.model).config.hidden
    scaled = [
        scale_to_paper(trace, hidden, target_tokens)
        for trace in result.traces
    ]
    return simulate_many(scaled, arch)


# ---------------------------------------------------------------------------
# Table II — accuracy and computation sparsity
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    """Accuracy/sparsity grid over models x datasets x methods."""

    cells: dict[tuple[str, str, str], tuple[float, float]] = field(
        default_factory=dict
    )
    models: tuple[str, ...] = VIDEO_MODELS
    datasets: tuple[str, ...] = VIDEO_DATASETS
    methods: tuple[str, ...] = TABLE2_METHODS


def table2(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    methods: tuple[str, ...] = TABLE2_METHODS,
    num_samples: int = 8,
    seed: int = 0,
) -> Table2Result:
    """Reproduce Table II: accuracy and sparsity of all methods."""
    result = Table2Result(models=models, datasets=datasets, methods=methods)
    for model in models:
        for dataset in datasets:
            for method in methods:
                cell = evaluate(model, dataset, method, num_samples, seed)
                result.cells[(model, dataset, method)] = (
                    cell.accuracy, cell.sparsity
                )
    return result


# ---------------------------------------------------------------------------
# Table III — architecture configuration comparison
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    """One architecture's column of Table III."""

    name: str
    pe_array: str
    buffer_kb: float
    dram_bandwidth_gbs: float
    area_mm2: float
    on_chip_power_mw: float


def table3(num_samples: int = 2, seed: int = 0) -> list[Table3Row]:
    """Reproduce Table III: per-architecture config, area and power.

    Power is measured on the Llava-Video / VideoMME workload, as in the
    paper.
    """
    rows = []
    arch_method = (
        (SYSTOLIC, "dense"),
        (ADAPTIV, "adaptiv"),
        (CMC, "cmc"),
        (FOCUS, "focus"),
    )
    for arch, method in arch_method:
        cell = evaluate("llava-video", "videomme", method, num_samples, seed)
        sim = _paper_scale_sim(cell, arch)
        rows.append(Table3Row(
            name=arch.name,
            pe_array=f"{arch.pe_rows}x{arch.pe_cols}",
            buffer_kb=arch.buffer_kb,
            dram_bandwidth_gbs=arch.dram_bandwidth_gbs,
            area_mm2=total_area_mm2(arch),
            on_chip_power_mw=sim.on_chip_power_w(arch.frequency_hz) * 1e3,
        ))
    return rows


# ---------------------------------------------------------------------------
# Table IV — INT8 quantization synergy
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    """One (model, dataset) row of the INT8 study."""

    model: str
    dataset: str
    dense_acc: float
    dense_degrade: float
    ours_acc: float
    ours_degrade: float
    ours_sparsity: float
    sparsity_degrade: float


def table4(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    num_samples: int = 8,
    seed: int = 0,
) -> list[Table4Row]:
    """Reproduce Table IV: INT8 impact on accuracy and sparsity."""
    rows = []
    for model_name in models:
        model = ModelCache.get(model_name)
        model_int8 = quantize_model(model)
        for dataset in datasets:
            samples = make_dataset(
                dataset, model.config.layout, num_samples, seed=seed
            )
            dense16 = evaluate_samples(model, samples, "dense")
            focus16 = evaluate_samples(model, samples, "focus")

            dense8 = EvalResult(model=model_name, dataset=dataset,
                                method="dense-int8")
            focus8 = EvalResult(model=model_name, dataset=dataset,
                                method="focus-int8")
            for sample in samples:
                outcome = model_int8.forward(
                    sample, Int8ActivationPlugin()
                )
                dense8.correct.append(outcome.correct)
                dense8.sparsities.append(0.0)
                plugin = Int8ActivationPlugin(
                    FocusPlugin(model_int8, DEFAULT_CONFIG)
                )
                outcome = model_int8.forward(sample, plugin)
                focus8.correct.append(outcome.correct)
                dense_ops = model.config.dense_macs(
                    sample.num_visual_tokens, sample.num_text_tokens
                )
                focus8.sparsities.append(
                    1.0 - outcome.trace.total_macs / dense_ops
                )
            rows.append(Table4Row(
                model=model_name,
                dataset=dataset,
                dense_acc=dense8.accuracy,
                dense_degrade=dense16.accuracy - dense8.accuracy,
                ours_acc=focus8.accuracy,
                ours_degrade=focus16.accuracy - focus8.accuracy,
                ours_sparsity=focus8.sparsity,
                sparsity_degrade=focus16.sparsity - focus8.sparsity,
            ))
    return rows


# ---------------------------------------------------------------------------
# Table V — image VLMs
# ---------------------------------------------------------------------------

@dataclass
class Table5Row:
    """One (model, dataset) block of the image-VLM study."""

    model: str
    dataset: str
    dense_acc: float
    adaptiv_acc: float
    adaptiv_speedup: float
    ours_acc: float
    ours_speedup: float


def table5(
    models: tuple[str, ...] = IMAGE_MODELS,
    datasets: tuple[str, ...] = IMAGE_DATASETS,
    num_samples: int = 8,
    seed: int = 0,
) -> list[Table5Row]:
    """Reproduce Table V: single-image VLMs (one-frame videos)."""
    target_tokens = PAPER_IMAGE_TOKENS + PAPER_TEXT_TOKENS
    rows = []
    for model in models:
        for dataset in datasets:
            dense = evaluate(model, dataset, "dense", num_samples, seed)
            ada = evaluate(model, dataset, "adaptiv", num_samples, seed)
            ours = evaluate(model, dataset, "focus", num_samples, seed)
            sim_dense = _paper_scale_sim(dense, SYSTOLIC, target_tokens)
            sim_ada = _paper_scale_sim(ada, ADAPTIV, target_tokens)
            sim_ours = _paper_scale_sim(ours, FOCUS, target_tokens)
            rows.append(Table5Row(
                model=model,
                dataset=dataset,
                dense_acc=dense.accuracy,
                adaptiv_acc=ada.accuracy,
                adaptiv_speedup=sim_dense.cycles / max(sim_ada.cycles, 1),
                ours_acc=ours.accuracy,
                ours_speedup=sim_dense.cycles / max(sim_ours.cycles, 1),
            ))
    return rows


# ---------------------------------------------------------------------------
# Fig. 2(b) — cosine-similarity CDF vs vector size
# ---------------------------------------------------------------------------

class _ActivationCapture(InferencePlugin):
    """Capture per-layer FC inputs (the tensors SIC operates on)."""

    def __init__(self) -> None:
        self.captured: list[np.ndarray] = []
        self.positions: np.ndarray | None = None
        self.is_text: np.ndarray | None = None

    def gemm_input(self, layer_index, site, x, state, producer, n):
        if site == "fc1":
            self.captured.append(np.array(x))
            self.positions = np.array(state.positions)
            self.is_text = np.array(state.is_text)
        return x, None


@dataclass
class Fig2bResult:
    """Similarity distribution per vector size."""

    vector_sizes: tuple[int, ...]
    fraction_above: dict[int, float] = field(default_factory=dict)
    cdf_grid: np.ndarray = field(default_factory=lambda: np.linspace(0, 1, 101))
    cdfs: dict[int, np.ndarray] = field(default_factory=dict)
    threshold: float = 0.9


def fig2b(
    model_name: str = "llava-video",
    dataset: str = "mlvu",
    vector_sizes: tuple[int, ...] = (8, 16, 32, 64, 96, 192),
    num_samples: int = 3,
    seed: int = 0,
) -> Fig2bResult:
    """Reproduce Fig. 2(b): finer vectors expose more redundancy.

    For every vector size we compute cosine similarities between each
    token's sub-vectors and the co-located sub-vectors of the previous
    frame (the redundancy the SIC can harvest), over all layers'
    hidden states on the MLVU-like dataset.
    """
    model = ModelCache.get(model_name)
    samples = make_dataset(dataset, model.config.layout, num_samples, seed)
    result = Fig2bResult(vector_sizes=vector_sizes)
    sims_by_size: dict[int, list[np.ndarray]] = {v: [] for v in vector_sizes}
    for sample in samples:
        capture = _ActivationCapture()
        model.forward(sample, capture)
        frames, height, width = sample.grid
        for hidden in capture.captured:
            image = hidden[: sample.num_visual_tokens]
            per_frame = image.reshape(frames, height * width, -1)
            current = per_frame[1:]
            previous = per_frame[:-1]
            for v in vector_sizes:
                blocks = -(-image.shape[1] // v)
                pad = blocks * v - image.shape[1]
                cur = np.pad(current, ((0, 0), (0, 0), (0, pad)))
                prev = np.pad(previous, ((0, 0), (0, 0), (0, pad)))
                cur = cur.reshape(*cur.shape[:2], blocks, v)
                prev = prev.reshape(*prev.shape[:2], blocks, v)
                dots = np.einsum("fpbv,fpbv->fpb", cur, prev)
                denom = (
                    np.linalg.norm(cur, axis=-1)
                    * np.linalg.norm(prev, axis=-1)
                )
                sims = dots / np.maximum(denom, 1e-8)
                sims_by_size[v].append(sims.ravel())
    for v in vector_sizes:
        values = np.concatenate(sims_by_size[v])
        result.fraction_above[v] = float(
            np.mean(values > result.threshold)
        )
        result.cdfs[v] = np.array([
            np.mean(values <= g) for g in result.cdf_grid
        ])
    return result


# ---------------------------------------------------------------------------
# Fig. 2(c) — sparsity / accuracy comparison incl. token-wise ablation
# ---------------------------------------------------------------------------

@dataclass
class Fig2cBar:
    method: str
    sparsity: float
    accuracy: float


def fig2c(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 8,
    seed: int = 0,
) -> list[Fig2cBar]:
    """Reproduce Fig. 2(c): vector-wise beats token-wise and baselines."""
    bars = []
    for method in ("dense", "cmc", "adaptiv", "focus-token", "focus"):
        cell = evaluate(model, dataset, method, num_samples, seed)
        bars.append(Fig2cBar(
            method=method, sparsity=cell.sparsity, accuracy=cell.accuracy
        ))
    return bars


# ---------------------------------------------------------------------------
# Fig. 9 — speedup, energy, area/power breakdown
# ---------------------------------------------------------------------------

@dataclass
class Fig9Cell:
    """One (model, dataset) group of bars."""

    model: str
    dataset: str
    speedup: dict[str, float] = field(default_factory=dict)
    energy: dict[str, dict[str, float]] = field(default_factory=dict)
    """Per design: energy breakdown fractions of the SA total."""


@dataclass
class Fig9Result:
    cells: list[Fig9Cell] = field(default_factory=list)
    geomean_speedup: dict[str, float] = field(default_factory=dict)
    geomean_energy: dict[str, float] = field(default_factory=dict)
    area_breakdown_mm2: dict[str, float] = field(default_factory=dict)
    power_breakdown_w: dict[str, float] = field(default_factory=dict)

    designs: tuple[str, ...] = (
        "systolic-array", "gpu", "adaptiv", "cmc", "gpu+ff", "focus",
    )


def fig9(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    num_samples: int = 4,
    seed: int = 0,
) -> Fig9Result:
    """Reproduce Fig. 9: speedup and energy vs all baselines."""
    result = Fig9Result()
    speedups: dict[str, list[float]] = {d: [] for d in result.designs}
    energies: dict[str, list[float]] = {d: [] for d in result.designs}
    for model in models:
        for dataset in datasets:
            dense = evaluate(model, dataset, "dense", num_samples, seed)
            ff = evaluate(model, dataset, "framefusion", num_samples, seed)
            ada = evaluate(model, dataset, "adaptiv", num_samples, seed)
            cmc = evaluate(model, dataset, "cmc", num_samples, seed)
            ours = evaluate(model, dataset, "focus", num_samples, seed)

            sims = {
                "systolic-array": _paper_scale_sim(dense, SYSTOLIC),
                "adaptiv": _paper_scale_sim(ada, ADAPTIV),
                "cmc": _paper_scale_sim(cmc, CMC),
                "focus": _paper_scale_sim(ours, FOCUS),
            }
            hidden = ModelCache.get(model).config.hidden
            gpu_dense = [
                simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO)
                for t in dense.traces
            ]
            gpu_ff = [
                simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO,
                             sparse=True)
                for t in ff.traces
            ]

            sa_latency = sims["systolic-array"].latency_s()
            sa_energy = sims["systolic-array"].energy.total_j
            cell = Fig9Cell(model=model, dataset=dataset)
            latencies = {
                "systolic-array": sa_latency,
                "gpu": sum(g.latency_s for g in gpu_dense),
                "adaptiv": sims["adaptiv"].latency_s(),
                "cmc": sims["cmc"].latency_s(),
                "gpu+ff": sum(g.latency_s for g in gpu_ff),
                "focus": sims["focus"].latency_s(),
            }
            energy_totals = {
                "systolic-array": sa_energy,
                "gpu": sum(g.energy_j for g in gpu_dense),
                "adaptiv": sims["adaptiv"].energy.total_j,
                "cmc": sims["cmc"].energy.total_j,
                "gpu+ff": sum(g.energy_j for g in gpu_ff),
                "focus": sims["focus"].energy.total_j,
            }
            for design in result.designs:
                cell.speedup[design] = sa_latency / latencies[design]
                speedups[design].append(cell.speedup[design])
                energies[design].append(energy_totals[design] / sa_energy)
                if design in sims:
                    breakdown = sims[design].energy
                    cell.energy[design] = {
                        "core": breakdown.core_j / sa_energy,
                        "buffer": breakdown.buffer_j / sa_energy,
                        "dram": breakdown.dram_j / sa_energy,
                    }
                else:
                    cell.energy[design] = {
                        "core": energy_totals[design] / sa_energy,
                        "buffer": 0.0,
                        "dram": 0.0,
                    }
            result.cells.append(cell)
    for design in result.designs:
        result.geomean_speedup[design] = float(
            np.exp(np.mean(np.log(speedups[design])))
        )
        result.geomean_energy[design] = float(
            np.exp(np.mean(np.log(energies[design])))
        )

    result.area_breakdown_mm2 = area_breakdown(FOCUS)
    focus_cell = evaluate("llava-video", "videomme", "focus",
                          num_samples, seed)
    sim = _paper_scale_sim(focus_cell, FOCUS)
    latency = sim.latency_s()
    result.power_breakdown_w = {
        "core": sim.energy.core_j / latency,
        "buffer": sim.energy.buffer_j / latency,
        "dram": sim.energy.dram_j / latency,
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 10 — design space exploration
# ---------------------------------------------------------------------------

@dataclass
class SweepPoint:
    """One configuration of a DSE sweep."""

    label: str
    latency: float
    accuracy: float
    extra: dict[str, float] = field(default_factory=dict)


def _focus_sweep_point(
    config: FocusConfig,
    model_name: str,
    dataset: str,
    num_samples: int,
    seed: int,
    arch: ArchConfig = FOCUS,
) -> tuple[float, float, EvalResult]:
    """Latency (paper-scale cycles) and accuracy of one Focus config."""
    cell = evaluate(model_name, dataset, "focus", num_samples, seed,
                    config=config)
    sim = _paper_scale_sim(cell, arch)
    return float(sim.cycles), cell.accuracy, cell


def fig10a(
    m_tiles: tuple[int, ...] = (0, 256, 128, 64, 32),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[SweepPoint]:
    """Fig. 10(a): GEMM m-tile size vs latency and buffer demand.

    ``0`` denotes the full input height (no tiling).  Smaller tiles
    truncate comparison windows at tile boundaries, hurting
    compression and therefore latency; larger tiles need more output
    buffer.
    """
    from repro.accel.buffers import output_buffer_kb_for_tile

    points = []
    baseline = None
    for m_tile in m_tiles:
        effective = m_tile if m_tile > 0 else 1 << 20
        config = DEFAULT_CONFIG.with_overrides(m_tile=effective)
        latency, accuracy, _ = _focus_sweep_point(
            config, model, dataset, num_samples, seed
        )
        baseline = baseline or latency
        label = "full" if m_tile == 0 else str(m_tile)
        buffer_kb = output_buffer_kb_for_tile(
            m_tile if m_tile > 0 else 1024
        )
        points.append(SweepPoint(
            label=label,
            latency=latency / baseline,
            accuracy=accuracy,
            extra={"output_buffer_kb": buffer_kb},
        ))
    return points


def fig10b(
    vector_sizes: tuple[int, ...] = (8, 16, 32, 64, 96),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[SweepPoint]:
    """Fig. 10(b): vector size vs array MACs and accumulator ops."""
    points = []
    for v in vector_sizes:
        config = DEFAULT_CONFIG.with_overrides(vector_size=v, n_tile=v)
        cell = evaluate(model, dataset, "focus", num_samples, seed,
                        config=config)
        merged = cell.merged_trace
        points.append(SweepPoint(
            label=str(v),
            latency=0.0,
            accuracy=cell.accuracy,
            extra={
                "array_gops": merged.total_macs / 1e9,
                "accumulator_gops": merged.total_scatter_ops / 1e9,
            },
        ))
    return points


def fig10c(
    blocks: tuple[tuple[int, int, int], ...] = (
        (1, 1, 1), (1, 2, 2), (1, 3, 3),
        (2, 1, 1), (2, 2, 2), (2, 3, 3),
        (3, 1, 1), (3, 2, 2), (3, 3, 3),
    ),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[SweepPoint]:
    """Fig. 10(c): SIC block size (f, h, w) vs latency."""
    points = []
    baseline = None
    for bf, bh, bw in blocks:
        config = DEFAULT_CONFIG.with_overrides(
            block_frames=bf, block_height=bh, block_width=bw
        )
        latency, accuracy, _ = _focus_sweep_point(
            config, model, dataset, num_samples, seed
        )
        if (bf, bh, bw) == (1, 1, 1):
            baseline = latency
        baseline = baseline or latency
        points.append(SweepPoint(
            label=f"{bf}{bh}{bw}",
            latency=latency,
            accuracy=accuracy,
        ))
    # Normalize to the default 2x2x2 block, as the paper's axis does.
    reference = next(
        (p.latency for p in points if p.label == "222"), points[0].latency
    )
    for point in points:
        point.latency /= reference
    return points


def fig10d(
    accumulators: tuple[int, ...] = (16, 32, 64, 96, 128, 160),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[SweepPoint]:
    """Fig. 10(d): scatter accumulator count vs latency."""
    cell = evaluate(model, dataset, "focus", num_samples, seed)
    hidden = ModelCache.get(model).config.hidden
    scaled = [scale_to_paper(t, hidden) for t in cell.traces]
    points = []
    best = None
    for count in accumulators:
        arch = ArchConfig(
            name="focus",
            extra_buffer_kb=16.0,
            compression="focus",
            has_sec=True,
            has_sic=True,
            scatter_accumulators=count,
        )
        sim = simulate_many(scaled, arch)
        if best is None or sim.cycles < best:
            best = sim.cycles
        points.append(SweepPoint(
            label=str(count), latency=float(sim.cycles),
            accuracy=cell.accuracy,
        ))
    for point in points:
        point.latency /= best
    return points


# ---------------------------------------------------------------------------
# Fig. 11 — ablation study
# ---------------------------------------------------------------------------

@dataclass
class AblationBar:
    label: str
    speedup: float


def fig11(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[AblationBar]:
    """Reproduce Fig. 11: SEC-only and SEC+SIC vs SA and CMC."""
    dense = evaluate(model, dataset, "dense", num_samples, seed)
    cmc = evaluate(model, dataset, "cmc", num_samples, seed)
    sec = evaluate(model, dataset, "focus-sec", num_samples, seed)
    ours = evaluate(model, dataset, "focus", num_samples, seed)
    sa = _paper_scale_sim(dense, SYSTOLIC)
    bars = [
        AblationBar("systolic-array", 1.0),
        AblationBar(
            "cmc", sa.latency_s() / _paper_scale_sim(cmc, CMC).latency_s()
        ),
        AblationBar(
            "ours-sec",
            sa.latency_s() / _paper_scale_sim(sec, FOCUS).latency_s(),
        ),
        AblationBar(
            "ours",
            sa.latency_s() / _paper_scale_sim(ours, FOCUS).latency_s(),
        ),
    ]
    return bars


# ---------------------------------------------------------------------------
# Fig. 12 — memory access analysis
# ---------------------------------------------------------------------------

@dataclass
class Fig12Row:
    model: str
    dram_ratio: dict[str, float] = field(default_factory=dict)
    activation_ratio: dict[str, float] = field(default_factory=dict)


def fig12(
    models: tuple[str, ...] = VIDEO_MODELS,
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
) -> list[Fig12Row]:
    """Reproduce Fig. 12: DRAM access and activation size ratios."""
    rows = []
    for model in models:
        row = Fig12Row(model=model)
        dense = evaluate(model, dataset, "dense", num_samples, seed)
        sa = _paper_scale_sim(dense, SYSTOLIC)
        dense_inputs = sum(
            g.m * g.k * 2 for t in dense.traces for g in t.gemms
            if g.name in ("qkv", "fc1", "o_proj")
        )
        for method, arch in (
            ("dense", SYSTOLIC), ("adaptiv", ADAPTIV),
            ("cmc", CMC), ("focus", FOCUS),
        ):
            cell = evaluate(model, dataset, method, num_samples, seed)
            sim = _paper_scale_sim(cell, arch)
            row.dram_ratio[method] = (
                sim.activation_dram_bytes / sa.activation_dram_bytes
            )
            method_inputs = sum(
                g.input_bytes for t in cell.traces for g in t.gemms
                if g.name in ("qkv", "fc1", "o_proj")
            )
            row.activation_ratio[method] = method_inputs / dense_inputs
        rows.append(row)
    mean = Fig12Row(model="mean")
    for method in rows[0].dram_ratio:
        mean.dram_ratio[method] = float(np.mean(
            [r.dram_ratio[method] for r in rows]
        ))
        mean.activation_ratio[method] = float(np.mean(
            [r.activation_ratio[method] for r in rows]
        ))
    rows.append(mean)
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — concentrated tile-length distribution and utilization
# ---------------------------------------------------------------------------

@dataclass
class Fig13Result:
    tile_lengths: np.ndarray
    histogram: np.ndarray
    bin_edges: np.ndarray
    utilization_curve: np.ndarray
    average_utilization: float


def fig13(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    bins: int = 24,
    paper_tile_rows: int = 1024,
) -> Fig13Result:
    """Reproduce Fig. 13: tile-length histogram and array utilization.

    Tile lengths are normalized to the paper's 1024-row tiles: each
    gather's measured unique-vector *fraction* is replayed at the
    Table I tile height, so the histogram spans the same 0..1024 axis
    the paper plots.
    """
    cell = evaluate(model, dataset, "focus", num_samples, seed)
    merged = cell.merged_trace
    unique = np.array(merged.tile_lengths, dtype=np.float64)
    rows = np.array(merged.tile_rows, dtype=np.float64)
    lengths = np.round(
        unique / np.maximum(rows, 1.0) * paper_tile_rows
    ).astype(np.int64)
    histogram, edges = np.histogram(lengths, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    curve = np.array([
        tile_utilization(int(c), FOCUS.pe_rows, FOCUS.pe_cols)
        for c in centers
    ])
    weighted = float(np.sum(
        lengths / (lengths + FOCUS.pe_rows + FOCUS.pe_cols - 1) * lengths
    ) / max(np.sum(lengths), 1))
    return Fig13Result(
        tile_lengths=lengths,
        histogram=histogram,
        bin_edges=edges,
        utilization_curve=curve,
        average_utilization=weighted,
    )
