"""Experiment drivers: one declarative plan per table/figure.

Each experiment declares an :class:`~repro.engine.registry.
ExperimentPlan` — the :class:`~repro.engine.jobs.EvalJob` batch it
needs plus a pure ``assemble(results)`` step that simulates traces at
paper-scale geometry and lays the numbers out the way the paper does.
The engine collects jobs from any set of experiments, dedupes them
(Table II and Fig. 9 share every video cell, for instance), serves
repeats from the result cache, and can fan the remainder out over a
worker pool.

The classic callable drivers (``table2(...)``, ``fig9(...)``) survive
as thin wrappers that run their plan on the process-wide default
engine, so existing callers keep working — they just stop recomputing
evaluations the session has already paid for.

The sample-count defaults are sized for the benchmark harness; all
drivers accept ``num_samples`` for quicker smoke runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.accel.arch import ADAPTIV, CMC, FOCUS, SYSTOLIC, ArchConfig
from repro.accel.area import area_breakdown, total_area_mm2
from repro.accel.scaling import PAPER_IMAGE_TOKENS, PAPER_TEXT_TOKENS, scale_to_paper
from repro.accel.simulator import SimResult, simulate_many
from repro.accel.systolic import tile_utilization
from repro.baselines.gpu import JETSON_ORIN_NANO, simulate_gpu
from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.engine.jobs import EvalJob
from repro.engine.registry import ExperimentPlan, register, run_plan
from repro.engine.scheduler import ExperimentEngine
from repro.eval.metrics import EvalResult
from repro.model.zoo import IMAGE_MODELS, VIDEO_MODELS, get_model_config

VIDEO_DATASETS = ("videomme", "mlvu", "mvbench")
IMAGE_DATASETS = ("vqav2", "mme", "mmbench")
TABLE2_METHODS = ("dense", "framefusion", "adaptiv", "cmc", "focus")

Results = Mapping[EvalJob, Any]


def _base_config(
    matcher: str | None = None,
    forward_batch: int | None = None,
    **overrides: object,
) -> FocusConfig:
    """Per-experiment :class:`FocusConfig` derived from the default.

    ``matcher`` is the CLI-level A/B escape hatch (``--matcher``):
    ``None`` keeps the config default (wavefront), ``"reference"``
    re-runs the experiment on the retained serial matcher.  Every plan
    factory accepts it so one flag switches an entire schedule.
    ``forward_batch`` is the same escape hatch for ``--forward-batch``:
    ``None`` keeps the config default (serial, batch size 1); larger
    values stack same-shape samples into one tensorized pass.
    """
    if matcher is not None:
        overrides["matcher"] = matcher
    if forward_batch is not None:
        overrides["forward_batch"] = forward_batch
    if not overrides:
        return DEFAULT_CONFIG
    return DEFAULT_CONFIG.with_overrides(**overrides)


def _paper_scale_sim(
    result: EvalResult,
    arch: ArchConfig,
    target_tokens: int | None = None,
    engine: ExperimentEngine | None = None,
) -> SimResult:
    """Simulate an evaluation's traces at paper-scale geometry.

    With an engine, the per-sample traces run as sharded ``sim`` jobs
    on its worker pool (bit-identical to the serial fold); without one
    they fold serially in-process.
    """
    hidden = get_model_config(result.model).hidden
    scaled = [
        scale_to_paper(trace, hidden, target_tokens)
        for trace in result.traces
    ]
    return simulate_many(scaled, arch, engine=engine)


def _engine_driver(plan_fn: Callable[..., ExperimentPlan]) -> Callable:
    """Wrap a plan factory as a classic callable driver.

    The wrapper accepts the factory's signature plus an optional
    ``engine`` keyword; without one it runs on the process-wide
    default engine (serial, shared in-memory cache).
    """

    @functools.wraps(plan_fn)
    def driver(*args, engine: ExperimentEngine | None = None, **kwargs):
        return run_plan(plan_fn(*args, **kwargs), engine)

    driver.__name__ = plan_fn.__name__.removeprefix("plan_")
    driver.__qualname__ = driver.__name__
    return driver


# ---------------------------------------------------------------------------
# Table II — accuracy and computation sparsity
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    """Accuracy/sparsity grid over models x datasets x methods."""

    cells: dict[tuple[str, str, str], tuple[float, float]] = field(
        default_factory=dict
    )
    models: tuple[str, ...] = VIDEO_MODELS
    datasets: tuple[str, ...] = VIDEO_DATASETS
    methods: tuple[str, ...] = TABLE2_METHODS


@register("table2", "accuracy and sparsity of all methods (Table II)")
def plan_table2(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    methods: tuple[str, ...] = TABLE2_METHODS,
    num_samples: int = 8,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Table II: accuracy and sparsity of all methods."""
    jobs = tuple(
        EvalJob(model=model, dataset=dataset, method=method,
                num_samples=num_samples, seed=seed,
                config=_base_config(matcher, forward_batch))
        for model in models
        for dataset in datasets
        for method in methods
    )

    def assemble(results: Results) -> Table2Result:
        result = Table2Result(
            models=tuple(models), datasets=tuple(datasets),
            methods=tuple(methods),
        )
        for job in jobs:
            cell = results[job]
            result.cells[(job.model, job.dataset, job.method)] = (
                cell.accuracy, cell.sparsity
            )
        return result

    return ExperimentPlan(jobs, assemble)


# ---------------------------------------------------------------------------
# Table III — architecture configuration comparison
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    """One architecture's column of Table III."""

    name: str
    pe_array: str
    buffer_kb: float
    dram_bandwidth_gbs: float
    area_mm2: float
    on_chip_power_mw: float


_TABLE3_ARCHS = (
    (SYSTOLIC, "dense"),
    (ADAPTIV, "adaptiv"),
    (CMC, "cmc"),
    (FOCUS, "focus"),
)


@register("table3", "architecture config comparison (Table III)")
def plan_table3(
    num_samples: int = 2, seed: int = 0, matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Table III: per-architecture config, area and power.

    Power is measured on the Llava-Video / VideoMME workload, as in the
    paper.
    """
    jobs = {
        method: EvalJob(model="llava-video", dataset="videomme",
                        method=method, num_samples=num_samples, seed=seed,
                        config=_base_config(matcher, forward_batch))
        for _, method in _TABLE3_ARCHS
    }

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[Table3Row]:
        rows = []
        for arch, method in _TABLE3_ARCHS:
            cell = results[jobs[method]]
            sim = _paper_scale_sim(cell, arch, engine=engine)
            rows.append(Table3Row(
                name=arch.name,
                pe_array=f"{arch.pe_rows}x{arch.pe_cols}",
                buffer_kb=arch.buffer_kb,
                dram_bandwidth_gbs=arch.dram_bandwidth_gbs,
                area_mm2=total_area_mm2(arch),
                on_chip_power_mw=sim.on_chip_power_w(arch.frequency_hz) * 1e3,
            ))
        return rows

    return ExperimentPlan(tuple(jobs.values()), assemble)


# ---------------------------------------------------------------------------
# Table IV — INT8 quantization synergy
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    """One (model, dataset) row of the INT8 study."""

    model: str
    dataset: str
    dense_acc: float
    dense_degrade: float
    ours_acc: float
    ours_degrade: float
    ours_sparsity: float
    sparsity_degrade: float


@register("table4", "INT8 quantization synergy (Table IV)")
def plan_table4(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    num_samples: int = 8,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Table IV: INT8 impact on accuracy and sparsity.

    The INT8 arms are ordinary jobs with ``quantized=True`` — the
    runner swaps in the INT8-weight model and wraps each method plugin
    in activation rounding, so they cache and parallelize like every
    other cell.
    """
    arms = (("dense", False), ("focus", False),
            ("dense", True), ("focus", True))
    jobs = {
        (model, dataset, method, quant): EvalJob(
            model=model, dataset=dataset, method=method,
            num_samples=num_samples, seed=seed, quantized=quant,
            config=_base_config(matcher, forward_batch),
        )
        for model in models
        for dataset in datasets
        for method, quant in arms
    }

    def assemble(results: Results) -> list[Table4Row]:
        rows = []
        for model in models:
            for dataset in datasets:
                dense16 = results[jobs[(model, dataset, "dense", False)]]
                focus16 = results[jobs[(model, dataset, "focus", False)]]
                dense8 = results[jobs[(model, dataset, "dense", True)]]
                focus8 = results[jobs[(model, dataset, "focus", True)]]
                rows.append(Table4Row(
                    model=model,
                    dataset=dataset,
                    dense_acc=dense8.accuracy,
                    dense_degrade=dense16.accuracy - dense8.accuracy,
                    ours_acc=focus8.accuracy,
                    ours_degrade=focus16.accuracy - focus8.accuracy,
                    ours_sparsity=focus8.sparsity,
                    sparsity_degrade=focus16.sparsity - focus8.sparsity,
                ))
        return rows

    return ExperimentPlan(tuple(jobs.values()), assemble)


# ---------------------------------------------------------------------------
# Table V — image VLMs
# ---------------------------------------------------------------------------

@dataclass
class Table5Row:
    """One (model, dataset) block of the image-VLM study."""

    model: str
    dataset: str
    dense_acc: float
    adaptiv_acc: float
    adaptiv_speedup: float
    ours_acc: float
    ours_speedup: float


@register("table5", "image-VLM generalization (Table V)")
def plan_table5(
    models: tuple[str, ...] = IMAGE_MODELS,
    datasets: tuple[str, ...] = IMAGE_DATASETS,
    num_samples: int = 8,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Table V: single-image VLMs (one-frame videos)."""
    target_tokens = PAPER_IMAGE_TOKENS + PAPER_TEXT_TOKENS
    methods = ("dense", "adaptiv", "focus")
    jobs = {
        (model, dataset, method): EvalJob(
            model=model, dataset=dataset, method=method,
            num_samples=num_samples, seed=seed,
            config=_base_config(matcher, forward_batch),
        )
        for model in models
        for dataset in datasets
        for method in methods
    }

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[Table5Row]:
        rows = []
        for model in models:
            for dataset in datasets:
                dense = results[jobs[(model, dataset, "dense")]]
                ada = results[jobs[(model, dataset, "adaptiv")]]
                ours = results[jobs[(model, dataset, "focus")]]
                sim_dense = _paper_scale_sim(
                    dense, SYSTOLIC, target_tokens, engine=engine
                )
                sim_ada = _paper_scale_sim(
                    ada, ADAPTIV, target_tokens, engine=engine
                )
                sim_ours = _paper_scale_sim(
                    ours, FOCUS, target_tokens, engine=engine
                )
                rows.append(Table5Row(
                    model=model,
                    dataset=dataset,
                    dense_acc=dense.accuracy,
                    adaptiv_acc=ada.accuracy,
                    adaptiv_speedup=sim_dense.cycles / max(sim_ada.cycles, 1),
                    ours_acc=ours.accuracy,
                    ours_speedup=sim_dense.cycles / max(sim_ours.cycles, 1),
                ))
        return rows

    return ExperimentPlan(tuple(jobs.values()), assemble)


# ---------------------------------------------------------------------------
# Fig. 2(b) — cosine-similarity CDF vs vector size
# ---------------------------------------------------------------------------

@dataclass
class Fig2bResult:
    """Similarity distribution per vector size."""

    vector_sizes: tuple[int, ...]
    fraction_above: dict[int, float] = field(default_factory=dict)
    cdf_grid: np.ndarray = field(default_factory=lambda: np.linspace(0, 1, 101))
    cdfs: dict[int, np.ndarray] = field(default_factory=dict)
    threshold: float = 0.9


@register("fig2b", "similarity CDF vs vector size (Fig. 2b)")
def plan_fig2b(
    model_name: str = "llava-video",
    dataset: str = "mlvu",
    vector_sizes: tuple[int, ...] = (8, 16, 32, 64, 96, 192),
    num_samples: int = 3,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 2(b): finer vectors expose more redundancy.

    The capture-and-measure pass is a single ``fig2b``-kind job (see
    :mod:`repro.eval.similarity_stats`), so the measurement is cached
    like any evaluation cell.
    """
    threshold = 0.9
    job = EvalJob(
        model=model_name, dataset=dataset, method="similarity-capture",
        num_samples=num_samples, seed=seed, kind="fig2b",
        config=_base_config(matcher, forward_batch),
        extra=(("vector_sizes", tuple(vector_sizes)),
               ("threshold", threshold)),
        provider="repro.eval.similarity_stats",
    )

    def assemble(results: Results) -> Fig2bResult:
        payload = results[job]
        return Fig2bResult(
            vector_sizes=tuple(vector_sizes),
            fraction_above=dict(payload["fraction_above"]),
            cdf_grid=np.asarray(payload["cdf_grid"]),
            cdfs=dict(payload["cdfs"]),
            threshold=threshold,
        )

    return ExperimentPlan((job,), assemble)


# ---------------------------------------------------------------------------
# Fig. 2(c) — sparsity / accuracy comparison incl. token-wise ablation
# ---------------------------------------------------------------------------

@dataclass
class Fig2cBar:
    method: str
    sparsity: float
    accuracy: float


@register("fig2c", "sparsity/accuracy bars (Fig. 2c)")
def plan_fig2c(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 8,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 2(c): vector-wise beats token-wise and baselines."""
    methods = ("dense", "cmc", "adaptiv", "focus-token", "focus")
    jobs = tuple(
        EvalJob(model=model, dataset=dataset, method=method,
                num_samples=num_samples, seed=seed,
                config=_base_config(matcher, forward_batch))
        for method in methods
    )

    def assemble(results: Results) -> list[Fig2cBar]:
        return [
            Fig2cBar(
                method=job.method,
                sparsity=results[job].sparsity,
                accuracy=results[job].accuracy,
            )
            for job in jobs
        ]

    return ExperimentPlan(jobs, assemble)


# ---------------------------------------------------------------------------
# Fig. 9 — speedup, energy, area/power breakdown
# ---------------------------------------------------------------------------

@dataclass
class Fig9Cell:
    """One (model, dataset) group of bars."""

    model: str
    dataset: str
    speedup: dict[str, float] = field(default_factory=dict)
    energy: dict[str, dict[str, float]] = field(default_factory=dict)
    """Per design: energy breakdown fractions of the SA total."""


@dataclass
class Fig9Result:
    cells: list[Fig9Cell] = field(default_factory=list)
    geomean_speedup: dict[str, float] = field(default_factory=dict)
    geomean_energy: dict[str, float] = field(default_factory=dict)
    area_breakdown_mm2: dict[str, float] = field(default_factory=dict)
    power_breakdown_w: dict[str, float] = field(default_factory=dict)

    designs: tuple[str, ...] = (
        "systolic-array", "gpu", "adaptiv", "cmc", "gpu+ff", "focus",
    )


@register("fig9", "speedup + energy vs baselines (Fig. 9)")
def plan_fig9(
    models: tuple[str, ...] = VIDEO_MODELS,
    datasets: tuple[str, ...] = VIDEO_DATASETS,
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 9: speedup and energy vs all baselines."""
    methods = ("dense", "framefusion", "adaptiv", "cmc", "focus")
    jobs = {
        (model, dataset, method): EvalJob(
            model=model, dataset=dataset, method=method,
            num_samples=num_samples, seed=seed,
            config=_base_config(matcher, forward_batch),
        )
        for model in models
        for dataset in datasets
        for method in methods
    }
    # The power-breakdown workload; usually a duplicate of a grid job,
    # which the engine's dedupe collapses for free.
    power_job = EvalJob(model="llava-video", dataset="videomme",
                        method="focus", num_samples=num_samples, seed=seed,
                        config=_base_config(matcher, forward_batch))

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> Fig9Result:
        result = Fig9Result()
        speedups: dict[str, list[float]] = {d: [] for d in result.designs}
        energies: dict[str, list[float]] = {d: [] for d in result.designs}
        for model in models:
            for dataset in datasets:
                dense = results[jobs[(model, dataset, "dense")]]
                ff = results[jobs[(model, dataset, "framefusion")]]
                ada = results[jobs[(model, dataset, "adaptiv")]]
                cmc = results[jobs[(model, dataset, "cmc")]]
                ours = results[jobs[(model, dataset, "focus")]]

                sims = {
                    "systolic-array": _paper_scale_sim(
                        dense, SYSTOLIC, engine=engine
                    ),
                    "adaptiv": _paper_scale_sim(ada, ADAPTIV, engine=engine),
                    "cmc": _paper_scale_sim(cmc, CMC, engine=engine),
                    "focus": _paper_scale_sim(ours, FOCUS, engine=engine),
                }
                hidden = get_model_config(model).hidden
                gpu_dense = [
                    simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO)
                    for t in dense.traces
                ]
                gpu_ff = [
                    simulate_gpu(scale_to_paper(t, hidden), JETSON_ORIN_NANO,
                                 sparse=True)
                    for t in ff.traces
                ]

                sa_latency = sims["systolic-array"].latency_s()
                sa_energy = sims["systolic-array"].energy.total_j
                cell = Fig9Cell(model=model, dataset=dataset)
                latencies = {
                    "systolic-array": sa_latency,
                    "gpu": sum(g.latency_s for g in gpu_dense),
                    "adaptiv": sims["adaptiv"].latency_s(),
                    "cmc": sims["cmc"].latency_s(),
                    "gpu+ff": sum(g.latency_s for g in gpu_ff),
                    "focus": sims["focus"].latency_s(),
                }
                energy_totals = {
                    "systolic-array": sa_energy,
                    "gpu": sum(g.energy_j for g in gpu_dense),
                    "adaptiv": sims["adaptiv"].energy.total_j,
                    "cmc": sims["cmc"].energy.total_j,
                    "gpu+ff": sum(g.energy_j for g in gpu_ff),
                    "focus": sims["focus"].energy.total_j,
                }
                for design in result.designs:
                    cell.speedup[design] = sa_latency / latencies[design]
                    speedups[design].append(cell.speedup[design])
                    energies[design].append(
                        energy_totals[design] / sa_energy
                    )
                    if design in sims:
                        breakdown = sims[design].energy
                        cell.energy[design] = {
                            "core": breakdown.core_j / sa_energy,
                            "buffer": breakdown.buffer_j / sa_energy,
                            "dram": breakdown.dram_j / sa_energy,
                        }
                    else:
                        cell.energy[design] = {
                            "core": energy_totals[design] / sa_energy,
                            "buffer": 0.0,
                            "dram": 0.0,
                        }
                result.cells.append(cell)
        for design in result.designs:
            result.geomean_speedup[design] = float(
                np.exp(np.mean(np.log(speedups[design])))
            )
            result.geomean_energy[design] = float(
                np.exp(np.mean(np.log(energies[design])))
            )

        result.area_breakdown_mm2 = area_breakdown(FOCUS)
        focus_cell = results[power_job]
        sim = _paper_scale_sim(focus_cell, FOCUS, engine=engine)
        latency = sim.latency_s()
        result.power_breakdown_w = {
            "core": sim.energy.core_j / latency,
            "buffer": sim.energy.buffer_j / latency,
            "dram": sim.energy.dram_j / latency,
        }
        return result

    return ExperimentPlan(tuple(jobs.values()) + (power_job,), assemble)


# ---------------------------------------------------------------------------
# Fig. 10 — design space exploration
# ---------------------------------------------------------------------------

@dataclass
class SweepPoint:
    """One configuration of a DSE sweep."""

    label: str
    latency: float
    accuracy: float
    extra: dict[str, float] = field(default_factory=dict)


@register("fig10a", "DSE: GEMM m-tile size (Fig. 10a)")
def plan_fig10a(
    m_tiles: tuple[int, ...] = (0, 256, 128, 64, 32),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Fig. 10(a): GEMM m-tile size vs latency and buffer demand.

    ``0`` denotes the full input height (no tiling).  Smaller tiles
    truncate comparison windows at tile boundaries, hurting
    compression and therefore latency; larger tiles need more output
    buffer.
    """
    jobs = {}
    for m_tile in m_tiles:
        effective = m_tile if m_tile > 0 else 1 << 20
        config = _base_config(matcher, forward_batch, m_tile=effective)
        jobs[m_tile] = EvalJob(
            model=model, dataset=dataset, method="focus",
            num_samples=num_samples, seed=seed, config=config,
        )

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[SweepPoint]:
        from repro.accel.buffers import output_buffer_kb_for_tile

        points = []
        baseline = None
        for m_tile in m_tiles:
            cell = results[jobs[m_tile]]
            latency = float(
                _paper_scale_sim(cell, FOCUS, engine=engine).cycles
            )
            baseline = baseline or latency
            label = "full" if m_tile == 0 else str(m_tile)
            buffer_kb = output_buffer_kb_for_tile(
                m_tile if m_tile > 0 else 1024
            )
            points.append(SweepPoint(
                label=label,
                latency=latency / baseline,
                accuracy=cell.accuracy,
                extra={"output_buffer_kb": buffer_kb},
            ))
        return points

    return ExperimentPlan(tuple(jobs.values()), assemble)


@register("fig10b", "DSE: vector size (Fig. 10b)")
def plan_fig10b(
    vector_sizes: tuple[int, ...] = (8, 16, 32, 64, 96),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Fig. 10(b): vector size vs array MACs and accumulator ops."""
    jobs = {
        v: EvalJob(
            model=model, dataset=dataset, method="focus",
            num_samples=num_samples, seed=seed,
            config=_base_config(matcher, forward_batch, vector_size=v, n_tile=v),
        )
        for v in vector_sizes
    }

    def assemble(results: Results) -> list[SweepPoint]:
        points = []
        for v in vector_sizes:
            cell = results[jobs[v]]
            merged = cell.merged_trace
            points.append(SweepPoint(
                label=str(v),
                latency=0.0,
                accuracy=cell.accuracy,
                extra={
                    "array_gops": merged.total_macs / 1e9,
                    "accumulator_gops": merged.total_scatter_ops / 1e9,
                },
            ))
        return points

    return ExperimentPlan(tuple(jobs.values()), assemble)


@register("fig10c", "DSE: SIC block size (Fig. 10c)")
def plan_fig10c(
    blocks: tuple[tuple[int, int, int], ...] = (
        (1, 1, 1), (1, 2, 2), (1, 3, 3),
        (2, 1, 1), (2, 2, 2), (2, 3, 3),
        (3, 1, 1), (3, 2, 2), (3, 3, 3),
    ),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Fig. 10(c): SIC block size (f, h, w) vs latency."""
    jobs = {
        (bf, bh, bw): EvalJob(
            model=model, dataset=dataset, method="focus",
            num_samples=num_samples, seed=seed,
            config=_base_config(
                matcher, forward_batch,
                block_frames=bf, block_height=bh, block_width=bw
            ),
        )
        for bf, bh, bw in blocks
    }

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[SweepPoint]:
        points = []
        for bf, bh, bw in blocks:
            cell = results[jobs[(bf, bh, bw)]]
            latency = float(
                _paper_scale_sim(cell, FOCUS, engine=engine).cycles
            )
            points.append(SweepPoint(
                label=f"{bf}{bh}{bw}",
                latency=latency,
                accuracy=cell.accuracy,
            ))
        # Normalize to the default 2x2x2 block, as the paper's axis does.
        reference = next(
            (p.latency for p in points if p.label == "222"),
            points[0].latency,
        )
        for point in points:
            point.latency /= reference
        return points

    return ExperimentPlan(tuple(jobs.values()), assemble)


@register("fig10d", "DSE: scatter accumulators (Fig. 10d)")
def plan_fig10d(
    accumulators: tuple[int, ...] = (16, 32, 64, 96, 128, 160),
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Fig. 10(d): scatter accumulator count vs latency.

    One evaluation feeds every accumulator configuration — only the
    simulated architecture varies, so the sweep is a single job plus
    assemble-side simulations.
    """
    job = EvalJob(model=model, dataset=dataset, method="focus",
                  num_samples=num_samples, seed=seed,
                  config=_base_config(matcher, forward_batch))

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[SweepPoint]:
        cell = results[job]
        hidden = get_model_config(model).hidden
        scaled = [scale_to_paper(t, hidden) for t in cell.traces]
        points = []
        best = None
        for count in accumulators:
            arch = ArchConfig(
                name="focus",
                extra_buffer_kb=16.0,
                compression="focus",
                has_sec=True,
                has_sic=True,
                scatter_accumulators=count,
            )
            sim = simulate_many(scaled, arch, engine=engine)
            if best is None or sim.cycles < best:
                best = sim.cycles
            points.append(SweepPoint(
                label=str(count), latency=float(sim.cycles),
                accuracy=cell.accuracy,
            ))
        for point in points:
            point.latency /= best
        return points

    return ExperimentPlan((job,), assemble)


# ---------------------------------------------------------------------------
# Fig. 11 — ablation study
# ---------------------------------------------------------------------------

@dataclass
class AblationBar:
    label: str
    speedup: float


@register("fig11", "ablation study (Fig. 11)")
def plan_fig11(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 11: SEC-only and SEC+SIC vs SA and CMC."""
    methods = ("dense", "cmc", "focus-sec", "focus")
    jobs = {
        method: EvalJob(model=model, dataset=dataset, method=method,
                        num_samples=num_samples, seed=seed,
                        config=_base_config(matcher, forward_batch))
        for method in methods
    }

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[AblationBar]:
        sa = _paper_scale_sim(results[jobs["dense"]], SYSTOLIC, engine=engine)
        return [
            AblationBar("systolic-array", 1.0),
            AblationBar(
                "cmc",
                sa.latency_s()
                / _paper_scale_sim(
                    results[jobs["cmc"]], CMC, engine=engine
                ).latency_s(),
            ),
            AblationBar(
                "ours-sec",
                sa.latency_s()
                / _paper_scale_sim(
                    results[jobs["focus-sec"]], FOCUS, engine=engine
                ).latency_s(),
            ),
            AblationBar(
                "ours",
                sa.latency_s()
                / _paper_scale_sim(
                    results[jobs["focus"]], FOCUS, engine=engine
                ).latency_s(),
            ),
        ]

    return ExperimentPlan(tuple(jobs.values()), assemble)


# ---------------------------------------------------------------------------
# Fig. 12 — memory access analysis
# ---------------------------------------------------------------------------

@dataclass
class Fig12Row:
    model: str
    dram_ratio: dict[str, float] = field(default_factory=dict)
    activation_ratio: dict[str, float] = field(default_factory=dict)


_FIG12_METHODS = (
    ("dense", SYSTOLIC), ("adaptiv", ADAPTIV),
    ("cmc", CMC), ("focus", FOCUS),
)


@register("fig12", "memory access (Fig. 12)")
def plan_fig12(
    models: tuple[str, ...] = VIDEO_MODELS,
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 12: DRAM access and activation size ratios."""
    jobs = {
        (model, method): EvalJob(
            model=model, dataset=dataset, method=method,
            num_samples=num_samples, seed=seed,
            config=_base_config(matcher, forward_batch),
        )
        for model in models
        for method, _ in _FIG12_METHODS
    }

    def assemble(
        results: Results, engine: ExperimentEngine | None = None
    ) -> list[Fig12Row]:
        rows = []
        for model in models:
            row = Fig12Row(model=model)
            dense = results[jobs[(model, "dense")]]
            sa = _paper_scale_sim(dense, SYSTOLIC, engine=engine)
            dense_inputs = sum(
                g.m * g.k * 2 for t in dense.traces for g in t.gemms
                if g.name in ("qkv", "fc1", "o_proj")
            )
            for method, arch in _FIG12_METHODS:
                cell = results[jobs[(model, method)]]
                sim = _paper_scale_sim(cell, arch, engine=engine)
                row.dram_ratio[method] = (
                    sim.activation_dram_bytes / sa.activation_dram_bytes
                )
                method_inputs = sum(
                    g.input_bytes for t in cell.traces for g in t.gemms
                    if g.name in ("qkv", "fc1", "o_proj")
                )
                row.activation_ratio[method] = method_inputs / dense_inputs
            rows.append(row)
        mean = Fig12Row(model="mean")
        for method in rows[0].dram_ratio:
            mean.dram_ratio[method] = float(np.mean(
                [r.dram_ratio[method] for r in rows]
            ))
            mean.activation_ratio[method] = float(np.mean(
                [r.activation_ratio[method] for r in rows]
            ))
        rows.append(mean)
        return rows

    return ExperimentPlan(tuple(jobs.values()), assemble)


# ---------------------------------------------------------------------------
# Fig. 13 — concentrated tile-length distribution and utilization
# ---------------------------------------------------------------------------

@dataclass
class Fig13Result:
    tile_lengths: np.ndarray
    histogram: np.ndarray
    bin_edges: np.ndarray
    utilization_curve: np.ndarray
    average_utilization: float


@register("fig13", "tile lengths + utilization (Fig. 13)")
def plan_fig13(
    model: str = "llava-video",
    dataset: str = "videomme",
    num_samples: int = 4,
    seed: int = 0,
    bins: int = 24,
    paper_tile_rows: int = 1024,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Reproduce Fig. 13: tile-length histogram and array utilization.

    Tile lengths are normalized to the paper's 1024-row tiles: each
    gather's measured unique-vector *fraction* is replayed at the
    Table I tile height, so the histogram spans the same 0..1024 axis
    the paper plots.
    """
    job = EvalJob(model=model, dataset=dataset, method="focus",
                  num_samples=num_samples, seed=seed,
                  config=_base_config(matcher, forward_batch))

    def assemble(results: Results) -> Fig13Result:
        merged = results[job].merged_trace
        unique = np.array(merged.tile_lengths, dtype=np.float64)
        rows = np.array(merged.tile_rows, dtype=np.float64)
        lengths = np.round(
            unique / np.maximum(rows, 1.0) * paper_tile_rows
        ).astype(np.int64)
        histogram, edges = np.histogram(lengths, bins=bins, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        curve = np.array([
            tile_utilization(int(c), FOCUS.pe_rows, FOCUS.pe_cols)
            for c in centers
        ])
        weighted = float(np.sum(
            lengths / (lengths + FOCUS.pe_rows + FOCUS.pe_cols - 1) * lengths
        ) / max(np.sum(lengths), 1))
        return Fig13Result(
            tile_lengths=lengths,
            histogram=histogram,
            bin_edges=edges,
            utilization_curve=curve,
            average_utilization=weighted,
        )

    return ExperimentPlan((job,), assemble)


# ---------------------------------------------------------------------------
# Scenario — generative workload families (--scenario)
# ---------------------------------------------------------------------------

SCENARIO_METHODS = ("dense", "focus")


@dataclass
class ScenarioResult:
    """Per-method accuracy/sparsity on one generative scenario."""

    scenario: str  # canonical name (the jobs' dataset key)
    digest: str    # content address of the spec
    family: str
    model: str
    methods: tuple[str, ...]
    num_samples: int
    # method -> (accuracy %, sparsity %, mean trace tokens)
    cells: dict[str, tuple[float, float, float]] = field(
        default_factory=dict
    )


@register("scenario", "generative workload families (--scenario spec)")
def plan_scenario(
    scenario: str = "mtconv",
    model: str = "llava-video",
    methods: tuple[str, ...] = SCENARIO_METHODS,
    num_samples: int = 8,
    seed: int = 0,
    matcher: str | None = None,
    forward_batch: int | None = None,
) -> ExperimentPlan:
    """Evaluate one generative scenario family.

    ``scenario`` is any spelling of a ``family[:key=value,...]`` spec
    (see :mod:`repro.workloads.scenarios`); it is canonicalized here,
    so the jobs' dataset keys — and therefore their content-addressed
    cache entries — are identical for every spelling of one
    ``(family, seed, params)`` triple.
    """
    from repro.workloads.scenarios import parse_scenario

    spec = parse_scenario(scenario)
    jobs = tuple(
        EvalJob(model=model, dataset=spec.name, method=method,
                num_samples=num_samples, seed=seed,
                config=_base_config(matcher, forward_batch))
        for method in methods
    )

    def assemble(results: Results) -> ScenarioResult:
        result = ScenarioResult(
            scenario=spec.name, digest=spec.digest, family=spec.family,
            model=model, methods=tuple(methods), num_samples=num_samples,
        )
        for job in jobs:
            cell = results[job]
            mean_tokens = float(np.mean(
                [trace.initial_tokens for trace in cell.traces]
            )) if cell.traces else 0.0
            result.cells[job.method] = (
                cell.accuracy, cell.sparsity, mean_tokens
            )
        return result

    return ExperimentPlan(jobs, assemble)


# ---------------------------------------------------------------------------
# Classic callable drivers (engine-backed)
# ---------------------------------------------------------------------------

table2 = _engine_driver(plan_table2)
table3 = _engine_driver(plan_table3)
table4 = _engine_driver(plan_table4)
table5 = _engine_driver(plan_table5)
fig2b = _engine_driver(plan_fig2b)
fig2c = _engine_driver(plan_fig2c)
fig9 = _engine_driver(plan_fig9)
fig10a = _engine_driver(plan_fig10a)
fig10b = _engine_driver(plan_fig10b)
fig10c = _engine_driver(plan_fig10c)
fig10d = _engine_driver(plan_fig10d)
fig11 = _engine_driver(plan_fig11)
fig12 = _engine_driver(plan_fig12)
fig13 = _engine_driver(plan_fig13)
scenario = _engine_driver(plan_scenario)
