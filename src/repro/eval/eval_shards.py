"""Per-sample evaluation sharding as an engine workload.

PR 2 made trace *simulation* shard onto the worker pool; this module is
its evaluation-side twin.  A whole (model, dataset, method) ``eval``
cell is split into contiguous per-sample-span shards, each an
``eval-shard`` :class:`~repro.engine.jobs.EvalJob` the
:class:`~repro.engine.scheduler.ExperimentEngine` dedupes, caches, and
executes on its worker pool; the span results are re-folded in global
sample order by :meth:`EvalResult.merge
<repro.eval.metrics.EvalResult.merge>`.

Bit-identity with the serial cell rests on two properties:

* dataset generation is *prefix-stable* — sample ``i`` depends only on
  ``(seed, dataset, i)`` (:func:`repro.workloads.datasets.
  make_dataset_span`), so a span evaluated in isolation sees exactly
  the items the serial loop would have fed it;
* shards return *per-span* :class:`~repro.eval.metrics.EvalResult`\\ s
  whose per-sample lists concatenate in span order, reproducing the
  serial loop's record sequence (and therefore its float means) bit
  for bit.

Shard keys deliberately exclude the parent cell's total sample count:
the span ``[0, 3)`` of an 8-sample cell and of a 16-sample cell are
the *same job*.  Growing ``--samples`` therefore re-executes only the
new suffix spans — the prefix is served from the result cache, in
memory or on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.jobs import EvalJob, register_job_kind
from repro.engine.sharding import plan_shards
from repro.eval.metrics import EvalResult

EVAL_SHARD_KIND = "eval-shard"
EVAL_SHARD_PROVIDER = "repro.eval.eval_shards"


def shard_span(job: EvalJob) -> tuple[int, int]:
    """The ``[start, stop)`` sample span of an ``eval-shard`` job."""
    return tuple(job.extra_map["span"])


def result_method(job: EvalJob) -> str:
    """The method label an evaluation of ``job`` reports.

    :func:`repro.eval.runner.evaluate_samples` suffixes INT8 arms, so
    merged and serial results carry identical labels.
    """
    return f"{job.method}-int8" if job.quantized else job.method


def plan_eval_shards(job: EvalJob, shard_size: int) -> tuple[EvalJob, ...]:
    """Split a whole-cell ``eval`` job into per-span shard jobs.

    Every shard is a pure function of its key — ``(model, dataset,
    method, span, seed, config digest, quantized)`` — and is shared by
    *any* cell that covers the span: two experiments evaluating the
    same cell at different ``num_samples`` dedupe on their common
    prefix spans.
    """
    if job.kind != "eval":
        raise ValueError(
            f"can only shard 'eval' jobs, got kind {job.kind!r}"
        )
    return tuple(
        EvalJob(
            model=job.model,
            dataset=job.dataset,
            method=job.method,
            num_samples=stop - start,
            seed=job.seed,
            config=job.config,
            quantized=job.quantized,
            kind=EVAL_SHARD_KIND,
            extra=(("span", (start, stop)),),
            provider=EVAL_SHARD_PROVIDER,
        )
        for start, stop in plan_shards(job.num_samples, shard_size)
    )


@register_job_kind(EVAL_SHARD_KIND)
def _execute_eval_shard(job: EvalJob) -> EvalResult:
    """Evaluate one sample span; return its per-sample records."""
    from repro.eval.runner import evaluate_span

    return evaluate_span(
        job.model,
        job.dataset,
        job.method,
        shard_span(job),
        job.seed,
        config=job.config,
        quantized=job.quantized,
    )


def merge_eval_shards(
    parent: EvalJob, span_results: list[EvalResult]
) -> EvalResult:
    """Re-fold span results (already in global sample order) into a cell.

    Bit-identical to evaluating ``parent`` serially for every shard
    size and worker count — the property the parity test harness locks
    in.
    """
    return EvalResult.merge(
        span_results,
        model=parent.model,
        dataset=parent.dataset,
        method=result_method(parent),
    )


@dataclass
class ShardProgress:
    """Running partial-result statistics for one sharded cell.

    Updated as the cell's shards finish (in completion order, which is
    scheduling-dependent); feeds the ``eval-shard-done`` progress
    event's running accuracy/sparsity so a consumer can stream partial
    results before the cell is fully merged.  The counters are plain
    sums — display-grade, not the bit-exact fold the final merge does.
    """

    shards_total: int
    shards_done: int = 0
    samples: int = 0
    num_correct: int = 0
    sparsity_sum: float = 0.0

    def update(self, span_result: EvalResult) -> None:
        self.shards_done += 1
        self.samples += span_result.num_samples
        self.num_correct += sum(bool(c) for c in span_result.correct)
        self.sparsity_sum += float(sum(span_result.sparsities))

    @property
    def accuracy(self) -> float:
        """Running accuracy over finished shards, in percent."""
        if not self.samples:
            return 0.0
        return 100.0 * self.num_correct / self.samples

    @property
    def sparsity(self) -> float:
        """Running mean computation sparsity, in percent."""
        if not self.samples:
            return 0.0
        return 100.0 * self.sparsity_sum / self.samples

    def as_detail(self, parent: EvalJob) -> dict[str, object]:
        """The ``eval-shard-done`` event's ``detail`` payload."""
        return {
            "parent": parent.describe(),
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "samples": self.samples,
            "accuracy": self.accuracy,
            "sparsity": self.sparsity,
        }
