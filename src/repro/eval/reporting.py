"""Paper-style text rendering of experiment results.

Every ``format_*`` function takes the corresponding driver's result
and returns the rows/series the paper prints, as a plain string — the
benchmark harness tees these into the experiment log so paper-vs-
measured comparison is a diff away.
"""

from __future__ import annotations

from repro.eval.experiments import (
    AblationBar,
    Fig2bResult,
    Fig2cBar,
    Fig9Result,
    Fig12Row,
    Fig13Result,
    ScenarioResult,
    SweepPoint,
    Table2Result,
    Table3Row,
    Table4Row,
    Table5Row,
)
from repro.eval.runner import PAPER_METHOD_NAMES
from repro.model.zoo import PAPER_MODEL_NAMES

_DATASET_NAMES = {
    "videomme": "VMME", "mlvu": "MLVU", "mvbench": "MVB",
    "vqav2": "VQAv2", "mme": "MME", "mmbench": "MMBench",
}


def _model_label(name: str) -> str:
    return PAPER_MODEL_NAMES.get(name, name)


def _dataset_label(name: str) -> str:
    return _DATASET_NAMES.get(name, name)


def format_table2(result: Table2Result) -> str:
    """Render Table II: accuracy and sparsity per cell."""
    lines = ["TABLE II: Accuracy and Computation Sparsity"]
    header = f"{'Model':12s} {'Dataset':8s} {'Metric':8s}" + "".join(
        f"{PAPER_METHOD_NAMES.get(m, m):>8s}" for m in result.methods
    )
    lines.append(header)
    for model in result.models:
        for dataset in result.datasets:
            accuracy_row = (
                f"{_model_label(model):12s} {_dataset_label(dataset):8s}"
                f" {'Acc.':8s}"
            )
            sparsity_row = f"{'':12s} {'':8s} {'Sparsity':8s}"
            for method in result.methods:
                acc, sparsity = result.cells[(model, dataset, method)]
                accuracy_row += f"{acc:8.2f}"
                sparsity_row += f"{sparsity:8.2f}"
            lines.append(accuracy_row)
            lines.append(sparsity_row)
    return "\n".join(lines)


def format_table3(rows: list[Table3Row]) -> str:
    """Render Table III: architecture configuration comparison."""
    lines = ["TABLE III: Architecture Configuration Comparison"]
    lines.append(
        f"{'Architecture':16s}{'PE Array':>10s}{'Buffer KB':>11s}"
        f"{'BW GB/s':>9s}{'Area mm2':>10s}{'Power mW':>10s}"
    )
    for row in rows:
        lines.append(
            f"{row.name:16s}{row.pe_array:>10s}{row.buffer_kb:>11.0f}"
            f"{row.dram_bandwidth_gbs:>9.0f}{row.area_mm2:>10.2f}"
            f"{row.on_chip_power_mw:>10.0f}"
        )
    return "\n".join(lines)


def format_table4(rows: list[Table4Row]) -> str:
    """Render Table IV: INT8 influence on accuracy and sparsity."""
    lines = ["TABLE IV: Influence of INT8 Quantization"]
    lines.append(
        f"{'Model':12s}{'Dataset':>8s}{'DenseAcc':>9s}{'Degr.':>7s}"
        f"{'OursAcc':>9s}{'Degr.':>7s}{'Sparsity':>9s}{'Degr.':>7s}"
    )
    for row in rows:
        lines.append(
            f"{_model_label(row.model):12s}{_dataset_label(row.dataset):>8s}"
            f"{row.dense_acc:>9.2f}{row.dense_degrade:>7.2f}"
            f"{row.ours_acc:>9.2f}{row.ours_degrade:>7.2f}"
            f"{row.ours_sparsity:>9.2f}{row.sparsity_degrade:>7.2f}"
        )
    return "\n".join(lines)


def format_table5(rows: list[Table5Row]) -> str:
    """Render Table V: accuracy and speedup on image VLMs."""
    lines = ["TABLE V: Accuracy and Speedup on Image VLMs"]
    lines.append(
        f"{'Model':16s}{'Dataset':>9s}{'Metric':>9s}"
        f"{'Dense':>8s}{'AdapTiV':>9s}{'Ours':>8s}"
    )
    for row in rows:
        lines.append(
            f"{_model_label(row.model):16s}{_dataset_label(row.dataset):>9s}"
            f"{'Speedup':>9s}{1.0:>8.2f}{row.adaptiv_speedup:>9.2f}"
            f"{row.ours_speedup:>8.2f}"
        )
        lines.append(
            f"{'':16s}{'':>9s}{'Accuracy':>9s}{row.dense_acc:>8.2f}"
            f"{row.adaptiv_acc:>9.2f}{row.ours_acc:>8.2f}"
        )
    return "\n".join(lines)


def format_fig2b(result: Fig2bResult) -> str:
    """Render Fig. 2(b): similarity fraction above threshold per size."""
    lines = ["FIG 2(b): Cosine-similarity distribution vs vector size"]
    for v in result.vector_sizes:
        frac = result.fraction_above[v] * 100.0
        lines.append(
            f"  vector size {v:4d}: {frac:5.1f}% of vectors"
            f" > {result.threshold} similarity"
        )
    return "\n".join(lines)


def format_fig2c(bars: list[Fig2cBar]) -> str:
    """Render Fig. 2(c): sparsity/accuracy bars."""
    lines = ["FIG 2(c): Sparsity Comparison"]
    lines.append(f"{'Method':14s}{'Sparsity %':>12s}{'Accuracy %':>12s}")
    for bar in bars:
        lines.append(
            f"{bar.method:14s}{bar.sparsity:>12.1f}{bar.accuracy:>12.1f}"
        )
    return "\n".join(lines)


def format_fig9(result: Fig9Result) -> str:
    """Render Fig. 9: speedup / energy bars and breakdowns."""
    lines = ["FIG 9(a): Speedup (normalized to systolic array)"]
    header = f"{'Model':12s}{'Dataset':>9s}" + "".join(
        f"{d:>15s}" for d in result.designs
    )
    lines.append(header)
    for cell in result.cells:
        row = f"{_model_label(cell.model):12s}{_dataset_label(cell.dataset):>9s}"
        for design in result.designs:
            row += f"{cell.speedup[design]:>15.2f}"
        lines.append(row)
    geo = f"{'GeoMean':12s}{'':>9s}" + "".join(
        f"{result.geomean_speedup[d]:>15.2f}" for d in result.designs
    )
    lines.append(geo)

    lines.append("FIG 9(b): Normalized energy (vs systolic array)")
    geo_energy = f"{'GeoMean':12s}{'':>9s}" + "".join(
        f"{result.geomean_energy[d]:>15.3f}" for d in result.designs
    )
    lines.append(header)
    lines.append(geo_energy)

    total_area = sum(result.area_breakdown_mm2.values())
    lines.append(f"FIG 9(c): Area breakdown (total {total_area:.2f} mm2)")
    for component, area in result.area_breakdown_mm2.items():
        lines.append(
            f"  {component:16s}{area:8.3f} mm2 ({100 * area / total_area:5.1f}%)"
        )
    total_power = sum(result.power_breakdown_w.values())
    lines.append(f"FIG 9(c): Power breakdown (total {total_power:.2f} W)")
    for component, power in result.power_breakdown_w.items():
        lines.append(
            f"  {component:16s}{power:8.3f} W   ({100 * power / total_power:5.1f}%)"
        )
    return "\n".join(lines)


def format_sweep(title: str, points: list[SweepPoint]) -> str:
    """Render one DSE sweep (Fig. 10 panels)."""
    lines = [title]
    extras = sorted({key for p in points for key in p.extra})
    header = f"{'Config':>8s}{'NormLatency':>13s}{'Accuracy':>10s}" + "".join(
        f"{e:>18s}" for e in extras
    )
    lines.append(header)
    for point in points:
        row = f"{point.label:>8s}{point.latency:>13.3f}{point.accuracy:>10.2f}"
        for e in extras:
            row += f"{point.extra.get(e, float('nan')):>18.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_fig11(bars: list[AblationBar]) -> str:
    """Render Fig. 11: ablation speedups."""
    lines = ["FIG 11: Ablation Study (speedup vs dense systolic array)"]
    for bar in bars:
        lines.append(f"  {bar.label:16s}{bar.speedup:6.2f}x")
    if len(bars) >= 4:
        sec_gain = bars[2].speedup / bars[1].speedup
        sic_gain = bars[3].speedup / bars[2].speedup
        lines.append(
            f"  SEC vs CMC: {sec_gain:.2f}x ; SIC on top of SEC:"
            f" {sic_gain:.2f}x"
        )
    return "\n".join(lines)


def format_fig12(rows: list[Fig12Row]) -> str:
    """Render Fig. 12: memory-access ratios."""
    methods = list(rows[0].dram_ratio)
    lines = ["FIG 12(a): DRAM access (normalized to systolic array)"]
    header = f"{'Model':12s}" + "".join(f"{m:>10s}" for m in methods)
    lines.append(header)
    for row in rows:
        lines.append(f"{_model_label(row.model):12s}" + "".join(
            f"{row.dram_ratio[m]:>10.2f}" for m in methods
        ))
    lines.append("FIG 12(b): Activation size (normalized to dense)")
    lines.append(header)
    for row in rows:
        lines.append(f"{_model_label(row.model):12s}" + "".join(
            f"{row.activation_ratio[m]:>10.2f}" for m in methods
        ))
    return "\n".join(lines)


def format_fig13(result: Fig13Result) -> str:
    """Render Fig. 13: tile-length histogram and utilization."""
    lines = [
        "FIG 13: Concentrated tile length distribution",
        f"  tiles observed: {result.tile_lengths.size}",
        f"  average utilization: {result.average_utilization:.3f}",
    ]
    for i, density in enumerate(result.histogram):
        lo = result.bin_edges[i]
        hi = result.bin_edges[i + 1]
        util = result.utilization_curve[i]
        bar = "#" * int(60 * density / max(result.histogram.max(), 1e-12))
        lines.append(
            f"  [{lo:6.0f},{hi:6.0f})  util={util:.2f}  {bar}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Registry wiring: every experiment gets its paper-style renderer.
# ---------------------------------------------------------------------------

def format_scenario(result: ScenarioResult) -> str:
    """Render a generative-scenario run: per-method accuracy/sparsity."""
    lines = [
        f"SCENARIO {result.family} on {_model_label(result.model)} "
        f"({result.num_samples} samples, digest {result.digest})",
        f"  spec: {result.scenario}",
        f"{'Method':14s} {'Acc.':>8s} {'Sparsity':>9s} {'MeanTok':>8s}",
    ]
    for method in result.methods:
        accuracy, sparsity, mean_tokens = result.cells[method]
        lines.append(
            f"{PAPER_METHOD_NAMES.get(method, method):14s} "
            f"{accuracy:8.2f} {sparsity:9.2f} {mean_tokens:8.1f}"
        )
    return "\n".join(lines)


def _attach_formatters() -> None:
    from repro.engine.registry import set_formatter

    set_formatter("table2", format_table2)
    set_formatter("table3", format_table3)
    set_formatter("table4", format_table4)
    set_formatter("table5", format_table5)
    set_formatter("fig2b", format_fig2b)
    set_formatter("fig2c", format_fig2c)
    set_formatter("fig9", format_fig9)
    set_formatter(
        "fig10a", lambda p: format_sweep("FIG 10(a): m-tile size", p)
    )
    set_formatter(
        "fig10b", lambda p: format_sweep("FIG 10(b): vector size", p)
    )
    set_formatter(
        "fig10c", lambda p: format_sweep("FIG 10(c): block size", p)
    )
    set_formatter(
        "fig10d", lambda p: format_sweep("FIG 10(d): accumulators", p)
    )
    set_formatter("fig11", format_fig11)
    set_formatter("fig12", format_fig12)
    set_formatter("fig13", format_fig13)
    set_formatter("scenario", format_scenario)


_attach_formatters()
