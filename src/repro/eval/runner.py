"""Evaluation harness: method registry and the model x dataset x method
driver that produces accuracy, sparsity and hardware traces.

This is the reproduction's equivalent of the paper's lmms-eval +
trace-generation flow (Sec. VII-A): every method is a plugin factory,
every evaluation returns an :class:`~repro.eval.metrics.EvalResult`
whose traces feed the cycle simulator.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.baselines.adaptiv import AdapTiVPlugin
from repro.baselines.cmc import CMCPlugin
from repro.baselines.dense import DensePlugin
from repro.baselines.framefusion import FrameFusionPlugin
from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.core.adaptive import AdaptiveFocusPlugin
from repro.core.pipeline import FocusPlugin
from repro.engine.jobs import config_digest
from repro.eval.metrics import EvalResult, computation_sparsity, dense_macs_for
from repro.model.plugins import InferencePlugin
from repro.model.vlm import SyntheticVLM
from repro.model.zoo import get_model_config
from repro.quant.int8 import Int8ActivationPlugin, quantize_model
from repro.workloads.datasets import Sample, make_dataset_span

PluginFactory = Callable[[SyntheticVLM, FocusConfig], InferencePlugin]

METHOD_REGISTRY: dict[str, PluginFactory] = {
    "dense": lambda model, cfg: DensePlugin(),
    "framefusion": lambda model, cfg: FrameFusionPlugin(model.config),
    "adaptiv": lambda model, cfg: AdapTiVPlugin(),
    "cmc": lambda model, cfg: CMCPlugin(model.config.layout),
    "focus": lambda model, cfg: FocusPlugin(model, cfg),
    "focus-sec": lambda model, cfg: FocusPlugin(model, cfg, enable_sic=False),
    "focus-sic": lambda model, cfg: FocusPlugin(model, cfg, enable_sec=False),
    "focus-token": lambda model, cfg: FocusPlugin(model, cfg, token_wise=True),
    "focus-topp": lambda model, cfg: AdaptiveFocusPlugin(model, cfg),
}
"""Method name -> plugin factory.  ``focus-sec``/``focus-sic`` are the
Fig. 11 ablation arms; ``focus-token`` is Fig. 2(c)'s token-wise
variant; ``focus-topp`` is the adaptive top-p extension the paper's
Sec. VII-D proposes as future work."""

PAPER_METHOD_NAMES = {
    "dense": "Ori.",
    "framefusion": "FF",
    "adaptiv": "Ada.",
    "cmc": "CMC",
    "focus": "Ours",
}
"""Column labels as printed in the paper's tables."""


def make_plugin(
    method: str, model: SyntheticVLM, config: FocusConfig = DEFAULT_CONFIG
) -> InferencePlugin:
    """Instantiate a method plugin by registry name."""
    try:
        factory = METHOD_REGISTRY[method]
    except KeyError:
        raise KeyError(
            f"unknown method {method!r}; available: {sorted(METHOD_REGISTRY)}"
        ) from None
    return factory(model, config)


MODEL_CACHE_MAX_ENTRIES = 8
"""LRU bound on cached synthetic models (per cache, per process).
The zoo holds four models, so eight covers every registered config
plus test-patched variants while keeping long-lived serve processes —
which construct models on demand from arbitrary request mixes — at
bounded memory, consistent with the other engine caches
(:data:`repro.core.gather.TABLE_CACHE_MAX_ENTRIES`,
:data:`repro.model.functional.MASK_CACHE_MAX_ENTRIES`)."""


class ModelCache:
    """Constructs each synthetic model at most once per process.

    Entries are keyed on ``(name, config digest)``, not the bare name:
    if the registry entry behind a name ever changes (a test patching
    :data:`repro.model.zoo.MODEL_CONFIGS`, two jobs in one batch
    resolving the same name to different configs), the stale model is
    simply not found and a fresh one is built — a shard worker can
    never evaluate against a model constructed from a different config
    than its job's key describes.

    Access is serialized by a lock (the serving frontend evaluates
    concurrent runs on one process-wide cache) and the store is a
    bounded LRU: weight construction is deterministic, so an evicted
    entry rebuilt later is bit-identical — eviction only costs time.
    """

    _models: OrderedDict[tuple[str, str], SyntheticVLM] = OrderedDict()
    _lock = threading.Lock()

    @classmethod
    def _key(cls, name: str) -> tuple[str, str]:
        return (name, config_digest(get_model_config(name)))

    @classmethod
    def get(cls, name: str) -> SyntheticVLM:
        key = cls._key(name)
        with cls._lock:
            model = cls._models.get(key)
            if model is not None:
                cls._models.move_to_end(key)
                return model
            # Built under the lock: constructing the same model twice
            # in parallel would waste the exact work the cache exists
            # to avoid, and construction is fast relative to the
            # evaluations it serves.
            model = SyntheticVLM(get_model_config(name))
            cls._models[key] = model
            while len(cls._models) > MODEL_CACHE_MAX_ENTRIES:
                cls._models.popitem(last=False)
            return model


class QuantizedModelCache:
    """INT8-quantized counterpart of :class:`ModelCache`.

    Quantization is deterministic, so the quantized model is as
    cacheable as the FP16 original; it shares the original's
    :class:`~repro.model.spec.ModelConfig`, which keeps dense-MAC
    accounting (and therefore sparsity) directly comparable.  Keyed on
    ``(name, config digest)`` like :class:`ModelCache`, with the same
    lock + LRU bound.  Lock order is always Quantized -> Model (this
    cache calls into :class:`ModelCache`, never the reverse), so the
    nesting cannot deadlock.
    """

    _models: OrderedDict[tuple[str, str], SyntheticVLM] = OrderedDict()
    _lock = threading.Lock()

    @classmethod
    def get(cls, name: str) -> SyntheticVLM:
        key = ModelCache._key(name)
        with cls._lock:
            model = cls._models.get(key)
            if model is not None:
                cls._models.move_to_end(key)
                return model
            model = quantize_model(ModelCache.get(name))
            cls._models[key] = model
            while len(cls._models) > MODEL_CACHE_MAX_ENTRIES:
                cls._models.popitem(last=False)
            return model


def evaluate_samples(
    model: SyntheticVLM,
    samples: list[Sample],
    method: str,
    config: FocusConfig = DEFAULT_CONFIG,
    model_name: str = "",
    dataset_name: str = "",
    quantized: bool = False,
) -> EvalResult:
    """Run one method over a list of samples.

    With ``quantized=True`` the model is expected to carry INT8
    weights and every method plugin is wrapped in
    :class:`~repro.quant.int8.Int8ActivationPlugin`, reproducing the
    Table IV INT8 arms for any registered method.
    """
    result = EvalResult(
        model=model_name or model.config.name,
        dataset=dataset_name,
        method=f"{method}-int8" if quantized else method,
    )
    outcomes = _forward_outcomes(model, samples, method, config, quantized)
    for sample, outcome in zip(samples, outcomes):
        result.correct.append(outcome.correct)
        result.sparsities.append(
            computation_sparsity(outcome.trace, model.config, sample)
        )
        result.traces.append(outcome.trace)
        result.dense_macs.append(dense_macs_for(model.config, sample))
    return result


def _forward_outcomes(
    model: SyntheticVLM,
    samples: list[Sample],
    method: str,
    config: FocusConfig,
    quantized: bool,
) -> list:
    """Per-sample inference outcomes, batched when the config asks.

    With ``config.forward_batch > 1`` and a method that has a batched
    implementation, samples run in shape-bucketed stacked passes
    (:func:`repro.core.batched.run_batched`); otherwise the retained
    per-sample loop runs — the parity oracle both arms are held to.
    Either way the outcome list is in sample order and per-sample
    bit-identical.
    """
    if config.forward_batch > 1:
        from repro.core.batched import make_batch_plugin, run_batched

        batch_plugin = make_batch_plugin(
            method, model, config, quantized=quantized
        )
        if batch_plugin is not None:
            return run_batched(
                model, samples, batch_plugin, config.forward_batch
            )
    plugin: InferencePlugin = make_plugin(method, model, config)
    if quantized:
        plugin = Int8ActivationPlugin(plugin)
    outcomes = []
    for index, sample in enumerate(samples):
        if index and not plugin.reusable:
            # Stateful plugins get a fresh instance per sample, as the
            # original loop always did; reusable ones are hoisted.
            plugin = make_plugin(method, model, config)
            if quantized:
                plugin = Int8ActivationPlugin(plugin)
        outcomes.append(model.forward(sample, plugin))
    return outcomes


def evaluate_span(
    model_name: str,
    dataset_name: str,
    method: str,
    span: tuple[int, int],
    seed: int = 0,
    config: FocusConfig = DEFAULT_CONFIG,
    quantized: bool = False,
) -> EvalResult:
    """Evaluate sample indices ``[start, stop)`` of a cell.

    Because dataset generation is prefix-stable (see
    :func:`repro.workloads.datasets.make_dataset_span`), evaluating a
    span in isolation produces exactly the per-sample records the
    serial whole-cell loop would have produced at those indices — so
    spans merged in global sample order by
    :meth:`~repro.eval.metrics.EvalResult.merge` are bit-identical to
    :func:`evaluate`, for any span partition.
    """
    start, stop = span
    model = ModelCache.get(model_name)
    samples = make_dataset_span(
        dataset_name, model.config.layout, start, stop, seed=seed
    )
    if quantized:
        model = QuantizedModelCache.get(model_name)
    return evaluate_samples(
        model, samples, method, config,
        model_name=model_name, dataset_name=dataset_name,
        quantized=quantized,
    )


def evaluate(
    model_name: str,
    dataset_name: str,
    method: str,
    num_samples: int = 16,
    seed: int = 0,
    config: FocusConfig = DEFAULT_CONFIG,
    quantized: bool = False,
) -> EvalResult:
    """Evaluate a (model, dataset, method) cell.

    Samples are generated deterministically from ``seed`` so every
    method sees the *same* items — accuracy comparisons are paired, as
    in the paper's tables.  ``quantized=True`` runs the INT8 arm on
    the same items (Table IV pairs FP16 and INT8 this way).
    """
    return evaluate_span(
        model_name, dataset_name, method, (0, num_samples), seed,
        config=config, quantized=quantized,
    )
