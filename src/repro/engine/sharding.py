"""Shared shard-planning and content-digest helpers.

Both sharded workloads — trace simulation (:mod:`repro.accel.sim_jobs`)
and per-sample evaluation (:mod:`repro.eval.eval_shards`) — split a
batch of items into contiguous ``[start, stop)`` spans, give every span
a content-addressed job key, and re-fold the per-item results in global
order.  The planning arithmetic and the digesting live here so the two
paths can never drift apart; :mod:`repro.accel.simulator` and
:mod:`repro.accel.sim_jobs` re-export the names they historically
owned.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

Span = tuple[int, int]


def plan_shards(num_items: int, shard_size: int) -> list[Span]:
    """Split ``num_items`` into contiguous ``[start, stop)`` shards.

    Span boundaries depend only on ``shard_size``, never on the total:
    a batch that *grows* keeps every existing span and appends new ones
    (``plan_shards(9, 3)`` is a prefix of ``plan_shards(12, 3)``).
    That prefix stability is what lets a larger re-run of a sharded
    workload serve its old spans from the result cache and execute only
    the new suffix.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, num_items))
        for start in range(0, num_items, shard_size)
    ]


def shard_count_to_size(num_items: int, num_shards: int) -> int:
    """Items per shard when splitting a batch into ``num_shards``."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return max(1, math.ceil(num_items / num_shards))


def sequence_digest(items: Iterable[object], length: int = 32) -> str:
    """Content digest of an item sequence via each item's ``repr``.

    Items must have deterministic, value-complete ``repr``\\ s (plain
    dataclasses of ints/floats qualify), so the digest is stable across
    processes and sessions — it is the part of a sharded job's identity
    that stands in for the payload.
    """
    hasher = hashlib.sha256()
    for item in items:
        hasher.update(repr(item).encode("utf-8"))
    return hasher.hexdigest()[:length]
