"""Evaluation jobs: the unit of work the experiment engine schedules.

An :class:`EvalJob` is a *pure function of its key*: the same
``(kind, model, dataset, method, config-digest, num_samples, seed,
quantized, extra)`` tuple always produces bit-identical results, no
matter which process executes it or in what order.  That property is
what makes deduplication, content-addressed caching, and parallel
execution safe.

Job kinds are extensible: ``eval`` (the standard
:func:`repro.eval.runner.evaluate` cell) is built in, and other modules
register additional kinds with :func:`register_job_kind` — the
Fig. 2(b) similarity capture in :mod:`repro.eval.similarity_stats`,
sharded trace simulation in :mod:`repro.accel.sim_jobs`, and
per-sample-span evaluation shards in :mod:`repro.eval.eval_shards`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable

import numpy as np

from repro.config import DEFAULT_CONFIG, FocusConfig

ENGINE_CACHE_VERSION = 1
"""Bumped whenever job payloads change shape; part of every job id so
stale on-disk cache entries can never be misread."""


def config_digest(config: FocusConfig) -> str:
    """Stable short digest of a :class:`FocusConfig`.

    Two configs with equal field values always digest identically,
    regardless of construction order; the retention schedule (a dict)
    is canonicalized by sorting.
    """
    payload = []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        payload.append((f.name, value))
    digest = hashlib.sha256(repr(tuple(payload)).encode("utf-8"))
    return digest.hexdigest()[:16]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive an independent integer seed from ``(seed, *labels)``.

    The same construction as :func:`repro.utils.rng.rng_for`, exposed
    as an integer so jobs can seed foreign RNGs (e.g. NumPy's legacy
    global state) deterministically from their own key.  Derivation is
    order-independent across workers: only the key matters.
    """
    digest = hashlib.sha256(repr((seed,) + labels).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True, eq=False)
class EvalJob:
    """One schedulable evaluation, identified entirely by its key.

    Attributes:
        model: Model registry name.
        dataset: Dataset profile name.
        method: Method registry name (or a kind-specific label).
        num_samples: Samples evaluated by the job.
        seed: Experiment seed.  Sample streams are derived from
            ``(seed, dataset, sample_index)`` by the RNG layer, *not*
            from the method, so accuracy comparisons between methods
            stay paired exactly as the paper's tables require.
        config: Focus hyper-parameters; keyed by content digest.
        quantized: Run on the INT8-quantized model with activation
            rounding (Table IV's int8 arms).
        kind: Executor kind; ``eval`` is the standard cell.
        extra: Kind-specific parameters as a tuple of ``(name, value)``
            pairs (must be hashable and ``repr``-stable).
        provider: Dotted module path that registers this job's kind
            (via :func:`register_job_kind`).  Lets worker processes
            started with ``spawn`` — which import nothing beyond this
            module — load the executor for any custom kind.  Not part
            of the job's identity.
        payload: Opaque data shipped to the executor alongside the job
            (e.g. a sim shard's traces).  Not part of the job's
            identity: any key field that depends on the payload must be
            a *content digest* of it (``sim`` jobs key on a trace
            digest), so equal keys still mean interchangeable results.
    """

    model: str
    dataset: str
    method: str
    num_samples: int
    seed: int
    config: FocusConfig = DEFAULT_CONFIG
    quantized: bool = False
    kind: str = "eval"
    extra: tuple[tuple[str, object], ...] = ()
    provider: str = ""
    payload: Any = field(default=None, repr=False, compare=False)

    @cached_property
    def key(self) -> tuple:
        """Hashable identity: equal keys mean interchangeable results."""
        return (
            self.kind,
            self.model,
            self.dataset,
            self.method,
            self.num_samples,
            self.seed,
            config_digest(self.config),
            self.quantized,
            self.extra,
        )

    @cached_property
    def job_id(self) -> str:
        """Content address used for cache filenames."""
        payload = repr((ENGINE_CACHE_VERSION,) + self.key)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    @property
    def extra_map(self) -> dict[str, object]:
        """The ``extra`` pairs as a dict, for kind executors."""
        return dict(self.extra)

    @property
    def sample_seed(self) -> int:
        """Seed handed to the dataset generator.

        This is the bare experiment seed: :func:`repro.utils.rng.rng_for`
        already namespaces every sample stream by
        ``(seed, "dataset", dataset, sample_index)``, so per-job
        derivation happens at the RNG layer while methods sharing a
        ``(dataset, seed)`` pair still see identical items.
        """
        return self.seed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvalJob):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def describe(self) -> str:
        """Short human-readable label for progress lines."""
        quant = " int8" if self.quantized else ""
        kind = f"[{self.kind}] " if self.kind != "eval" else ""
        return (
            f"{kind}{self.method}{quant} on {self.model}/{self.dataset} "
            f"(n={self.num_samples}, seed={self.seed})"
        )


JobExecutor = Callable[[EvalJob], Any]

JOB_EXECUTORS: dict[str, JobExecutor] = {}
"""Kind name -> executor.  Populated at import time by this module
(``eval``) and lazily by kind-providing modules."""


def register_job_kind(kind: str) -> Callable[[JobExecutor], JobExecutor]:
    """Decorator registering an executor for a job kind."""

    def deco(fn: JobExecutor) -> JobExecutor:
        JOB_EXECUTORS[kind] = fn
        return fn

    return deco


@register_job_kind("eval")
def _execute_eval(job: EvalJob) -> Any:
    from repro.eval.runner import evaluate

    return evaluate(
        job.model,
        job.dataset,
        job.method,
        job.num_samples,
        job.sample_seed,
        config=job.config,
        quantized=job.quantized,
    )


DEFAULT_KIND_PROVIDERS = (
    "repro.eval.similarity_stats",
    "repro.accel.sim_jobs",
    "repro.eval.eval_shards",
)
"""Modules imported when an unregistered kind is encountered and the
job names no provider of its own."""


def _ensure_kind_loaded(kind: str, provider: str = "") -> None:
    """Import the module(s) that register non-core job kinds.

    Worker processes started with ``spawn`` import this module fresh;
    lazily pulling in the job's declared provider (or the built-in
    provider list) keeps them able to execute any job without the
    parent's import history.
    """
    if kind in JOB_EXECUTORS:
        return
    import importlib

    modules = (provider,) if provider else DEFAULT_KIND_PROVIDERS
    for module in modules:
        importlib.import_module(module)


def execute_job(job: EvalJob) -> Any:
    """Run one job to completion (worker-process entry point).

    The process-global NumPy RNG is seeded from ``(seed, job key)``
    first, so even code that (incorrectly) reaches for global
    randomness behaves identically under any worker count and
    scheduling order.
    """
    np.random.seed(derive_seed(job.seed, *job.key) % (2**32))
    _ensure_kind_loaded(job.kind, job.provider)
    try:
        executor = JOB_EXECUTORS[job.kind]
    except KeyError:
        raise KeyError(
            f"unknown job kind {job.kind!r}; "
            f"available: {sorted(JOB_EXECUTORS)}"
        ) from None
    return executor(job)
