"""The experiment engine: dedupe, cache, and execute job batches.

:class:`ExperimentEngine` takes a batch of :class:`~repro.engine.jobs.
EvalJob` objects — possibly collected from *several* experiments —
collapses duplicates by key, serves what it can from the result cache,
and runs the remainder either in-process (``workers=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Progress events
(``cache-hit`` / ``started`` / ``completed``, over every job kind the
batch schedules: whole-cell ``eval``, per-span ``eval-shard``, sharded
``sim``, ``fig2b``, …) stream to an optional callback as jobs finish.
With ``eval_shards`` set, whole-cell ``eval`` jobs are further split
into per-sample-span shards (:mod:`repro.eval.eval_shards`) that
execute, dedupe, and cache individually and stream ``eval-shard-done``
partial results as they land.

Execution is fault tolerant (see :mod:`repro.engine.faults`): a
:class:`~repro.engine.faults.RetryPolicy` re-dispatches failed
attempts with deterministic backoff, per-job wall-clock timeouts
reclaim hung workers, and a worker crash (``BrokenProcessPool``) no
longer aborts the batch — the pool is respawned and only the in-flight
cohort is re-dispatched, one job at a time so a repeat crash indicts
exactly one job, which is then quarantined as *poisoned*.  In
partial-results mode (``run(..., on_error="collect")``) permanently
failed jobs map to structured :class:`~repro.engine.faults.JobFailure`
records instead of raising, and the retry lifecycle streams as
``retrying`` / ``gave-up`` / ``quarantined`` progress events.

The engine is safe to drive from several threads at once — the async
serving layer (:mod:`repro.serve`) runs many concurrent
:meth:`ExperimentEngine.run` batches against one engine and one
:class:`~repro.engine.cache.ResultCache`.  Every emitted
:class:`ProgressEvent` carries an engine-wide monotonic sequence
number; per-batch callbacks are passed to :meth:`run` itself, while
:meth:`subscribe` attaches engine-wide observers that see the
interleaved stream of every batch in sequence order.

Because every job is a pure function of its key (see
:mod:`repro.engine.jobs`), parallel execution is bit-identical to
serial execution: worker count, completion order, retries, and crash
recovery influence only wall-clock time, never results.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine.cache import MISS, ResultCache
from repro.engine.faults import (
    DEFAULT_RETRY_POLICY,
    JobFailure,
    JobTimeout,
    PoisonedJob,
    RetryPolicy,
    run_job_attempt,
    shard_failure,
)
from repro.engine.jobs import EvalJob

logger = logging.getLogger("repro.engine")


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed scheduling event.

    Attributes:
        action: ``"cache-hit"``, ``"started"``, ``"completed"``,
            ``"eval-shard-done"`` (a sharded cell's span finished —
            streamed *in addition to* the span job's own
            cache-hit/completed event), ``"retrying"`` (a failed,
            timed-out, or crash-interrupted attempt is being
            re-dispatched), ``"gave-up"`` (the job's attempt budget is
            exhausted), or ``"quarantined"`` (the job repeatedly
            killed its worker and is poisoned).
        job: The job the event refers to.
        completed: Jobs finished so far (including cache hits and
            permanent failures).
        total: Schedulable units in this batch (sharded cells count
            their spans, not the merged parent).
        elapsed_s: Seconds since the batch started.
        detail: Action-specific payload; for ``eval-shard-done`` the
            running partial result of the shard's parent cell
            (``parent``, ``shards_done``, ``shards_total``,
            ``samples``, ``accuracy``, ``sparsity`` — see
            :meth:`repro.eval.eval_shards.ShardProgress.as_detail`);
            for ``retrying`` the attempt counters, backoff, and
            reason; for ``gave-up``/``quarantined`` the
            :meth:`~repro.engine.faults.JobFailure.as_detail` payload.
        seq: Engine-wide monotonic sequence number, assigned under the
            emit lock.  Events observed by any single callback are
            strictly increasing in ``seq``; with several concurrent
            batches, engine-wide subscribers can totally order the
            interleaved stream by it.
    """

    action: str
    job: EvalJob
    completed: int
    total: int
    elapsed_s: float = 0.0
    detail: Any = None
    seq: int = 0


ProgressCallback = Callable[[ProgressEvent], None]


def _warm_up_probe() -> None:
    """Picklable no-op submitted by :meth:`ExperimentEngine.warm_up`."""
    return None


@dataclass
class EngineStats:
    """Cumulative scheduling counters (one engine's lifetime).

    ``executed`` counts actual evaluation calls; the acceptance
    criterion "a warm-cache re-run performs zero new ``evaluate()``
    calls" is checked against it — a job executed by a fleet peer
    counts in ``remote_jobs`` instead, never in ``executed``.
    ``retries`` counts re-dispatches of any flavor (failed attempt,
    timeout, crash cohort, unreachable peer), ``timeouts`` hung
    attempts reclaimed by killing the pool, ``pool_crashes`` pool
    teardowns forced by a worker crash, ``peer_failures`` peer batches
    that degraded to local execution, and ``failed`` / ``quarantined``
    permanently failed and poisoned jobs.
    """

    jobs_submitted: int = 0
    jobs_unique: int = 0
    jobs_deduped: int = 0
    cache_hits: int = 0
    executed: int = 0
    remote_jobs: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_crashes: int = 0
    peer_failures: int = 0
    failed: int = 0
    quarantined: int = 0
    wall_s: float = 0.0
    executed_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_unique": self.jobs_unique,
            "jobs_deduped": self.jobs_deduped,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "remote_jobs": self.remote_jobs,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_crashes": self.pool_crashes,
            "peer_failures": self.peer_failures,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "wall_s": self.wall_s,
            "executed_by_kind": dict(self.executed_by_kind),
        }

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        """Counters accumulated since an earlier snapshot."""
        by_kind = {
            kind: count - earlier.executed_by_kind.get(kind, 0)
            for kind, count in self.executed_by_kind.items()
            if count - earlier.executed_by_kind.get(kind, 0)
        }
        return EngineStats(
            jobs_submitted=self.jobs_submitted - earlier.jobs_submitted,
            jobs_unique=self.jobs_unique - earlier.jobs_unique,
            jobs_deduped=self.jobs_deduped - earlier.jobs_deduped,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            remote_jobs=self.remote_jobs - earlier.remote_jobs,
            retries=self.retries - earlier.retries,
            timeouts=self.timeouts - earlier.timeouts,
            pool_crashes=self.pool_crashes - earlier.pool_crashes,
            peer_failures=self.peer_failures - earlier.peer_failures,
            failed=self.failed - earlier.failed,
            quarantined=self.quarantined - earlier.quarantined,
            wall_s=self.wall_s - earlier.wall_s,
            executed_by_kind=by_kind,
        )

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            jobs_submitted=self.jobs_submitted,
            jobs_unique=self.jobs_unique,
            jobs_deduped=self.jobs_deduped,
            cache_hits=self.cache_hits,
            executed=self.executed,
            remote_jobs=self.remote_jobs,
            retries=self.retries,
            timeouts=self.timeouts,
            pool_crashes=self.pool_crashes,
            peer_failures=self.peer_failures,
            failed=self.failed,
            quarantined=self.quarantined,
            wall_s=self.wall_s,
            executed_by_kind=dict(self.executed_by_kind),
        )


@dataclass
class _JobState:
    """One pending job's scheduling state across attempts.

    ``dispatches`` counts every hand-off to a worker (it is the
    attempt number fault plans see, so an injected "kill on attempt 1"
    cannot re-fire after an unattributed cohort re-dispatch), while
    ``attempts`` counts only *attributed* failures and is what the
    retry budget is charged against.  ``crash_attempts`` tracks
    consecutive worker crashes with exact (singleton) attribution —
    reaching ``RetryPolicy.max_crash_attempts`` quarantines the job.
    """

    job: EvalJob
    started: bool = False
    dispatches: int = 0
    attempts: int = 0
    crash_attempts: int = 0
    tracebacks: list[str] = field(default_factory=list)
    not_before: float = 0.0  # monotonic clock gate for backoff
    deadline: float | None = None  # monotonic wall-clock budget


class ExperimentEngine:
    """Schedules deduplicated job batches over a cache and worker pool.

    Args:
        workers: Process-pool size; ``1`` executes in-process (still
            through the cache).
        cache: Result cache; defaults to a fresh memory-only cache.
        progress: Optional streaming callback invoked from the
            scheduling process as jobs hit the cache, start, and
            complete.
        sim_shards: Shards to split each trace-simulation batch into
            when a driver routes :func:`repro.accel.simulator.
            simulate_many` through this engine (the CLI's
            ``--sim-shards``); ``None`` means one shard per worker.
        eval_shards: Samples per evaluation shard (the CLI's
            ``--eval-shards``).  When set, whole-cell ``eval`` jobs
            that miss the cache are split into per-sample-span
            ``eval-shard`` jobs (:mod:`repro.eval.eval_shards`) that
            parallelize on the worker pool and stream
            ``eval-shard-done`` partial results; the spans are
            re-folded in global sample order, bit-identical to the
            serial cell for any worker count and span size.  Span keys
            exclude the cell's total sample count, so growing a cell
            re-executes only its new suffix spans.  ``None`` (default)
            schedules whole cells.
        retry_policy: How failed attempts are retried (the CLI's
            ``--retries`` / ``--retry-backoff``).  Defaults to
            :data:`~repro.engine.faults.DEFAULT_RETRY_POLICY` — no
            exception retries, but worker-crash recovery and the
            poison-quarantine threshold stay active.
        job_timeout_s: Per-job wall-clock budget, measured from
            dispatch (the CLI's ``--job-timeout``).  Enforced on the
            worker pool: a hung attempt is reclaimed by tearing the
            pool down (running futures cannot be cancelled), innocent
            in-flight jobs are re-dispatched without penalty, and the
            timed-out job is retried or failed per the retry policy.
            ``None`` (default) disables the budget.
        peers: Fleet peer base URLs (the CLI's ``--peers``) — other
            ``repro serve`` processes exposing ``POST /jobs``.  Each
            batch is partitioned by rendezvous hashing on job id over
            peers + the local engine (see :mod:`repro.remote.
            dispatch`), remote shares execute concurrently with the
            local one, and an unreachable peer's share is requeued for
            local execution without penalty — a fleet of any size
            degrades gracefully to, and stays bit-identical with,
            local-only execution.

    The process pool is created lazily on the first parallel batch and
    reused across :meth:`run` calls — a driver that runs many small
    sharded-simulation batches pays the pool spawn cost once, not per
    batch.  :meth:`close` (or the context-manager protocol) releases
    the workers; a closed engine recreates the pool on next use.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        sim_shards: int | None = None,
        eval_shards: int | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout_s: float | None = None,
        peers: Iterable[str] | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        if sim_shards is not None and sim_shards < 1:
            raise ValueError(f"sim_shards must be >= 1, got {sim_shards}")
        self.sim_shards = sim_shards
        if eval_shards is not None and eval_shards < 1:
            raise ValueError(
                f"eval_shards must be >= 1, got {eval_shards}"
            )
        self.eval_shards = eval_shards
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else DEFAULT_RETRY_POLICY
        )
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError(
                f"job_timeout_s must be > 0, got {job_timeout_s}"
            )
        self.job_timeout_s = job_timeout_s
        self.fleet = None
        peer_urls = list(peers) if peers is not None else []
        if peer_urls:
            # Lazy: the engine layer stays importable without the
            # remote package; only a fleet run needs it.
            from repro.remote.dispatch import FleetDispatcher

            self.fleet = FleetDispatcher(peer_urls)
        self.stats = EngineStats()
        self._pool: ProcessPoolExecutor | None = None
        # One reentrant lock guards the counters, the pool handle, and
        # event emission, so concurrent run() threads (the async
        # serving layer) stay consistent and sequence numbers stay
        # monotonic per observer.
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._subscribers: dict[int, ProgressCallback] = {}
        self._subscriber_tokens = itertools.count(1)

    def subscribe(self, callback: ProgressCallback) -> int:
        """Attach an engine-wide progress observer; returns a token.

        Subscribers see every event from every batch (all concurrent
        :meth:`run` calls), delivered under the emit lock in strictly
        increasing ``seq`` order.  A subscriber that raises is dropped
        (with a logged warning) — a broken monitor must not kill
        unrelated runs.  Per-batch streaming belongs in :meth:`run`'s
        ``progress`` argument instead.
        """
        with self._lock:
            token = next(self._subscriber_tokens)
            self._subscribers[token] = callback
            return token

    def unsubscribe(self, token: int) -> None:
        """Detach a :meth:`subscribe` observer (idempotent)."""
        with self._lock:
            self._subscribers.pop(token, None)

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent) and drain
        any pending remote-cache publishes."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        flush = getattr(self.cache, "flush_remote", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown; atexit reaps the workers

    # -- internals ---------------------------------------------------

    def _note_executed(self, job: EvalJob) -> None:
        with self._lock:
            self.stats.executed += 1
            self.stats.executed_by_kind[job.kind] = (
                self.stats.executed_by_kind.get(job.kind, 0) + 1
            )

    def _note_retry(self) -> None:
        with self._lock:
            self.stats.retries += 1

    def _note_pool_crash(self) -> None:
        with self._lock:
            self.stats.pool_crashes += 1

    @staticmethod
    def _format_exception(exc: BaseException) -> str:
        return "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )

    def _emit(
        self, action: str, job: EvalJob, completed: int, total: int,
        start: float, detail: Any = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        """Build one sequenced event and deliver it to every observer.

        ``progress`` is the batch-local callback handed to :meth:`run`
        (exceptions propagate — the async layer cancels a run by
        raising from it), ``self.progress`` the engine-wide one from
        the constructor.  :meth:`subscribe` observers are notified
        under the emit lock so each sees a strictly ``seq``-ordered
        stream even across concurrent batches; a subscriber that
        raises is dropped with a logged warning.
        """
        if (
            progress is None
            and self.progress is None
            and not self._subscribers
        ):
            return
        with self._lock:
            event = ProgressEvent(
                action=action, job=job, completed=completed, total=total,
                elapsed_s=time.perf_counter() - start, detail=detail,
                seq=next(self._seq),
            )
            for token, callback in list(self._subscribers.items()):
                try:
                    callback(event)
                except Exception:
                    self._subscribers.pop(token, None)
                    logger.warning(
                        "dropping progress subscriber %d after its "
                        "callback raised",
                        token, exc_info=True,
                    )
        for callback in (progress, self.progress):
            if callback is not None:
                callback(event)

    def _record_permanent(
        self, state: _JobState, kind: str, exc: BaseException | None,
        results: dict[EvalJob, Any], failures: dict[EvalJob, JobFailure],
        total: int, start: float,
        progress: ProgressCallback | None, on_error: str,
    ) -> None:
        """Register a job's terminal failure; raise in raise-mode."""
        attempts = (
            state.crash_attempts if kind == "poisoned" else state.attempts
        )
        failure = JobFailure(
            job=state.job, kind=kind, attempts=attempts,
            tracebacks=tuple(state.tracebacks),
        )
        with self._lock:
            self.stats.failed += 1
            if kind == "poisoned":
                self.stats.quarantined += 1
        failures[state.job] = failure
        action = "quarantined" if kind == "poisoned" else "gave-up"
        self._emit(
            action, state.job, len(results) + len(failures), total,
            start, detail=failure.as_detail(), progress=progress,
        )
        if on_error == "raise":
            raise exc if exc is not None else PoisonedJob(failure)

    def _run_serial(
        self, pending: list[_JobState], results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> None:
        for state in pending:
            self._execute_serial_state(
                state, results, failures, total, start,
                on_done, progress, on_error,
            )

    def _execute_serial_state(
        self, state: _JobState, results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None,
        progress: ProgressCallback | None, on_error: str,
    ) -> None:
        """Drive one job (possibly mid-retry, when the pool degraded
        to in-process execution) to completion or permanent failure."""
        policy = self.retry_policy
        while True:
            if not state.started:
                state.started = True
                self._emit(
                    "started", state.job, len(results) + len(failures),
                    total, start, progress=progress,
                )
            state.dispatches += 1
            try:
                payload = run_job_attempt(
                    state.job, state.dispatches, in_worker=False
                )
            except Exception as exc:
                state.attempts += 1
                state.crash_attempts = 0
                state.tracebacks.append(self._format_exception(exc))
                kind = (
                    "timeout" if isinstance(exc, JobTimeout) else "error"
                )
                if not policy.should_retry(exc, state.attempts):
                    self._record_permanent(
                        state, kind, exc, results, failures, total,
                        start, progress, on_error,
                    )
                    return
                delay = policy.delay_s(state.job, state.attempts)
                self._note_retry()
                self._emit(
                    "retrying", state.job,
                    len(results) + len(failures), total, start,
                    detail={
                        "attempt": state.attempts,
                        "max_attempts": policy.max_attempts,
                        "delay_s": delay,
                        "reason": f"{type(exc).__name__}: {exc}",
                    },
                    progress=progress,
                )
                if delay > 0:
                    time.sleep(delay)
                continue
            self._note_executed(state.job)
            self.cache.put(state.job, payload)
            results[state.job] = payload
            done = len(results) + len(failures)
            self._emit(
                "completed", state.job, done, total, start,
                progress=progress,
            )
            if on_done is not None:
                on_done(state.job, payload, done)
            return

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _respawn_pool(self) -> ProcessPoolExecutor | None:
        """(Re)build the pool; ``None`` means degrade to serial."""
        try:
            return self._ensure_pool()
        except Exception:
            logger.warning(
                "worker pool could not be rebuilt; degrading to serial "
                "in-process execution", exc_info=True,
            )
            return None

    def _discard_pool(
        self, pool: ProcessPoolExecutor, terminate: bool = False
    ) -> None:
        """Drop a broken/poisoned pool so the next use starts fresh.

        ``terminate`` additionally SIGTERMs the worker processes —
        required when reclaiming a hung worker, whose running future
        can never be cancelled.
        """
        with self._lock:
            if self._pool is pool:
                self._pool = None
        processes = list(
            (getattr(pool, "_processes", None) or {}).values()
        )
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        if terminate:
            for proc in processes:
                try:
                    proc.terminate()
                except Exception:
                    pass

    def warm_up(self) -> None:
        """Start the worker pool now instead of on the first batch.

        Idempotent; a no-op for ``workers=1``.  Under the default
        ``fork`` start method every worker process is forked at the
        pool's first submission, and forked children inherit all open
        file descriptors — including accepted client sockets, whose
        inherited duplicates would keep a connection from ever
        delivering EOF after the parent closes it.  The serving
        frontend therefore warms the pool *before* it opens its
        listening socket.
        """
        if self.workers > 1:
            self._ensure_pool().submit(_warm_up_probe).result()

    def _run_pool(
        self, pending: list[_JobState], results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> None:
        """The resilient dispatch loop.

        Jobs are dispatched through a bounded in-flight window of
        ``workers`` futures (so dispatch ≈ start, which keeps per-job
        deadlines honest and crash cohorts small), collected as they
        finish, and retried per the engine's :class:`RetryPolicy`.
        A worker crash tears the pool down and re-dispatches the
        in-flight cohort through an *isolation* queue — one job at a
        time — so a repeat crash indicts exactly one job; hung jobs
        are reclaimed by terminating the pool and re-dispatching the
        innocent bystanders without penalty.  If the pool cannot be
        (re)built at all, the remaining jobs degrade to serial
        in-process execution.
        """
        policy = self.retry_policy
        ready: deque[_JobState] = deque(pending)
        isolation: deque[_JobState] = deque()
        inflight: dict[Any, _JobState] = {}
        pool: ProcessPoolExecutor | None = None

        def completed_count() -> int:
            return len(results) + len(failures)

        def dispatch(state: _JobState) -> None:
            if not state.started:
                state.started = True
                self._emit(
                    "started", state.job, completed_count(), total,
                    start, progress=progress,
                )
            future = pool.submit(
                run_job_attempt, state.job, state.dispatches + 1, True
            )
            state.dispatches += 1
            state.deadline = (
                time.monotonic() + self.job_timeout_s
                if self.job_timeout_s is not None else None
            )
            inflight[future] = state

        def emit_retrying(
            state: _JobState, delay: float, reason: str
        ) -> None:
            self._note_retry()
            self._emit(
                "retrying", state.job, completed_count(), total, start,
                detail={
                    "attempt": state.attempts,
                    "max_attempts": policy.max_attempts,
                    "delay_s": delay,
                    "reason": reason,
                },
                progress=progress,
            )

        def settle(state: _JobState, payload: Any) -> None:
            self._note_executed(state.job)
            self.cache.put(state.job, payload)
            results[state.job] = payload
            self._emit(
                "completed", state.job, completed_count(), total, start,
                progress=progress,
            )
            if on_done is not None:
                on_done(state.job, payload, completed_count())

        def handle_error(state: _JobState, exc: BaseException) -> None:
            state.attempts += 1
            state.crash_attempts = 0
            state.deadline = None
            state.tracebacks.append(self._format_exception(exc))
            kind = "timeout" if isinstance(exc, JobTimeout) else "error"
            if not policy.should_retry(exc, state.attempts):
                self._record_permanent(
                    state, kind, exc, results, failures, total, start,
                    progress, on_error,
                )
                return
            delay = policy.delay_s(state.job, state.attempts)
            state.not_before = time.monotonic() + delay
            emit_retrying(state, delay, f"{type(exc).__name__}: {exc}")
            ready.append(state)

        def collect(future: Any, state: _JobState) -> bool:
            """Fold one finished future in; True if the pool crashed."""
            try:
                payload = future.result()
            except BrokenProcessPool:
                return True
            except Exception as exc:
                handle_error(state, exc)
                return False
            settle(state, payload)
            return False

        def requeue_inflight(
            target: deque[_JobState], front: bool = True
        ) -> None:
            """Re-dispatch every in-flight job without penalty."""
            states = list(inflight.values())
            for future in list(inflight):
                future.cancel()
            inflight.clear()
            for state in states:
                state.deadline = None
            if front:
                for state in reversed(states):
                    target.appendleft(state)
            else:
                target.extend(states)

        try:
            while ready or isolation or inflight:
                if pool is None and (ready or isolation):
                    pool = self._respawn_pool()
                    if pool is None:
                        # Graceful degradation: finish everything
                        # serially, preserving per-job retry state.
                        leftovers = list(isolation) + list(ready)
                        isolation.clear()
                        ready.clear()
                        for state in leftovers:
                            state.deadline = None
                            self._execute_serial_state(
                                state, results, failures, total, start,
                                on_done, progress, on_error,
                            )
                        return

                # -- dispatch ---------------------------------------
                now = time.monotonic()
                gate: float | None = None  # earliest backoff release
                try:
                    if isolation:
                        # Crash-cohort attribution: dispatch exactly
                        # one suspect at a time, alone in the pool.
                        if not inflight:
                            state = isolation[0]
                            if state.not_before <= now:
                                dispatch(state)
                                isolation.popleft()
                            else:
                                gate = state.not_before
                    else:
                        blocked: list[_JobState] = []
                        try:
                            while (
                                ready
                                and len(inflight) < self.workers
                            ):
                                state = ready[0]
                                if state.not_before <= now:
                                    dispatch(state)
                                    ready.popleft()
                                else:
                                    blocked.append(ready.popleft())
                                    if (
                                        gate is None
                                        or state.not_before < gate
                                    ):
                                        gate = state.not_before
                        finally:
                            for state in reversed(blocked):
                                ready.appendleft(state)
                except BrokenProcessPool:
                    # The pool broke while idle (a worker died between
                    # batches): recycle it and re-dispatch in-flight
                    # jobs without penalty.
                    self._note_pool_crash()
                    requeue_inflight(ready)
                    self._discard_pool(pool)
                    pool = None
                    continue

                # -- wait -------------------------------------------
                if not inflight:
                    if gate is not None:
                        pause = max(0.0, gate - time.monotonic())
                        time.sleep(min(pause, 0.5))
                    continue
                timeout = None
                if self.job_timeout_s is not None:
                    nearest = min(
                        (
                            s.deadline for s in inflight.values()
                            if s.deadline is not None
                        ),
                        default=None,
                    )
                    if nearest is not None:
                        timeout = max(
                            0.0, nearest - time.monotonic()
                        )
                if gate is not None:
                    pause = max(0.0, gate - time.monotonic())
                    timeout = (
                        pause if timeout is None
                        else min(timeout, pause)
                    )
                done, _ = wait(
                    set(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )

                # -- collect ----------------------------------------
                crashed: list[_JobState] = []
                for future in done:
                    state = inflight.pop(future)
                    if collect(future, state):
                        crashed.append(state)

                if crashed:
                    # A worker crash kills the whole pool: everything
                    # still in flight died with it and joins the
                    # cohort.
                    self._note_pool_crash()
                    crashed.extend(inflight.values())
                    for future in list(inflight):
                        future.cancel()
                    inflight.clear()
                    self._discard_pool(pool)
                    pool = None
                    if len(crashed) == 1:
                        # Singleton cohort: attribution is exact.
                        state = crashed[0]
                        state.deadline = None
                        state.crash_attempts += 1
                        state.tracebacks.append(
                            "worker crashed (BrokenProcessPool) on "
                            f"dispatch {state.dispatches}"
                        )
                        if (
                            state.crash_attempts
                            >= policy.max_crash_attempts
                        ):
                            self._record_permanent(
                                state, "poisoned", None, results,
                                failures, total, start, progress,
                                on_error,
                            )
                        else:
                            delay = policy.delay_s(
                                state.job, state.crash_attempts
                            )
                            state.not_before = (
                                time.monotonic() + delay
                            )
                            emit_retrying(state, delay, "worker-crash")
                            isolation.append(state)
                    else:
                        # Cohort of several: the culprit is unknown,
                        # so nobody is charged; re-dispatch one at a
                        # time so a repeat crash indicts exactly one
                        # job.
                        for state in crashed:
                            state.deadline = None
                            emit_retrying(state, 0.0, "worker-lost")
                            isolation.append(state)
                    continue

                # -- timeouts ---------------------------------------
                if self.job_timeout_s is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, state)
                        for future, state in inflight.items()
                        if state.deadline is not None
                        and now >= state.deadline
                    ]
                    hung: list[_JobState] = []
                    for future, state in expired:
                        if future.cancel():
                            # Never started: back in line, no penalty.
                            inflight.pop(future)
                            state.deadline = None
                            ready.appendleft(state)
                            continue
                        inflight.pop(future)
                        hung.append(state)
                    if hung:
                        # A running future cannot be cancelled:
                        # reclaim the workers by terminating the pool,
                        # then re-dispatch the innocent in-flight jobs
                        # without penalty.
                        with self._lock:
                            self.stats.timeouts += len(hung)
                        requeue_inflight(ready)
                        self._discard_pool(pool, terminate=True)
                        pool = None
                        for state in hung:
                            state.attempts += 1
                            state.crash_attempts = 0
                            state.deadline = None
                            exc = JobTimeout(
                                f"{state.job.describe()} exceeded "
                                f"{self.job_timeout_s:g}s wall clock "
                                f"(attempt {state.attempts})"
                            )
                            state.tracebacks.append(
                                f"JobTimeout: {exc}"
                            )
                            if policy.should_retry(
                                exc, state.attempts
                            ):
                                delay = policy.delay_s(
                                    state.job, state.attempts
                                )
                                state.not_before = (
                                    time.monotonic() + delay
                                )
                                emit_retrying(state, delay, "timeout")
                                ready.append(state)
                            else:
                                self._record_permanent(
                                    state, "timeout", exc, results,
                                    failures, total, start, progress,
                                    on_error,
                                )
        except BaseException:
            # Quiesce the batch before propagating (what the old
            # pool-per-run `with` block guaranteed): no orphan futures
            # keep the persistent pool busy behind the caller's back.
            for future in inflight:
                future.cancel()
            wait(set(inflight))
            raise

    def _run_local(
        self, pending: list[_JobState], results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> None:
        """Execute a share on this machine (serial or pool).

        A single pending job still goes through the pool when a
        timeout is set — wall-clock budgets are unenforceable
        in-process.
        """
        if self.workers == 1 or (
            len(pending) == 1 and self.job_timeout_s is None
        ):
            self._run_serial(
                pending, results, failures, total, start, on_done,
                progress, on_error,
            )
        else:
            self._run_pool(
                pending, results, failures, total, start, on_done,
                progress, on_error,
            )

    def _run_fleet(
        self, pending: list[_JobState], results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> None:
        """Partition the batch over the fleet and run shares
        concurrently.

        Rendezvous hashing owns each job to a peer or the local
        engine; peer shares ship as one ``POST /jobs`` batch each on
        their own thread while the local share runs on this machine's
        serial/pool path.  Any job a peer cannot deliver — the peer is
        unreachable, an entry is missing, a digest fails verification,
        or the peer reports a job-level failure — is requeued for
        local execution *without penalty* (its retry budget is
        untouched, exactly like a crashed worker's cohort), so the
        fleet degrades to local-only and results stay bit-identical to
        a serial run by construction.
        """
        from repro.remote.dispatch import LOCAL_NODE

        by_job = {state.job: state for state in pending}
        shares = self.fleet.partition(by_job)
        local_states = [
            by_job[job] for job in shares.pop(LOCAL_NODE, [])
        ]
        requeued: list[_JobState] = []
        requeue_lock = threading.Lock()
        errors: list[BaseException] = []

        def run_share(url: str, jobs: list[EvalJob]) -> None:
            states = [by_job[job] for job in jobs]
            try:
                self._run_peer_share(
                    url, states, results, failures, total, start,
                    on_done, progress, requeued, requeue_lock,
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised
                with requeue_lock:
                    errors.append(exc)
                    requeued.extend(
                        state for state in states
                        if state.job not in results
                        and state.job not in failures
                    )

        threads = [
            threading.Thread(
                target=run_share, args=(url, jobs),
                name=f"repro-fleet-{url}", daemon=True,
            )
            for url, jobs in shares.items()
        ]
        for thread in threads:
            thread.start()
        try:
            if local_states:
                self._run_local(
                    local_states, results, failures, total, start,
                    on_done, progress, on_error,
                )
        finally:
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        if requeued:
            self._run_local(
                requeued, results, failures, total, start, on_done,
                progress, on_error,
            )

    def _run_peer_share(
        self, url: str, states: list[_JobState],
        results: dict[EvalJob, Any],
        failures: dict[EvalJob, JobFailure], total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None,
        progress: ProgressCallback | None,
        requeued: list[_JobState], requeue_lock: threading.Lock,
    ) -> None:
        """Ship one peer's share and fold its results in."""
        from repro.engine.faults import PeerUnreachable
        from repro.remote import protocol

        def completed_count() -> int:
            return len(results) + len(failures)

        def requeue(
            batch: list[_JobState], reason: str
        ) -> None:
            # Penalty-free, like a crashed worker's cohort: the batch
            # counts one peer failure, not one retry per job — the
            # jobs did nothing wrong.
            with self._lock:
                self.stats.peer_failures += 1
            for state in batch:
                self._emit(
                    "retrying", state.job, completed_count(), total,
                    start,
                    detail={
                        "attempt": state.attempts,
                        "max_attempts": self.retry_policy.max_attempts,
                        "delay_s": 0.0,
                        "reason": reason,
                        "peer": url,
                    },
                    progress=progress,
                )
            with requeue_lock:
                requeued.extend(batch)

        for state in states:
            state.started = True
            self._emit(
                "started", state.job, completed_count(), total, start,
                detail={"peer": url}, progress=progress,
            )
        try:
            entries = self.fleet.peer(url).execute(
                [state.job for state in states]
            )
        except PeerUnreachable as exc:
            requeue(states, f"peer-unreachable: {exc}")
            return

        leftovers: list[_JobState] = []
        for state in states:
            entry = entries.get(state.job.job_id)
            payload: Any = None
            delivered = False
            if (
                isinstance(entry, tuple) and len(entry) == 3
                and entry[0] == "ok"
                and protocol.payload_digest(entry[2]) == entry[1]
            ):
                try:
                    payload = protocol.decode_payload(entry[2])
                    delivered = True
                except Exception:
                    delivered = False
            if not delivered:
                # Missing entry, job-level failure, or corrupt bytes:
                # local execution is the authoritative fallback for
                # all of them (it reproduces failures with the
                # coordinator's own retry policy and records).
                leftovers.append(state)
                continue
            with self._lock:
                self.stats.remote_jobs += 1
            self.cache.put(state.job, payload, publish=False)
            results[state.job] = payload
            done = completed_count()
            self._emit(
                "completed", state.job, done, total, start,
                detail={"peer": url}, progress=progress,
            )
            if on_done is not None:
                on_done(state.job, payload, done)
        if leftovers:
            requeue(leftovers, "peer-incomplete")

    # -- public API --------------------------------------------------

    def run(
        self,
        jobs: Iterable[EvalJob],
        progress: ProgressCallback | None = None,
        *,
        on_error: str = "raise",
    ) -> Mapping[EvalJob, Any]:
        """Execute a job batch; return payloads keyed by job.

        Duplicate jobs (equal keys) are computed once; the returned
        mapping resolves *any* submitted job, duplicate or not, since
        jobs hash by key.

        ``progress`` is a batch-local callback that sees only *this*
        call's events (the constructor's engine-wide callback and any
        :meth:`subscribe` observers still see them too).  Concurrent
        ``run`` calls from different threads are safe and share the
        worker pool and cache; a batch-local callback that raises
        aborts its own batch — pending pool futures are cancelled and
        awaited — without touching the others, which is how the async
        serving layer implements cancellation.

        ``on_error`` selects the failure mode once a job's retry
        budget (see ``retry_policy``) is exhausted: ``"raise"``
        (default) propagates the final exception — or
        :class:`~repro.engine.faults.PoisonedJob` for a quarantined
        job — after quiescing the batch, exactly like the pre-retry
        engine; ``"collect"`` records a structured
        :class:`~repro.engine.faults.JobFailure` *as the job's value
        in the returned mapping* and keeps going, so one bad job
        costs one result, not the batch.  Worker-crash recovery and
        timeouts apply in both modes.

        With ``eval_shards`` set, whole-cell ``eval`` jobs that miss
        the cache are split into per-sample-span ``eval-shard`` jobs,
        which dedupe and cache individually (two cells covering the
        same span share it, even at different total sample counts).
        Each finished span streams an ``eval-shard-done`` event with
        its cell's running partial result; the merged cell — re-folded
        in global sample order, bit-identical to serial evaluation —
        is stored back under the whole-cell key and returned alongside
        the span results.  In collect mode a cell with failed spans
        maps to a ``shards-failed`` :class:`JobFailure` naming them.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(
                f'on_error must be "raise" or "collect", '
                f"got {on_error!r}"
            )
        start = time.perf_counter()
        submitted = list(jobs)
        unique: dict[EvalJob, None] = {}
        for job in submitted:
            unique.setdefault(job, None)
        ordered = list(unique)

        with self._lock:
            self.stats.jobs_submitted += len(submitted)
            self.stats.jobs_unique += len(ordered)
            self.stats.jobs_deduped += len(submitted) - len(ordered)

        shard_lib = None
        if self.eval_shards is not None:
            # Lazy: the engine layer must stay importable without the
            # eval layer; only a sharding run needs it.
            from repro.eval import eval_shards as shard_lib

        if getattr(self.cache, "remote", None) is not None:
            # One batched manifest round-trip resolves the whole
            # schedule's remote existence up front (spans included),
            # so per-job lookups either fetch or skip the network.
            candidates = list(ordered)
            if shard_lib is not None:
                candidates.extend(
                    shard
                    for job in ordered if job.kind == "eval"
                    for shard in shard_lib.plan_eval_shards(
                        job, self.eval_shards
                    )
                )
            self.cache.prefetch(candidates)

        results: dict[EvalJob, Any] = {}
        failures: dict[EvalJob, JobFailure] = {}
        hits: list[EvalJob] = []
        hit_tiers: dict[EvalJob, str | None] = {}
        pending: list[EvalJob] = []
        plans: dict[EvalJob, tuple[EvalJob, ...]] = {}
        trackers: dict[EvalJob, Any] = {}
        shard_parents: dict[EvalJob, list[EvalJob]] = {}

        classified: set[EvalJob] = set()
        for job in ordered:
            if job in classified:
                continue  # already scheduled as some cell's span
            classified.add(job)
            payload, tier = self.cache.lookup(job)
            if payload is not MISS:
                with self._lock:
                    self.stats.cache_hits += 1
                results[job] = payload
                hits.append(job)
                hit_tiers[job] = tier
                continue
            if shard_lib is not None and job.kind == "eval":
                shards = shard_lib.plan_eval_shards(job, self.eval_shards)
                plans[job] = shards
                trackers[job] = shard_lib.ShardProgress(
                    shards_total=len(shards)
                )
                for shard in shards:
                    shard_parents.setdefault(shard, []).append(job)
                    if shard in classified:
                        # Span shared with an earlier cell, or the
                        # same job was submitted directly: scheduled
                        # once, merged into every parent.
                        continue
                    classified.add(shard)
                    span_payload, span_tier = self.cache.lookup(shard)
                    if span_payload is not MISS:
                        with self._lock:
                            self.stats.cache_hits += 1
                        results[shard] = span_payload
                        hits.append(shard)
                        hit_tiers[shard] = span_tier
                    else:
                        pending.append(shard)
            else:
                pending.append(job)

        # Sharding changes the batch's unit count, so the total is only
        # known now; cache-hit events are emitted after classification.
        total = len(hits) + len(pending)

        def note_shard_done(
            shard: EvalJob, payload: Any, completed: int
        ) -> None:
            # Under the engine lock: fleet peer threads land shards
            # concurrently with the local share, and the trackers'
            # running tallies must not race.
            with self._lock:
                for parent in shard_parents.get(shard, ()):
                    tracker = trackers[parent]
                    tracker.update(payload)
                    self._emit(
                        "eval-shard-done", shard, completed, total,
                        start, detail=tracker.as_detail(parent),
                        progress=progress,
                    )

        for done, job in enumerate(hits, start=1):
            self._emit(
                "cache-hit", job, done, total, start,
                detail={"tier": hit_tiers[job]}, progress=progress,
            )
            if job in shard_parents:
                note_shard_done(job, results[job], done)

        if pending:
            on_done = note_shard_done if plans else None
            states = [_JobState(job=job) for job in pending]
            if self.fleet is not None and self.fleet.peers:
                self._run_fleet(
                    states, results, failures, total, start, on_done,
                    progress, on_error,
                )
            else:
                self._run_local(
                    states, results, failures, total, start, on_done,
                    progress, on_error,
                )

        for parent, shards in plans.items():
            failed = [
                failures[shard] for shard in shards if shard in failures
            ]
            if failed:
                # The cell cannot be merged; surface a parent-level
                # failure naming the lost spans (collect mode only —
                # raise mode never reaches the merge step).
                parent_failure = shard_failure(parent, failed)
                failures[parent] = parent_failure
                self._emit(
                    "gave-up", parent,
                    min(len(results) + len(failures), total), total,
                    start, detail=parent_failure.as_detail(),
                    progress=progress,
                )
                continue
            merged = shard_lib.merge_eval_shards(
                parent, [results[shard] for shard in shards]
            )
            self.cache.put(parent, merged)
            results[parent] = merged

        if failures:
            results.update(failures)

        with self._lock:
            self.stats.wall_s += time.perf_counter() - start
        return results
