"""The experiment engine: dedupe, cache, and execute job batches.

:class:`ExperimentEngine` takes a batch of :class:`~repro.engine.jobs.
EvalJob` objects — possibly collected from *several* experiments —
collapses duplicates by key, serves what it can from the result cache,
and runs the remainder either in-process (``workers=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Progress events
(``cache-hit`` / ``started`` / ``completed``, over every job kind the
batch schedules: whole-cell ``eval``, per-span ``eval-shard``, sharded
``sim``, ``fig2b``, …) stream to an optional callback as jobs finish.
With ``eval_shards`` set, whole-cell ``eval`` jobs are further split
into per-sample-span shards (:mod:`repro.eval.eval_shards`) that
execute, dedupe, and cache individually and stream ``eval-shard-done``
partial results as they land.

The engine is safe to drive from several threads at once — the async
serving layer (:mod:`repro.serve`) runs many concurrent
:meth:`ExperimentEngine.run` batches against one engine and one
:class:`~repro.engine.cache.ResultCache`.  Every emitted
:class:`ProgressEvent` carries an engine-wide monotonic sequence
number; per-batch callbacks are passed to :meth:`run` itself, while
:meth:`subscribe` attaches engine-wide observers that see the
interleaved stream of every batch in sequence order.

Because every job is a pure function of its key (see
:mod:`repro.engine.jobs`), parallel execution is bit-identical to
serial execution: worker count and completion order influence only
wall-clock time, never results.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine.cache import MISS, ResultCache
from repro.engine.jobs import EvalJob, execute_job


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed scheduling event.

    Attributes:
        action: ``"cache-hit"``, ``"started"``, ``"completed"``, or
            ``"eval-shard-done"`` (a sharded cell's span finished —
            streamed *in addition to* the span job's own
            cache-hit/completed event).
        job: The job the event refers to.
        completed: Jobs finished so far (including cache hits).
        total: Schedulable units in this batch (sharded cells count
            their spans, not the merged parent).
        elapsed_s: Seconds since the batch started.
        detail: Action-specific payload; for ``eval-shard-done`` the
            running partial result of the shard's parent cell
            (``parent``, ``shards_done``, ``shards_total``,
            ``samples``, ``accuracy``, ``sparsity`` — see
            :meth:`repro.eval.eval_shards.ShardProgress.as_detail`).
        seq: Engine-wide monotonic sequence number, assigned under the
            emit lock.  Events observed by any single callback are
            strictly increasing in ``seq``; with several concurrent
            batches, engine-wide subscribers can totally order the
            interleaved stream by it.
    """

    action: str
    job: EvalJob
    completed: int
    total: int
    elapsed_s: float = 0.0
    detail: Any = None
    seq: int = 0


ProgressCallback = Callable[[ProgressEvent], None]


def _warm_up_probe() -> None:
    """Picklable no-op submitted by :meth:`ExperimentEngine.warm_up`."""
    return None


@dataclass
class EngineStats:
    """Cumulative scheduling counters (one engine's lifetime).

    ``executed`` counts actual evaluation calls; the acceptance
    criterion "a warm-cache re-run performs zero new ``evaluate()``
    calls" is checked against it.
    """

    jobs_submitted: int = 0
    jobs_unique: int = 0
    jobs_deduped: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_s: float = 0.0
    executed_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_unique": self.jobs_unique,
            "jobs_deduped": self.jobs_deduped,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "wall_s": self.wall_s,
            "executed_by_kind": dict(self.executed_by_kind),
        }

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        """Counters accumulated since an earlier snapshot."""
        by_kind = {
            kind: count - earlier.executed_by_kind.get(kind, 0)
            for kind, count in self.executed_by_kind.items()
            if count - earlier.executed_by_kind.get(kind, 0)
        }
        return EngineStats(
            jobs_submitted=self.jobs_submitted - earlier.jobs_submitted,
            jobs_unique=self.jobs_unique - earlier.jobs_unique,
            jobs_deduped=self.jobs_deduped - earlier.jobs_deduped,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            wall_s=self.wall_s - earlier.wall_s,
            executed_by_kind=by_kind,
        )

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            jobs_submitted=self.jobs_submitted,
            jobs_unique=self.jobs_unique,
            jobs_deduped=self.jobs_deduped,
            cache_hits=self.cache_hits,
            executed=self.executed,
            wall_s=self.wall_s,
            executed_by_kind=dict(self.executed_by_kind),
        )


class ExperimentEngine:
    """Schedules deduplicated job batches over a cache and worker pool.

    Args:
        workers: Process-pool size; ``1`` executes in-process (still
            through the cache).
        cache: Result cache; defaults to a fresh memory-only cache.
        progress: Optional streaming callback invoked from the
            scheduling process as jobs hit the cache, start, and
            complete.
        sim_shards: Shards to split each trace-simulation batch into
            when a driver routes :func:`repro.accel.simulator.
            simulate_many` through this engine (the CLI's
            ``--sim-shards``); ``None`` means one shard per worker.
        eval_shards: Samples per evaluation shard (the CLI's
            ``--eval-shards``).  When set, whole-cell ``eval`` jobs
            that miss the cache are split into per-sample-span
            ``eval-shard`` jobs (:mod:`repro.eval.eval_shards`) that
            parallelize on the worker pool and stream
            ``eval-shard-done`` partial results; the spans are
            re-folded in global sample order, bit-identical to the
            serial cell for any worker count and span size.  Span keys
            exclude the cell's total sample count, so growing a cell
            re-executes only its new suffix spans.  ``None`` (default)
            schedules whole cells.

    The process pool is created lazily on the first parallel batch and
    reused across :meth:`run` calls — a driver that runs many small
    sharded-simulation batches pays the pool spawn cost once, not per
    batch.  :meth:`close` (or the context-manager protocol) releases
    the workers; a closed engine recreates the pool on next use.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        sim_shards: int | None = None,
        eval_shards: int | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        if sim_shards is not None and sim_shards < 1:
            raise ValueError(f"sim_shards must be >= 1, got {sim_shards}")
        self.sim_shards = sim_shards
        if eval_shards is not None and eval_shards < 1:
            raise ValueError(
                f"eval_shards must be >= 1, got {eval_shards}"
            )
        self.eval_shards = eval_shards
        self.stats = EngineStats()
        self._pool: ProcessPoolExecutor | None = None
        # One reentrant lock guards the counters, the pool handle, and
        # event emission, so concurrent run() threads (the async
        # serving layer) stay consistent and sequence numbers stay
        # monotonic per observer.
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._subscribers: dict[int, ProgressCallback] = {}
        self._subscriber_tokens = itertools.count(1)

    def subscribe(self, callback: ProgressCallback) -> int:
        """Attach an engine-wide progress observer; returns a token.

        Subscribers see every event from every batch (all concurrent
        :meth:`run` calls), delivered under the emit lock in strictly
        increasing ``seq`` order.  A subscriber that raises is dropped
        — a broken monitor must not kill unrelated runs.  Per-batch
        streaming belongs in :meth:`run`'s ``progress`` argument
        instead.
        """
        with self._lock:
            token = next(self._subscriber_tokens)
            self._subscribers[token] = callback
            return token

    def unsubscribe(self, token: int) -> None:
        """Detach a :meth:`subscribe` observer (idempotent)."""
        with self._lock:
            self._subscribers.pop(token, None)

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown; atexit reaps the workers

    # -- internals ---------------------------------------------------

    def _note_executed(self, job: EvalJob) -> None:
        with self._lock:
            self.stats.executed += 1
            self.stats.executed_by_kind[job.kind] = (
                self.stats.executed_by_kind.get(job.kind, 0) + 1
            )

    def _emit(
        self, action: str, job: EvalJob, completed: int, total: int,
        start: float, detail: Any = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        """Build one sequenced event and deliver it to every observer.

        ``progress`` is the batch-local callback handed to :meth:`run`
        (exceptions propagate — the async layer cancels a run by
        raising from it), ``self.progress`` the engine-wide one from
        the constructor.  :meth:`subscribe` observers are notified
        under the emit lock so each sees a strictly ``seq``-ordered
        stream even across concurrent batches; a subscriber that
        raises is dropped.
        """
        if (
            progress is None
            and self.progress is None
            and not self._subscribers
        ):
            return
        with self._lock:
            event = ProgressEvent(
                action=action, job=job, completed=completed, total=total,
                elapsed_s=time.perf_counter() - start, detail=detail,
                seq=next(self._seq),
            )
            for token, callback in list(self._subscribers.items()):
                try:
                    callback(event)
                except Exception:
                    self._subscribers.pop(token, None)
        for callback in (progress, self.progress):
            if callback is not None:
                callback(event)

    def _run_serial(
        self, pending: list[EvalJob], results: dict[EvalJob, Any],
        total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        for job in pending:
            self._emit("started", job, len(results), total, start,
                       progress=progress)
            payload = execute_job(job)
            self._note_executed(job)
            self.cache.put(job, payload)
            results[job] = payload
            self._emit("completed", job, len(results), total, start,
                       progress=progress)
            if on_done is not None:
                on_done(job, payload, len(results))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def warm_up(self) -> None:
        """Start the worker pool now instead of on the first batch.

        Idempotent; a no-op for ``workers=1``.  Under the default
        ``fork`` start method every worker process is forked at the
        pool's first submission, and forked children inherit all open
        file descriptors — including accepted client sockets, whose
        inherited duplicates would keep a connection from ever
        delivering EOF after the parent closes it.  The serving
        frontend therefore warms the pool *before* it opens its
        listening socket.
        """
        if self.workers > 1:
            self._ensure_pool().submit(_warm_up_probe).result()

    def _run_pool(
        self, pending: list[EvalJob], results: dict[EvalJob, Any],
        total: int, start: float,
        on_done: Callable[[EvalJob, Any, int], None] | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        pool = self._ensure_pool()
        futures: dict[Any, EvalJob] = {}
        try:
            for job in pending:
                futures[pool.submit(execute_job, job)] = job
                self._emit("started", job, len(results), total, start,
                           progress=progress)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    job = futures[future]
                    payload = future.result()
                    self._note_executed(job)
                    self.cache.put(job, payload)
                    results[job] = payload
                    self._emit(
                        "completed", job, len(results), total, start,
                        progress=progress,
                    )
                    if on_done is not None:
                        on_done(job, payload, len(results))
        except BrokenProcessPool:
            # Release the broken executor's bookkeeping threads and let
            # the next run start a fresh pool.
            pool.shutdown(wait=False)
            with self._lock:
                if self._pool is pool:
                    self._pool = None
            raise
        except BaseException:
            # Quiesce the batch before propagating (what the old
            # pool-per-run `with` block guaranteed): no orphan futures
            # keep the persistent pool busy behind the caller's back.
            # `futures` covers everything submitted, including jobs
            # submitted before an error mid-loop; waiting on finished
            # futures is free.
            for future in futures:
                future.cancel()
            wait(set(futures))
            raise

    # -- public API --------------------------------------------------

    def run(
        self,
        jobs: Iterable[EvalJob],
        progress: ProgressCallback | None = None,
    ) -> Mapping[EvalJob, Any]:
        """Execute a job batch; return payloads keyed by job.

        Duplicate jobs (equal keys) are computed once; the returned
        mapping resolves *any* submitted job, duplicate or not, since
        jobs hash by key.

        ``progress`` is a batch-local callback that sees only *this*
        call's events (the constructor's engine-wide callback and any
        :meth:`subscribe` observers still see them too).  Concurrent
        ``run`` calls from different threads are safe and share the
        worker pool and cache; a batch-local callback that raises
        aborts its own batch — pending pool futures are cancelled and
        awaited — without touching the others, which is how the async
        serving layer implements cancellation.

        With ``eval_shards`` set, whole-cell ``eval`` jobs that miss
        the cache are split into per-sample-span ``eval-shard`` jobs,
        which dedupe and cache individually (two cells covering the
        same span share it, even at different total sample counts).
        Each finished span streams an ``eval-shard-done`` event with
        its cell's running partial result; the merged cell — re-folded
        in global sample order, bit-identical to serial evaluation —
        is stored back under the whole-cell key and returned alongside
        the span results.
        """
        start = time.perf_counter()
        submitted = list(jobs)
        unique: dict[EvalJob, None] = {}
        for job in submitted:
            unique.setdefault(job, None)
        ordered = list(unique)

        with self._lock:
            self.stats.jobs_submitted += len(submitted)
            self.stats.jobs_unique += len(ordered)
            self.stats.jobs_deduped += len(submitted) - len(ordered)

        shard_lib = None
        if self.eval_shards is not None:
            # Lazy: the engine layer must stay importable without the
            # eval layer; only a sharding run needs it.
            from repro.eval import eval_shards as shard_lib

        results: dict[EvalJob, Any] = {}
        hits: list[EvalJob] = []
        pending: list[EvalJob] = []
        plans: dict[EvalJob, tuple[EvalJob, ...]] = {}
        trackers: dict[EvalJob, Any] = {}
        shard_parents: dict[EvalJob, list[EvalJob]] = {}

        classified: set[EvalJob] = set()
        for job in ordered:
            if job in classified:
                continue  # already scheduled as some cell's span
            classified.add(job)
            payload = self.cache.get(job)
            if payload is not MISS:
                with self._lock:
                    self.stats.cache_hits += 1
                results[job] = payload
                hits.append(job)
                continue
            if shard_lib is not None and job.kind == "eval":
                shards = shard_lib.plan_eval_shards(job, self.eval_shards)
                plans[job] = shards
                trackers[job] = shard_lib.ShardProgress(
                    shards_total=len(shards)
                )
                for shard in shards:
                    shard_parents.setdefault(shard, []).append(job)
                    if shard in classified:
                        # Span shared with an earlier cell, or the
                        # same job was submitted directly: scheduled
                        # once, merged into every parent.
                        continue
                    classified.add(shard)
                    span_payload = self.cache.get(shard)
                    if span_payload is not MISS:
                        with self._lock:
                            self.stats.cache_hits += 1
                        results[shard] = span_payload
                        hits.append(shard)
                    else:
                        pending.append(shard)
            else:
                pending.append(job)

        # Sharding changes the batch's unit count, so the total is only
        # known now; cache-hit events are emitted after classification.
        total = len(hits) + len(pending)

        def note_shard_done(
            shard: EvalJob, payload: Any, completed: int
        ) -> None:
            for parent in shard_parents.get(shard, ()):
                tracker = trackers[parent]
                tracker.update(payload)
                self._emit(
                    "eval-shard-done", shard, completed, total, start,
                    detail=tracker.as_detail(parent), progress=progress,
                )

        for done, job in enumerate(hits, start=1):
            self._emit("cache-hit", job, done, total, start,
                       progress=progress)
            if job in shard_parents:
                note_shard_done(job, results[job], done)

        if pending:
            on_done = note_shard_done if plans else None
            if self.workers == 1 or len(pending) == 1:
                self._run_serial(
                    pending, results, total, start, on_done, progress
                )
            else:
                self._run_pool(
                    pending, results, total, start, on_done, progress
                )

        for parent, shards in plans.items():
            merged = shard_lib.merge_eval_shards(
                parent, [results[shard] for shard in shards]
            )
            self.cache.put(parent, merged)
            results[parent] = merged

        with self._lock:
            self.stats.wall_s += time.perf_counter() - start
        return results
