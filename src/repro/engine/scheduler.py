"""The experiment engine: dedupe, cache, and execute job batches.

:class:`ExperimentEngine` takes a batch of :class:`~repro.engine.jobs.
EvalJob` objects — possibly collected from *several* experiments —
collapses duplicates by key, serves what it can from the result cache,
and runs the remainder either in-process (``workers=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Progress events
stream to an optional callback as jobs finish.

Because every job is a pure function of its key (see
:mod:`repro.engine.jobs`), parallel execution is bit-identical to
serial execution: worker count and completion order influence only
wall-clock time, never results.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine.cache import MISS, ResultCache
from repro.engine.jobs import EvalJob, execute_job


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed scheduling event.

    Attributes:
        action: ``"cache-hit"``, ``"started"`` or ``"completed"``.
        job: The job the event refers to.
        completed: Jobs finished so far (including cache hits).
        total: Unique jobs in this batch.
        elapsed_s: Seconds since the batch started.
    """

    action: str
    job: EvalJob
    completed: int
    total: int
    elapsed_s: float = 0.0


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class EngineStats:
    """Cumulative scheduling counters (one engine's lifetime).

    ``executed`` counts actual evaluation calls; the acceptance
    criterion "a warm-cache re-run performs zero new ``evaluate()``
    calls" is checked against it.
    """

    jobs_submitted: int = 0
    jobs_unique: int = 0
    jobs_deduped: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_s: float = 0.0
    executed_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_unique": self.jobs_unique,
            "jobs_deduped": self.jobs_deduped,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "wall_s": self.wall_s,
            "executed_by_kind": dict(self.executed_by_kind),
        }

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        """Counters accumulated since an earlier snapshot."""
        by_kind = {
            kind: count - earlier.executed_by_kind.get(kind, 0)
            for kind, count in self.executed_by_kind.items()
            if count - earlier.executed_by_kind.get(kind, 0)
        }
        return EngineStats(
            jobs_submitted=self.jobs_submitted - earlier.jobs_submitted,
            jobs_unique=self.jobs_unique - earlier.jobs_unique,
            jobs_deduped=self.jobs_deduped - earlier.jobs_deduped,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            wall_s=self.wall_s - earlier.wall_s,
            executed_by_kind=by_kind,
        )

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            jobs_submitted=self.jobs_submitted,
            jobs_unique=self.jobs_unique,
            jobs_deduped=self.jobs_deduped,
            cache_hits=self.cache_hits,
            executed=self.executed,
            wall_s=self.wall_s,
            executed_by_kind=dict(self.executed_by_kind),
        )


class ExperimentEngine:
    """Schedules deduplicated job batches over a cache and worker pool.

    Args:
        workers: Process-pool size; ``1`` executes in-process (still
            through the cache).
        cache: Result cache; defaults to a fresh memory-only cache.
        progress: Optional streaming callback invoked from the
            scheduling process as jobs hit the cache, start, and
            complete.
        sim_shards: Shards to split each trace-simulation batch into
            when a driver routes :func:`repro.accel.simulator.
            simulate_many` through this engine (the CLI's
            ``--sim-shards``); ``None`` means one shard per worker.

    The process pool is created lazily on the first parallel batch and
    reused across :meth:`run` calls — a driver that runs many small
    sharded-simulation batches pays the pool spawn cost once, not per
    batch.  :meth:`close` (or the context-manager protocol) releases
    the workers; a closed engine recreates the pool on next use.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        sim_shards: int | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        if sim_shards is not None and sim_shards < 1:
            raise ValueError(f"sim_shards must be >= 1, got {sim_shards}")
        self.sim_shards = sim_shards
        self.stats = EngineStats()
        self._pool: ProcessPoolExecutor | None = None

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown; atexit reaps the workers

    # -- internals ---------------------------------------------------

    def _note_executed(self, job: EvalJob) -> None:
        self.stats.executed += 1
        self.stats.executed_by_kind[job.kind] = (
            self.stats.executed_by_kind.get(job.kind, 0) + 1
        )

    def _emit(
        self, action: str, job: EvalJob, completed: int, total: int,
        start: float,
    ) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(
                action=action, job=job, completed=completed, total=total,
                elapsed_s=time.perf_counter() - start,
            ))

    def _run_serial(
        self, pending: list[EvalJob], results: dict[EvalJob, Any],
        total: int, start: float,
    ) -> None:
        for job in pending:
            self._emit("started", job, len(results), total, start)
            payload = execute_job(job)
            self._note_executed(job)
            self.cache.put(job, payload)
            results[job] = payload
            self._emit("completed", job, len(results), total, start)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _run_pool(
        self, pending: list[EvalJob], results: dict[EvalJob, Any],
        total: int, start: float,
    ) -> None:
        pool = self._ensure_pool()
        futures: dict[Any, EvalJob] = {}
        try:
            for job in pending:
                futures[pool.submit(execute_job, job)] = job
                self._emit("started", job, len(results), total, start)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    job = futures[future]
                    payload = future.result()
                    self._note_executed(job)
                    self.cache.put(job, payload)
                    results[job] = payload
                    self._emit(
                        "completed", job, len(results), total, start
                    )
        except BrokenProcessPool:
            # Release the broken executor's bookkeeping threads and let
            # the next run start a fresh pool.
            pool.shutdown(wait=False)
            self._pool = None
            raise
        except BaseException:
            # Quiesce the batch before propagating (what the old
            # pool-per-run `with` block guaranteed): no orphan futures
            # keep the persistent pool busy behind the caller's back.
            # `futures` covers everything submitted, including jobs
            # submitted before an error mid-loop; waiting on finished
            # futures is free.
            for future in futures:
                future.cancel()
            wait(set(futures))
            raise

    # -- public API --------------------------------------------------

    def run(self, jobs: Iterable[EvalJob]) -> Mapping[EvalJob, Any]:
        """Execute a job batch; return payloads keyed by job.

        Duplicate jobs (equal keys) are computed once; the returned
        mapping resolves *any* submitted job, duplicate or not, since
        jobs hash by key.
        """
        start = time.perf_counter()
        submitted = list(jobs)
        unique: dict[EvalJob, None] = {}
        for job in submitted:
            unique.setdefault(job, None)
        ordered = list(unique)

        self.stats.jobs_submitted += len(submitted)
        self.stats.jobs_unique += len(ordered)
        self.stats.jobs_deduped += len(submitted) - len(ordered)

        results: dict[EvalJob, Any] = {}
        pending: list[EvalJob] = []
        for job in ordered:
            payload = self.cache.get(job)
            if payload is not MISS:
                self.stats.cache_hits += 1
                results[job] = payload
                self._emit(
                    "cache-hit", job, len(results), len(ordered), start
                )
            else:
                pending.append(job)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                self._run_serial(pending, results, len(ordered), start)
            else:
                self._run_pool(pending, results, len(ordered), start)

        self.stats.wall_s += time.perf_counter() - start
        return results
