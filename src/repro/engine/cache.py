"""Content-addressed result cache: memory, disk, and remote tiers.

Every payload is stored under its job's content address
(:attr:`repro.engine.jobs.EvalJob.job_id`), which hashes the full job
key plus a cache-format version.  A hit therefore *is* the result —
there is no invalidation logic, only keys that were never written.

The memory tier makes any evaluation compute at most once per process;
the disk tier (``cache_dir``) extends that across CLI invocations.
Disk writes are atomic (temp file + rename) so a crashed run can never
leave a truncated entry that poisons a later one.

The optional **remote tier** (``remote``, a :class:`repro.remote.
client.RemoteCacheClient` or anything duck-typing its
``get``/``put``/``manifest``) extends the namespace across *machines*:
a lookup that misses memory and disk fetches the job's canonical
pickle bytes from a ``repro cache-server``, verifies their sha256, and
back-fills both local tiers; stores publish the same bytes
*write-behind* on a daemon thread, so ``put`` latency never waits on
the network (:meth:`ResultCache.flush_remote` drains the queue).  A
failed verification degrades to a miss — corrupt remote bytes are
never unpickled.  :meth:`ResultCache.prefetch` batches one
``POST /cache/manifest`` existence check for a whole schedule so
known-absent jobs skip the per-job round-trip entirely.

The disk tier can be LRU size-capped (``max_disk_bytes``, the CLI's
``--cache-max-mb``): every disk hit refreshes the entry's mtime as a
``last_used`` stamp, and writes that push the tier over the cap prune
least-recently-used entries until it fits again (down to
:attr:`ResultCache.PRUNE_HEADROOM` of the cap, riding on an O(1)
running byte total).  The memory tier is never pruned.  A concurrent
pruner (another process sharing the directory) may delete an entry
mid-hit — between the read and the ``last_used`` touch; the lookup
then counts as a miss rather than resurrecting an evicted entry.

:class:`CacheStats` counts every lookup per job *kind* as well as in
total (``hits_by_kind`` / ``misses_by_kind``), so sharded traffic is
separable — e.g. a grown ``--samples`` re-run reports its prefix-reuse
rate as the ``eval-shard`` hit fraction, which the totals alone can't
distinguish from ``sim``-shard or whole-cell lookups.

All public operations take an internal lock, so one cache may back
several engine threads at once (the async serving layer runs
concurrent batches against a single :class:`ResultCache`).
"""

from __future__ import annotations

import os
import pickle
import queue
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.engine.jobs import EvalJob

MISS = object()
"""Sentinel returned by :meth:`ResultCache.get` on a miss (payloads may
legitimately be falsy)."""


@dataclass
class CacheStats:
    """Hit/miss counters, cumulative over the cache's lifetime.

    Besides the totals, lookups are counted per job *kind*
    (``hits_by_kind`` / ``misses_by_kind``): a sharded-eval re-run with
    a larger ``--samples`` reports its prefix-reuse rate as the
    ``eval-shard`` hit fraction, which the totals alone can't separate
    from sim-shard or whole-cell traffic.
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    stores: int = 0
    remote_stores: int = 0
    remote_errors: int = 0
    remote_verify_failures: int = 0
    disk_evictions: int = 0
    hits_by_kind: dict[str, int] = field(default_factory=dict)
    misses_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def _note(self, kind: str, hit: bool) -> None:
        by_kind = self.hits_by_kind if hit else self.misses_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def tiers(self) -> dict[str, int]:
        """Hits by serving tier, in lookup order."""
        return {
            "memory": self.memory_hits,
            "disk": self.disk_hits,
            "remote": self.remote_hits,
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "stores": self.stores,
            "remote_stores": self.remote_stores,
            "remote_errors": self.remote_errors,
            "remote_verify_failures": self.remote_verify_failures,
            "disk_evictions": self.disk_evictions,
            "hit_rate": self.hit_rate,
            "hits_by_kind": dict(self.hits_by_kind),
            "misses_by_kind": dict(self.misses_by_kind),
        }

    def snapshot(self) -> "CacheStats":
        """An independent copy (pair with :meth:`delta` to scope the
        cumulative counters to one run)."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            memory_hits=self.memory_hits,
            disk_hits=self.disk_hits,
            remote_hits=self.remote_hits,
            stores=self.stores,
            remote_stores=self.remote_stores,
            remote_errors=self.remote_errors,
            remote_verify_failures=self.remote_verify_failures,
            disk_evictions=self.disk_evictions,
            hits_by_kind=dict(self.hits_by_kind),
            misses_by_kind=dict(self.misses_by_kind),
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier snapshot."""

        def by_kind_delta(
            now: dict[str, int], then: dict[str, int]
        ) -> dict[str, int]:
            return {
                kind: count - then.get(kind, 0)
                for kind, count in now.items()
                if count - then.get(kind, 0)
            }

        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            memory_hits=self.memory_hits - earlier.memory_hits,
            disk_hits=self.disk_hits - earlier.disk_hits,
            remote_hits=self.remote_hits - earlier.remote_hits,
            stores=self.stores - earlier.stores,
            remote_stores=self.remote_stores - earlier.remote_stores,
            remote_errors=self.remote_errors - earlier.remote_errors,
            remote_verify_failures=(
                self.remote_verify_failures
                - earlier.remote_verify_failures
            ),
            disk_evictions=self.disk_evictions - earlier.disk_evictions,
            hits_by_kind=by_kind_delta(
                self.hits_by_kind, earlier.hits_by_kind
            ),
            misses_by_kind=by_kind_delta(
                self.misses_by_kind, earlier.misses_by_kind
            ),
        )


class ResultCache:
    """Tiered (memory → disk → remote) content-addressed result cache.

    Args:
        cache_dir: Directory for the disk tier; ``None`` keeps the
            cache memory-only.  Created on first write.
        enabled: When ``False`` every lookup misses and nothing is
            stored (the CLI's ``--no-cache``).
        max_disk_bytes: Size cap for the disk tier.  Writes that push
            the tier over the cap evict least-recently-*used* entries
            (disk hits refresh an entry's mtime) until it fits again;
            ``None`` leaves the tier unbounded.
        remote: Optional remote tier client (a :class:`repro.remote.
            client.RemoteCacheClient`, or anything with its
            ``get``/``put``/``manifest`` surface).  Lookups that miss
            both local tiers fetch from it (sha256-verified, then
            back-filled locally); stores publish to it asynchronously
            (write-behind) unless ``put(..., publish=False)``.
    """

    def __init__(
        self, cache_dir: str | os.PathLike | None = None,
        enabled: bool = True,
        max_disk_bytes: int | None = None,
        remote: Any | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.enabled = enabled
        if max_disk_bytes is not None and max_disk_bytes < 0:
            raise ValueError("max_disk_bytes must be >= 0")
        self.max_disk_bytes = max_disk_bytes
        self.remote = remote
        self.stats = CacheStats()
        self._memory: dict[str, Any] = {}
        self._disk_usage: int | None = None  # running total; lazy init
        self._lock = threading.RLock()
        # Remote-tier state: manifest knowledge (True = present, False
        # = known absent → skip the GET) and the write-behind queue of
        # (job_id, canonical_bytes) publishes, drained by a lazily
        # started daemon thread.
        self._remote_known: dict[str, bool] = {}
        self._publish_queue: queue.Queue | None = None
        self._publish_thread: threading.Thread | None = None

    def _path(self, job: EvalJob) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{job.job_id}.pkl"

    def get(self, job: EvalJob) -> Any:
        """Return the cached payload for ``job`` or :data:`MISS`."""
        return self.lookup(job)[0]

    def lookup(self, job: EvalJob) -> tuple[Any, str | None]:
        """Like :meth:`get`, plus the serving tier.

        Returns ``(payload, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"``, ``"remote"``, or ``None`` on a miss.
        """
        with self._lock:
            return self._lookup(job)

    def _lookup(self, job: EvalJob) -> tuple[Any, str | None]:
        if not self.enabled:
            self.stats._note(job.kind, hit=False)
            return MISS, None
        payload = self._memory.get(job.job_id, MISS)
        if payload is not MISS:
            self.stats._note(job.kind, hit=True)
            self.stats.memory_hits += 1
            return payload, "memory"
        if self.cache_dir is not None:
            path = self._path(job)
            if path.exists():
                try:
                    with path.open("rb") as fh:
                        payload = pickle.load(fh)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError):
                    # Unreadable entry: drop it and recompute.
                    self._note_removed(path)
                    path.unlink(missing_ok=True)
                else:
                    try:
                        os.utime(path)  # refresh the last_used stamp
                    except FileNotFoundError:
                        # A concurrent pruner (another process, or the
                        # LRU eviction of a sibling cache on the same
                        # directory) deleted the entry between the
                        # read and the touch.  Honor the eviction:
                        # treat the lookup as a miss instead of
                        # resurrecting a deliberately dropped entry,
                        # and rescan the tier lazily — the running
                        # byte total no longer matches the directory.
                        self._disk_usage = None
                        self.stats._note(job.kind, hit=False)
                        return MISS, None
                    except OSError:
                        pass
                    self._memory[job.job_id] = payload
                    self.stats._note(job.kind, hit=True)
                    self.stats.disk_hits += 1
                    return payload, "disk"
        payload = self._remote_lookup(job)
        if payload is not MISS:
            self.stats._note(job.kind, hit=True)
            self.stats.remote_hits += 1
            return payload, "remote"
        self.stats._note(job.kind, hit=False)
        return MISS, None

    def _remote_lookup(self, job: EvalJob) -> Any:
        """Fetch from the remote tier and back-fill the local ones.

        Corrupt bytes (failed sha256 verification or an unloadable
        pickle) degrade to a miss; a miss or transport failure marks
        the id known-absent so repeat lookups skip the round-trip
        (:meth:`prefetch` pre-marks whole schedules in one request).
        """
        if self.remote is None:
            return MISS
        if self._remote_known.get(job.job_id) is False:
            return MISS
        try:
            data = self.remote.get(job.job_id)
        except Exception as exc:
            from repro.remote.client import RemoteCacheVerificationError

            if isinstance(exc, RemoteCacheVerificationError):
                self.stats.remote_verify_failures += 1
            else:
                self.stats.remote_errors += 1
            data = None
        if data is None:
            self._remote_known[job.job_id] = False
            return MISS
        try:
            payload = pickle.loads(data)
        except Exception:
            self.stats.remote_errors += 1
            self._remote_known[job.job_id] = False
            return MISS
        self._remote_known.pop(job.job_id, None)
        self._memory[job.job_id] = payload
        if self.cache_dir is not None:
            # Back-fill the disk tier with the exact received bytes so
            # all three tiers hold identical canonical entries.
            self._write_disk(job, data)
        return payload

    def put(
        self, job: EvalJob, payload: Any, publish: bool = True
    ) -> None:
        """Store a payload in every tier.

        The remote publish is *write-behind*: the canonical bytes are
        queued and shipped by a daemon thread, so the caller never
        waits on the network (:meth:`flush_remote` drains the queue).
        ``publish=False`` keeps a store local — used for payloads that
        already live remotely (remote-tier hits, fleet-executed jobs
        whose owner published them).
        """
        with self._lock:
            self._put(job, payload, publish)

    def _put(self, job: EvalJob, payload: Any, publish: bool) -> None:
        if not self.enabled:
            return
        self._memory[job.job_id] = payload
        self.stats.stores += 1
        data: bytes | None = None
        if self.cache_dir is not None or (
            publish and self.remote is not None
        ):
            data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        if self.cache_dir is not None:
            self._write_disk(job, data)
        if publish and self.remote is not None:
            self._remote_known.pop(job.job_id, None)
            self._enqueue_publish(job.job_id, data)

    def _write_disk(self, job: EvalJob, data: bytes) -> None:
        """Atomically write one entry's canonical bytes to disk."""
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        path = self._path(job)
        old_size = self._entry_size(path)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        if self._disk_usage is not None:
            self._disk_usage += self._entry_size(path) - old_size
        self.prune_disk()

    # -- remote tier --------------------------------------------------

    def _enqueue_publish(self, job_id: str, data: bytes) -> None:
        if self._publish_queue is None:
            self._publish_queue = queue.Queue()
            self._publish_thread = threading.Thread(
                target=self._publish_worker,
                name="repro-cache-publish", daemon=True,
            )
            self._publish_thread.start()
        self._publish_queue.put((job_id, data))

    def _publish_worker(self) -> None:
        assert self._publish_queue is not None
        while True:
            job_id, data = self._publish_queue.get()
            try:
                try:
                    ok = bool(self.remote.put(job_id, data))
                except Exception:
                    ok = False
                with self._lock:
                    if ok:
                        self.stats.remote_stores += 1
                    else:
                        self.stats.remote_errors += 1
            finally:
                self._publish_queue.task_done()

    def flush_remote(self) -> None:
        """Block until every queued write-behind publish has been
        attempted (idempotent; a no-op without a remote tier)."""
        if self._publish_queue is not None:
            self._publish_queue.join()

    def prefetch(self, jobs: Iterable[EvalJob]) -> int:
        """Resolve remote existence for a schedule in one round-trip.

        Jobs already in a local tier are skipped; the rest go into one
        batched ``POST /cache/manifest`` whose answer pre-marks each id
        present or absent, so the per-job lookups either fetch or skip
        the network entirely.  Returns the number of ids marked
        present.  Quietly a no-op when the remote tier is absent,
        disabled, or unreachable (per-job lookups then probe as
        usual).
        """
        if self.remote is None or not self.enabled:
            return 0
        wanted: dict[str, None] = {}
        with self._lock:
            for job in jobs:
                if job.job_id in self._memory:
                    continue
                if job.job_id in self._remote_known:
                    continue
                if (
                    self.cache_dir is not None
                    and self._path(job).exists()
                ):
                    continue
                wanted.setdefault(job.job_id, None)
        if not wanted:
            return 0
        try:
            present = self.remote.manifest(list(wanted))
        except Exception:
            present = None
        if present is None:
            return 0
        with self._lock:
            for job_id in wanted:
                self._remote_known[job_id] = job_id in present
        return len(present & set(wanted))

    @staticmethod
    def _entry_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _note_removed(self, path: Path) -> None:
        """Keep the running total current when an entry is dropped."""
        if self._disk_usage is not None:
            self._disk_usage = max(
                0, self._disk_usage - self._entry_size(path)
            )

    def disk_usage_bytes(self) -> int:
        """Total size of the disk tier's entries (running total)."""
        if self.cache_dir is None:
            return 0
        if self._disk_usage is None:
            if not self.cache_dir.is_dir():
                return 0
            self._disk_usage = sum(
                size for _, _, size in self._disk_entries()
            )
        return self._disk_usage

    def _disk_entries(self) -> list[tuple[Path, float, int]]:
        """Disk entries as ``(path, last_used_mtime, size)`` tuples."""
        assert self.cache_dir is not None
        entries = []
        for path in self.cache_dir.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    PRUNE_HEADROOM = 0.9
    """Prune down to this fraction of the cap, so a saturated cache
    absorbs a batch of writes before the next directory scan."""

    def prune_disk(self) -> int:
        """Evict LRU disk entries until the tier fits ``max_disk_bytes``.

        Entries are ranked by mtime, which doubles as the ``last_used``
        stamp (refreshed on every disk hit).  The memory tier is
        untouched — an evicted entry already loaded this session stays
        hot.  Returns the number of entries evicted.

        The under-cap check rides on a running byte total, so puts are
        O(1) until the cap is hit; only an actual prune scans the
        directory (and evicts down to :attr:`PRUNE_HEADROOM` of the
        cap, not just below it, to keep scans rare at saturation).
        """
        if (
            self.max_disk_bytes is None
            or self.cache_dir is None
            or not self.cache_dir.is_dir()
        ):
            return 0
        with self._lock:
            return self._prune_disk_locked()

    def _prune_disk_locked(self) -> int:
        if self.disk_usage_bytes() <= self.max_disk_bytes:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, _, size in entries)
        target = int(self.max_disk_bytes * self.PRUNE_HEADROOM)
        evicted = 0
        for path, _, size in sorted(entries, key=lambda e: e[1]):
            if total <= target:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        self._disk_usage = total
        self.stats.disk_evictions += evicted
        return evicted

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
