"""Content-addressed result cache: in-memory with optional disk tier.

Every payload is stored under its job's content address
(:attr:`repro.engine.jobs.EvalJob.job_id`), which hashes the full job
key plus a cache-format version.  A hit therefore *is* the result —
there is no invalidation logic, only keys that were never written.

The memory tier makes any evaluation compute at most once per process;
the disk tier (``cache_dir``) extends that across CLI invocations.
Disk writes are atomic (temp file + rename) so a crashed run can never
leave a truncated entry that poisons a later one.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.jobs import EvalJob

MISS = object()
"""Sentinel returned by :meth:`ResultCache.get` on a miss (payloads may
legitimately be falsy)."""


@dataclass
class CacheStats:
    """Hit/miss counters, cumulative over the cache's lifetime."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Two-tier (memory + disk) content-addressed job-result cache.

    Args:
        cache_dir: Directory for the disk tier; ``None`` keeps the
            cache memory-only.  Created on first write.
        enabled: When ``False`` every lookup misses and nothing is
            stored (the CLI's ``--no-cache``).
    """

    def __init__(
        self, cache_dir: str | os.PathLike | None = None,
        enabled: bool = True,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.enabled = enabled
        self.stats = CacheStats()
        self._memory: dict[str, Any] = {}

    def _path(self, job: EvalJob) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{job.job_id}.pkl"

    def get(self, job: EvalJob) -> Any:
        """Return the cached payload for ``job`` or :data:`MISS`."""
        if not self.enabled:
            self.stats.misses += 1
            return MISS
        payload = self._memory.get(job.job_id, MISS)
        if payload is not MISS:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return payload
        if self.cache_dir is not None:
            path = self._path(job)
            if path.exists():
                try:
                    with path.open("rb") as fh:
                        payload = pickle.load(fh)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError):
                    # Unreadable entry: drop it and recompute.
                    path.unlink(missing_ok=True)
                else:
                    self._memory[job.job_id] = payload
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return payload
        self.stats.misses += 1
        return MISS

    def put(self, job: EvalJob, payload: Any) -> None:
        """Store a payload in both tiers."""
        if not self.enabled:
            return
        self._memory[job.job_id] = payload
        self.stats.stores += 1
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(job))
            except BaseException:
                os.unlink(tmp)
                raise

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
