"""Declarative experiment registry.

Every table/figure driver declares an :class:`ExperimentPlan` — the
jobs it needs plus a pure ``assemble(results)`` step — through the
:func:`register` decorator.  The engine can then collect jobs from
*several* experiments, dedupe across them, execute one schedule, and
hand each experiment its slice of the results.

Plans always declare *whole-cell* ``eval`` jobs; per-sample sharding
is an engine concern.  Running any plan on an engine built with
``eval_shards=N`` splits each declared cell into per-sample-span
``eval-shard`` jobs and hands ``assemble`` the merged, bit-identical
cell — every registered driver shards without knowing it.

Formatters (paper-style text renderers) are attached separately by
:mod:`repro.eval.reporting` via :func:`set_formatter`, keeping the
registry import-light.
"""

from __future__ import annotations

import importlib
import inspect
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.engine.cache import ResultCache
from repro.engine.faults import ExperimentFailure, JobFailure
from repro.engine.jobs import EvalJob
from repro.engine.scheduler import ExperimentEngine

PlanFactory = Callable[..., "ExperimentPlan"]
Assembler = Callable[[Mapping[EvalJob, Any]], Any]


@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment's declared work.

    Attributes:
        jobs: Evaluations the experiment needs (duplicates allowed;
            the engine collapses them).
        assemble: Pure function from the engine's results mapping to
            the experiment's result object.  It must not evaluate
            anything itself — only simulate, aggregate, and format —
            so caching and parallelism stay complete.  An assembler
            that accepts an ``engine`` keyword receives the engine the
            plan ran on, so its trace simulations can shard onto the
            same worker pool (results stay bit-identical either way).
    """

    jobs: tuple[EvalJob, ...]
    assemble: Assembler


@dataclass
class ExperimentSpec:
    """Registry entry: how to plan, assemble, and render an experiment."""

    name: str
    description: str
    plan: PlanFactory
    formatter: Callable[[Any], str] | None = None


EXPERIMENT_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    name: str, description: str
) -> Callable[[PlanFactory], PlanFactory]:
    """Decorator registering a plan factory as a named experiment."""

    def deco(plan: PlanFactory) -> PlanFactory:
        EXPERIMENT_REGISTRY[name] = ExperimentSpec(
            name=name, description=description, plan=plan
        )
        return plan

    return deco


def set_formatter(name: str, formatter: Callable[[Any], str]) -> None:
    """Attach a paper-style text renderer to a registered experiment."""
    get_spec(name).formatter = formatter


def _ensure_loaded() -> None:
    """Import the modules that register experiments (idempotent)."""
    importlib.import_module("repro.eval.experiments")


def get_spec(name: str) -> ExperimentSpec:
    """Look up an experiment by name."""
    _ensure_loaded()
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; "
            f"available: {sorted(EXPERIMENT_REGISTRY)}"
        ) from None


def experiment_names() -> tuple[str, ...]:
    """All registered experiment names, in registration order."""
    _ensure_loaded()
    return tuple(EXPERIMENT_REGISTRY)


def experiment_catalog() -> tuple[dict[str, str], ...]:
    """``(name, description)`` records for every registered experiment.

    The serving frontend's ``GET /experiments`` and the CLI's ``list``
    subcommand both render from this.
    """
    _ensure_loaded()
    return tuple(
        {"name": spec.name, "description": spec.description}
        for spec in EXPERIMENT_REGISTRY.values()
    )


def format_result(name: str, result: Any) -> str:
    """Render an assembled result with the experiment's formatter.

    Falls back to ``repr`` for experiments without a registered
    formatter — the exact behaviour of the offline CLI, so a serving
    frontend that stores this string returns artifacts bit-identical
    to an offline run.  Importing :mod:`repro.eval.reporting` here
    guarantees the formatters are attached no matter which entry point
    (CLI, server, library) asked first.

    An :class:`~repro.engine.faults.ExperimentFailure` (a partial
    run's failed experiment) renders its failure summary instead —
    deterministic text, no tracebacks or timings.
    """
    if isinstance(result, ExperimentFailure):
        return result.describe()
    importlib.import_module("repro.eval.reporting")
    formatter = get_spec(name).formatter
    return formatter(result) if formatter is not None else repr(result)


_default_engine: ExperimentEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> ExperimentEngine:
    """Process-wide serial engine with a shared in-memory cache.

    Library-level driver wrappers route through this engine, so any
    evaluation is computed at most once per session even when callers
    never touch the engine API.  Construction is guarded by a module
    lock, so concurrent first callers share one engine (and one
    cache) instead of racing to build two.
    """
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = ExperimentEngine(
                workers=1, cache=ResultCache()
            )
        return _default_engine


def reset_default_engine() -> None:
    """Drop the shared engine (tests use this for isolation)."""
    global _default_engine
    with _default_engine_lock:
        _default_engine = None


def _accepts_engine(assemble: Assembler) -> bool:
    """Whether an assembler takes an ``engine`` keyword."""
    try:
        parameters = inspect.signature(assemble).parameters
    except (TypeError, ValueError):
        return False
    if "engine" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in parameters.values()
    )


def assemble_plan(
    plan: ExperimentPlan,
    results: Mapping[EvalJob, Any],
    engine: ExperimentEngine | None = None,
) -> Any:
    """Run a plan's assemble step, handing it the engine if it wants one."""
    if engine is not None and _accepts_engine(plan.assemble):
        return plan.assemble(results, engine=engine)
    return plan.assemble(results)


def _plan_failures(
    plan: ExperimentPlan, results: Mapping[EvalJob, Any]
) -> tuple[JobFailure, ...]:
    """The plan's :class:`JobFailure` values, deduped in job order."""
    failures: dict[EvalJob, JobFailure] = {}
    for job in plan.jobs:
        value = results.get(job)
        if isinstance(value, JobFailure):
            failures.setdefault(job, value)
    return tuple(failures.values())


def run_plan(
    plan: ExperimentPlan,
    engine: ExperimentEngine | None = None,
    progress: Callable[..., None] | None = None,
    on_error: str = "raise",
    name: str = "",
) -> Any:
    """Execute one plan and assemble its result.

    With ``on_error="collect"`` (see :meth:`ExperimentEngine.run`), a
    plan whose jobs permanently failed returns an
    :class:`~repro.engine.faults.ExperimentFailure` instead of calling
    ``assemble`` on an incomplete results mapping.
    """
    engine = engine if engine is not None else default_engine()
    results = engine.run(plan.jobs, progress=progress, on_error=on_error)
    failures = _plan_failures(plan, results)
    if failures:
        return ExperimentFailure(name=name, failures=failures)
    return assemble_plan(plan, results, engine)


def run_experiments(
    names: Iterable[str],
    engine: ExperimentEngine | None = None,
    progress: Callable[..., None] | None = None,
    on_error: str = "raise",
    **params: Any,
) -> dict[str, Any]:
    """Run several experiments as one deduplicated schedule.

    ``params`` (e.g. ``num_samples``, ``seed``) are forwarded to every
    plan factory.  Jobs shared between experiments — Table II and
    Fig. 9 overlap on every video cell, for example — are evaluated
    once.  ``progress`` is a batch-local streaming callback scoped to
    this schedule only (see :meth:`ExperimentEngine.run`), which is
    how the serving layer keeps concurrent runs' event streams apart.

    ``on_error="collect"`` switches to partial results: experiments
    untouched by failures assemble normally, while each experiment
    with a permanently failed job maps to an
    :class:`~repro.engine.faults.ExperimentFailure` naming the lost
    jobs (a shared failed job surfaces in every experiment that needed
    it).  The default ``"raise"`` propagates the first permanent
    failure, exactly like the engine.

    Returns:
        Mapping from experiment name to its assembled result (or
        :class:`ExperimentFailure` in collect mode).
    """
    engine = engine if engine is not None else default_engine()
    plans = {name: get_spec(name).plan(**params) for name in names}
    all_jobs = [job for plan in plans.values() for job in plan.jobs]
    results = engine.run(all_jobs, progress=progress, on_error=on_error)
    out: dict[str, Any] = {}
    for name, plan in plans.items():
        failures = _plan_failures(plan, results)
        if failures:
            out[name] = ExperimentFailure(name=name, failures=failures)
        else:
            out[name] = assemble_plan(plan, results, engine)
    return out
