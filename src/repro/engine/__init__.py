"""Experiment engine: declarative specs, a shared evaluation cache,
and parallel workers.

See ``src/repro/engine/ARCHITECTURE.md`` for the design note.
"""

from repro.engine.cache import MISS, CacheStats, ResultCache
from repro.engine.jobs import (
    ENGINE_CACHE_VERSION,
    EvalJob,
    config_digest,
    derive_seed,
    execute_job,
    register_job_kind,
)
from repro.engine.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentPlan,
    ExperimentSpec,
    assemble_plan,
    default_engine,
    experiment_catalog,
    experiment_names,
    format_result,
    get_spec,
    register,
    reset_default_engine,
    run_experiments,
    run_plan,
    set_formatter,
)
from repro.engine.scheduler import (
    EngineStats,
    ExperimentEngine,
    ProgressEvent,
)
from repro.engine.sharding import (
    plan_shards,
    sequence_digest,
    shard_count_to_size,
)

__all__ = [
    "MISS",
    "CacheStats",
    "ResultCache",
    "ENGINE_CACHE_VERSION",
    "EvalJob",
    "config_digest",
    "derive_seed",
    "execute_job",
    "register_job_kind",
    "EXPERIMENT_REGISTRY",
    "ExperimentPlan",
    "ExperimentSpec",
    "assemble_plan",
    "default_engine",
    "experiment_catalog",
    "experiment_names",
    "format_result",
    "get_spec",
    "register",
    "reset_default_engine",
    "run_experiments",
    "run_plan",
    "set_formatter",
    "EngineStats",
    "ExperimentEngine",
    "ProgressEvent",
    "plan_shards",
    "sequence_digest",
    "shard_count_to_size",
]
