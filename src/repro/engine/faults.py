"""Fault tolerance primitives for the experiment engine.

Three concerns live here, shared by the scheduler, the serving layer,
and the CLI:

* **Retry policy** — :class:`RetryPolicy` describes how many attempts a
  job gets, which exceptions are worth retrying, and how long to back
  off between attempts.  Backoff jitter is *deterministic*, derived
  from the job's content address, so two runs of the same schedule
  retry on identical timelines and stay CI-reproducible.
* **Structured failure** — :class:`JobFailure` is the terminal record
  of a job that exhausted its attempts (or was quarantined as
  *poisoned* after repeatedly killing its worker).  In partial-results
  mode (``run(..., on_error="collect")``) the scheduler maps failed
  jobs to their :class:`JobFailure` instead of raising, and
  :class:`ExperimentFailure` aggregates them per experiment for the
  registry/serving layers.
* **Fault injection** — :class:`FaultPlan` is a deterministic,
  config/env-driven harness that makes :func:`~repro.engine.jobs.
  execute_job` raise, sleep past its timeout, or hard-kill its worker
  on chosen attempts of matching jobs.  Every recovery path in the
  scheduler is therefore testable with ordinary unit tests and CI
  smoke runs — no flaky "hope a worker dies" tests.

Fault-plan DSL
--------------

A plan is a ``;``-separated list of rules, each
``PATTERN@ATTEMPTS:ACTION``:

``PATTERN``
    An :mod:`fnmatch` glob matched against the job's *fault label*
    (:func:`fault_label`):
    ``kind:method:model:dataset:nNUM:sSEED[:extra=value...]`` — e.g.
    ``eval-shard:focus:llava-video:videomme:n2:s0:span=(0, 2)``.
``ATTEMPTS``
    ``N`` fires the rule on attempts 1..N of matching jobs (so ``1``
    is "flaky once", ``2`` "flaky twice"); ``*`` fires on every
    attempt (a *poison* job that can never succeed).
``ACTION``
    ``raise`` (raise :class:`InjectedFault`), ``sleep=SECONDS``
    (hang past the timeout), or ``kill`` (``os._exit`` the worker
    process; outside a pool worker this degrades to raising
    :class:`InjectedCrash` so in-process runs stay survivable).

Example — the CI smoke plan::

    eval-shard:focus:*@2:raise; eval-shard:dense:*@1:sleep=30; eval-shard:cmc:*@1:kill

Plans activate either programmatically (:func:`install_fault_plan`)
or through the ``REPRO_FAULT_PLAN`` environment variable, which pool
worker processes inherit — the same rule text drives the parent's
serial path and every worker.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.engine.jobs import EvalJob, execute_job

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
"""Environment variable holding the active fault-plan spec (inherited
by pool worker processes)."""

FAILURE_KINDS = ("error", "timeout", "poisoned", "shards-failed")
"""Every ``kind`` a :class:`JobFailure` can carry."""


class InjectedFault(RuntimeError):
    """Raised by a fault plan's ``raise`` action (transient by design)."""


class InjectedCrash(RuntimeError):
    """A ``kill`` action triggered outside a pool worker process.

    Killing the only process would end the run itself, so in-process
    execution degrades the action to an ordinary (retryable) exception.
    """


class JobTimeout(RuntimeError):
    """A job exceeded its per-job wall-clock budget."""


class PeerUnreachable(RuntimeError):
    """A fleet peer could not take (or finish) a job batch.

    Raised by :class:`repro.remote.dispatch.PeerClient` on transport
    failure, a non-200 response, or an undecodable result envelope.
    The scheduler treats it exactly like a lost worker: the batch is
    re-queued for local execution without charging any job's retry
    budget, and the peer sits out a cooldown.
    """


class PoisonedJob(RuntimeError):
    """Raised (in ``on_error="raise"`` mode) for a quarantined job.

    Carries the structured :class:`JobFailure` as :attr:`failure`.
    """

    def __init__(self, failure: "JobFailure") -> None:
        super().__init__(failure.describe())
        self.failure = failure


@dataclass(frozen=True)
class JobFailure:
    """Terminal record of one permanently failed job.

    Attributes:
        job: The failed job (its key identifies what was lost).
        kind: ``"error"`` (exceptions exhausted the attempt budget),
            ``"timeout"`` (wall-clock budget exhausted),
            ``"poisoned"`` (quarantined after repeatedly killing its
            worker), or ``"shards-failed"`` (a sharded cell whose
            spans failed — the parent cannot be merged).
        attempts: Attempts consumed before giving up.
        tracebacks: One formatted traceback (or crash/timeout note)
            per failed attempt, oldest first.
    """

    job: EvalJob
    kind: str
    attempts: int
    tracebacks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )

    @property
    def error(self) -> str:
        """The last attempt's one-line error summary."""
        if not self.tracebacks:
            return ""
        return self.tracebacks[-1].strip().splitlines()[-1]

    def describe(self) -> str:
        return (
            f"{self.kind} after {self.attempts} attempt(s): "
            f"{self.job.describe()}"
            + (f" ({self.error})" if self.error else "")
        )

    def as_detail(self) -> dict[str, Any]:
        """JSON-native payload for progress events and the run store."""
        return {
            "job_id": self.job.job_id,
            "label": self.job.describe(),
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
            "tracebacks": list(self.tracebacks),
        }


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment's aggregated job failures (partial-results mode).

    Returned by the registry in place of an assembled result when any
    of the experiment's jobs failed under ``on_error="collect"``; the
    formatter layer renders :meth:`describe` in place of the report.
    """

    name: str
    failures: tuple[JobFailure, ...]

    def describe(self) -> str:
        lines = [
            f"experiment {self.name or '<unnamed>'}: "
            f"{len(self.failures)} job(s) failed"
        ]
        lines += [f"  - {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)

    def as_detail(self) -> list[dict[str, Any]]:
        return [failure.as_detail() for failure in self.failures]


def shard_failure(
    parent: EvalJob, span_failures: list[JobFailure]
) -> JobFailure:
    """The parent-cell failure for a sharded cell with failed spans."""
    return JobFailure(
        job=parent,
        kind="shards-failed",
        attempts=0,
        tracebacks=tuple(
            failure.describe() for failure in span_failures
        ),
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed job attempts are retried.

    Attributes:
        max_attempts: Total attempts a job gets before its failure is
            permanent (``1`` disables retries; worker-crash recovery
            is independent of this — see ``max_crash_attempts``).
        backoff_s: Base backoff before the second attempt.
        backoff_multiplier: Exponential growth factor per retry.
        max_backoff_s: Backoff ceiling.
        jitter: Extra backoff fraction in ``[0, jitter]``, derived
            *deterministically* from ``(job_id, attempt)`` — spreads a
            thundering herd without sacrificing reproducibility.
        max_crash_attempts: Consecutive attributed worker crashes
            before a job is quarantined as *poisoned*.  Crashes do not
            consume the regular ``max_attempts`` budget: a job whose
            cohort-mate killed the worker must not lose its own
            retries to co-victimhood.
        retryable: Exception classes worth retrying.
        non_retryable: Exception classes never retried, even when they
            match ``retryable``.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 5.0
    jitter: float = 0.1
    max_crash_attempts: int = 2
    retryable: tuple[type[BaseException], ...] = (Exception,)
    non_retryable: tuple[type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_multiplier < 1:
            raise ValueError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.max_backoff_s < 0:
            raise ValueError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_crash_attempts < 1:
            raise ValueError(
                "max_crash_attempts must be >= 1, got "
                f"{self.max_crash_attempts}"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether an exception class is worth another attempt."""
        return isinstance(exc, self.retryable) and not isinstance(
            exc, self.non_retryable
        )

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Whether a job with ``attempts`` failures gets another try."""
        return attempts < self.max_attempts and self.is_retryable(exc)

    def delay_s(self, job: EvalJob, attempt: int) -> float:
        """Backoff before re-dispatching ``job`` after failed attempt
        number ``attempt`` (1-based).  Deterministic: the jitter
        fraction is a pure function of ``(job_id, attempt)``."""
        base = min(
            self.backoff_s * self.backoff_multiplier ** max(0, attempt - 1),
            self.max_backoff_s,
        )
        if base <= 0.0 or self.jitter <= 0.0:
            return base
        digest = hashlib.sha256(
            f"{job.job_id}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "little") / 2**64
        return base * (1.0 + self.jitter * fraction)


DEFAULT_RETRY_POLICY = RetryPolicy()
"""The engine's policy when none is configured: no exception retries
(``max_attempts=1``), but worker-crash recovery stays on with the
default quarantine threshold."""


# -- fault injection --------------------------------------------------


def fault_label(job: EvalJob) -> str:
    """The canonical label fault-plan patterns match against."""
    extras = "".join(
        f":{name}={value!r}" for name, value in job.extra
    )
    return (
        f"{job.kind}:{job.method}:{job.model}:{job.dataset}"
        f":n{job.num_samples}:s{job.seed}{extras}"
    )


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault-plan rule (see the module docstring's DSL)."""

    pattern: str
    action: str  # "raise" | "sleep" | "kill"
    param: float = 0.0  # sleep seconds
    max_attempt: int | None = 1  # fire while attempt <= this; None = always

    def __post_init__(self) -> None:
        if self.action not in ("raise", "sleep", "kill"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise ValueError(
                f"attempts must be >= 1 or '*', got {self.max_attempt}"
            )
        if self.action == "sleep" and self.param < 0:
            raise ValueError(
                f"sleep seconds must be >= 0, got {self.param}"
            )

    def fires(self, job: EvalJob, attempt: int) -> bool:
        if self.max_attempt is not None and attempt > self.max_attempt:
            return False
        return fnmatch.fnmatchcase(fault_label(job), self.pattern)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultRule` injections."""

    rules: tuple[FaultRule, ...]
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``;``-separated rule DSL; raises ``ValueError``."""
        rules = []
        for rule_text in spec.split(";"):
            rule_text = rule_text.strip()
            if not rule_text:
                continue
            head, sep, action_text = rule_text.rpartition(":")
            if not sep:
                raise ValueError(
                    f"fault rule {rule_text!r} lacks ':ACTION' "
                    "(expected PATTERN@ATTEMPTS:ACTION)"
                )
            pattern, sep, attempts_text = head.rpartition("@")
            if not sep or not pattern:
                raise ValueError(
                    f"fault rule {rule_text!r} lacks 'PATTERN@ATTEMPTS' "
                    "(expected PATTERN@ATTEMPTS:ACTION)"
                )
            if attempts_text == "*":
                max_attempt = None
            else:
                try:
                    max_attempt = int(attempts_text)
                except ValueError:
                    raise ValueError(
                        f"fault rule {rule_text!r} has bad attempts "
                        f"{attempts_text!r} (an integer or '*')"
                    ) from None
            action, _, param_text = action_text.partition("=")
            param = 0.0
            if action == "sleep":
                try:
                    param = float(param_text)
                except ValueError:
                    raise ValueError(
                        f"fault rule {rule_text!r}: sleep needs "
                        "'sleep=SECONDS'"
                    ) from None
            elif param_text:
                raise ValueError(
                    f"fault rule {rule_text!r}: action {action!r} "
                    "takes no '=' parameter"
                )
            rules.append(FaultRule(
                pattern=pattern, action=action, param=param,
                max_attempt=max_attempt,
            ))
        if not rules:
            raise ValueError(f"fault plan {spec!r} contains no rules")
        return cls(rules=tuple(rules), spec=spec)

    def rule_for(self, job: EvalJob, attempt: int) -> FaultRule | None:
        """The first rule firing for this ``(job, attempt)``, if any."""
        for rule in self.rules:
            if rule.fires(job, attempt):
                return rule
        return None

    def apply(
        self, job: EvalJob, attempt: int, in_worker: bool = False
    ) -> None:
        """Inject the matching fault, if any, for this dispatch."""
        rule = self.rule_for(job, attempt)
        if rule is None:
            return
        label = fault_label(job)
        if rule.action == "raise":
            raise InjectedFault(
                f"injected fault for {label} (attempt {attempt})"
            )
        if rule.action == "sleep":
            time.sleep(rule.param)
            return
        if in_worker:  # hard-kill: BrokenProcessPool in the parent
            os._exit(13)
        raise InjectedCrash(
            f"injected worker kill for {label} (attempt {attempt}) "
            "outside a pool worker"
        )


_installed_plan: FaultPlan | None = None
_env_plan_cache: tuple[str | None, FaultPlan | None] = (None, None)


def install_fault_plan(spec: "str | FaultPlan | None") -> FaultPlan | None:
    """Activate (or, with ``None``, clear) a fault plan process-wide.

    The parsed spec is also exported through :data:`FAULT_PLAN_ENV` so
    pool worker processes spawned afterwards inherit it.
    """
    global _installed_plan
    if spec is None:
        _installed_plan = None
        os.environ.pop(FAULT_PLAN_ENV, None)
        return None
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    _installed_plan = plan
    if plan.spec:
        os.environ[FAULT_PLAN_ENV] = plan.spec
    return plan


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, else one parsed from the environment."""
    if _installed_plan is not None:
        return _installed_plan
    global _env_plan_cache
    spec = os.environ.get(FAULT_PLAN_ENV)
    if not spec:
        return None
    if _env_plan_cache[0] != spec:
        _env_plan_cache = (spec, FaultPlan.parse(spec))
    return _env_plan_cache[1]


def run_job_attempt(
    job: EvalJob, attempt: int = 1, in_worker: bool = False
) -> Any:
    """Execute one job attempt, applying the active fault plan first.

    This is the scheduler's dispatch entry point — the pool submits it
    (with ``in_worker=True``) so the attempt number reaches the worker
    and env-driven fault plans fire identically under ``fork`` and
    ``spawn`` start methods.  Without an active plan it is exactly
    :func:`~repro.engine.jobs.execute_job`.
    """
    plan = active_fault_plan()
    if plan is not None:
        plan.apply(job, attempt, in_worker=in_worker)
    return execute_job(job)
