"""Streaming cross-modal importance analyzer (Sec. V-A).

For each image token ``j`` the SEC computes the maximum attention score
it receives from any text token across all heads::

    s_j = max_{1<=k<=n, 1<=i<=T} I^{(k)}_{i,j}

where ``I`` is the text-to-image block of ``softmax(Q K^T)``.  The
hardware realizes this with ``a`` parallel max units fed directly from
the SoftMax output in either a *parallel (spatial)* or an *orthogonal
(temporal)* dataflow; :class:`StreamingImportanceAnalyzer` models both
and is verified equivalent to the closed-form reduction.
"""

from __future__ import annotations

import numpy as np


def importance_scores(
    probs: np.ndarray, is_text: np.ndarray
) -> np.ndarray:
    """Closed-form cross-modal importance of every image token.

    Args:
        probs: Attention probabilities, shape ``(heads, S, S)``.
        is_text: Boolean mask over the ``S`` tokens.

    Returns:
        Importance vector over the image tokens, in token order
        (length ``S - T``).
    """
    probs = np.asarray(probs)
    if probs.ndim != 3:
        raise ValueError("probs must have shape (heads, S, S)")
    is_text = np.asarray(is_text, dtype=bool)
    if not is_text.any():
        raise ValueError("importance requires at least one text token")
    text_to_image = probs[:, is_text, :][:, :, ~is_text]
    return text_to_image.max(axis=(0, 1))


class StreamingImportanceAnalyzer:
    """Hardware model of the ``a``-lane max-reduction pipeline.

    The analyzer ingests the SoftMax output as it streams out of the
    special function unit, ``lanes`` attention scores per cycle, and
    maintains one running maximum per image token.  Both dataflows of
    Fig. 5(2) are supported:

    * ``parallel`` — columns (one row at a time) stream into the max
      lanes; each chunk of ``lanes`` columns updates ``lanes`` running
      maxima.
    * ``orthogonal`` — rows are buffered and the reduction proceeds
      column-wise.

    Either way the result equals :func:`importance_scores`; tests
    assert this equivalence, which is the property that lets the
    hardware decouple the analyzer from the compute path.
    """

    def __init__(self, num_image_tokens: int, lanes: int = 32) -> None:
        if num_image_tokens < 1:
            raise ValueError("need at least one image token")
        if lanes < 1:
            raise ValueError("need at least one max lane")
        self.lanes = lanes
        self.running_max = np.full(num_image_tokens, -np.inf, dtype=np.float32)
        self.cycles = 0

    def consume_row(self, row: np.ndarray) -> None:
        """Stream one text-to-image attention row (parallel dataflow)."""
        row = np.asarray(row, dtype=np.float32)
        if row.shape != self.running_max.shape:
            raise ValueError("row length must equal the image-token count")
        for start in range(0, row.shape[0], self.lanes):
            chunk = slice(start, min(start + self.lanes, row.shape[0]))
            self.running_max[chunk] = np.maximum(
                self.running_max[chunk], row[chunk]
            )
            self.cycles += 1

    def consume_columns(self, columns: np.ndarray) -> None:
        """Stream buffered columns (orthogonal dataflow).

        Args:
            columns: Array of shape ``(T, width)`` holding ``width``
                adjacent image-token columns over all text rows,
                starting at the analyzer's current column cursor.
        """
        columns = np.asarray(columns, dtype=np.float32)
        if columns.ndim != 2:
            raise ValueError("columns must be 2-D (text rows x width)")
        cursor = getattr(self, "_column_cursor", 0)
        width = columns.shape[1]
        if cursor + width > self.running_max.shape[0]:
            raise ValueError("column stream exceeds the image-token count")
        reduced = columns.max(axis=0)
        self.running_max[cursor:cursor + width] = np.maximum(
            self.running_max[cursor:cursor + width], reduced
        )
        self._column_cursor = cursor + width
        self.cycles += columns.shape[0] * max(1, width // self.lanes)

    def result(self) -> np.ndarray:
        """Current importance estimate (running maxima)."""
        return self.running_max.copy()

    def analyze(self, text_to_image: np.ndarray) -> np.ndarray:
        """Convenience: stream a whole ``(heads, T, M)`` block row-wise."""
        block = np.asarray(text_to_image, dtype=np.float32)
        if block.ndim == 2:
            block = block[None]
        for head in block:
            for row in head:
                self.consume_row(row)
        return self.result()


BUFFER_BYTES_PER_TOKEN = 2
"""FP16 importance entry per image token (25 KB buffer in the paper's
12.8k-token worst case)."""


def importance_buffer_bytes(num_image_tokens: int) -> int:
    """On-chip buffer footprint of the importance vector."""
    return num_image_tokens * BUFFER_BYTES_PER_TOKEN
