"""The Focus plugin: multilevel concentration over a forward pass.

:class:`FocusPlugin` wires the Semantic Concentrator (SEC) and the
Similarity Concentrator (SIC: gather + scatter) into the inference
engine's hook points, mirroring how the Focus Unit sits between the
compute core and the memory interface (Fig. 4):

* at schedule layers, ``after_attention_probs`` runs the SEC and
  prunes low-relevance image tokens;
* at every ``qkv`` / ``o_proj`` / ``fc1`` GEMM, ``gemm_input`` runs the
  similarity gather on the incoming activation, records the
  concentrated tile statistics, and annotates the producer GEMM's
  write-back compression.

Ablation switches reproduce Fig. 11 (SEC only / SEC+SIC) and the
token-wise variant of Fig. 2(c).
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.core.blocks import linear_index
from repro.core.gather import SimilarityGather
from repro.core.scatter import scatter_accumulation_ops
from repro.core.semantic import SemanticConcentrator
from repro.model.plugins import DedupStats, InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.vlm import SyntheticVLM, TokenState

GATHER_SITES = ("qkv", "o_proj", "fc1")
"""GEMMs whose inputs are outputs of FFN / PV / O-projection — the
similarity-gather sites of Sec. VI-A."""


class FocusPlugin(InferencePlugin):
    """Streaming multilevel concentration for a synthetic VLM."""

    reusable = True
    """One instance drives any number of forward passes: the SEC and
    gather engine are configuration-only, and the tile-plan cache is
    keyed by a per-forward nonce (see :meth:`begin`) so plans from one
    sample can never serve another that happens to share a version
    number."""

    def __init__(
        self,
        model: SyntheticVLM | ModelConfig | int,
        config: FocusConfig = DEFAULT_CONFIG,
        enable_sec: bool = True,
        enable_sic: bool = True,
        token_wise: bool = False,
    ) -> None:
        """Create a Focus plugin.

        Args:
            model: The model (or its config, or just its layer count)
                the plugin will run under; needed to scale the
                retention schedule.
            config: Focus hyper-parameters.
            enable_sec: Run semantic (token-level) pruning.
            enable_sic: Run vector-level similarity concentration.
            token_wise: Compare whole tokens instead of sub-vectors
                (Fig. 2(c) ablation; implies coarser granularity).
        """
        if isinstance(model, SyntheticVLM):
            num_layers = model.config.num_layers
        elif isinstance(model, ModelConfig):
            num_layers = model.num_layers
        else:
            num_layers = int(model)
        self.config = config
        self.enable_sec = enable_sec
        self.enable_sic = enable_sic
        self.sec = SemanticConcentrator(config, num_layers)
        self.gather_engine = SimilarityGather(config, token_wise=token_wise)
        self._forward_nonce = 0

    def begin(self, state: TokenState) -> None:
        # A fresh nonce per forward pass keeps tile-plan cache tokens
        # distinct across samples: two samples both start at version 0,
        # but their token positions differ, so a version-only token
        # would let sample A's cached plans serve sample B.
        self._forward_nonce += 1

    def after_attention_probs(
        self, layer_index: int, probs: np.ndarray, state: TokenState
    ) -> np.ndarray | None:
        if not self.enable_sec:
            return None
        grid_linear = linear_index(
            np.maximum(state.positions, 0), state.grid
        )
        decision = self.sec.prune(
            layer_index,
            probs,
            state.is_text,
            state.num_image_initial,
            grid_linear,
        )
        if decision is None:
            return None
        state.trace.metadata_bits += decision.metadata_bits
        state.trace.sec_events.append(decision.event)
        return decision.keep

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        state: TokenState,
        producer,
        n: int,
    ) -> tuple[np.ndarray, DedupStats | None]:
        if not self.enable_sic or site not in GATHER_SITES:
            return x, None
        result = self.gather_engine.gather(
            x,
            state.positions,
            state.is_text,
            state.grid,
            cache_token=(self._forward_nonce, state.version),
        )
        stats = DedupStats(
            unique_vectors=result.unique_total,
            total_vectors=result.total_vectors,
            map_bits=result.map_bits,
            vector_size=result.vector_size,
            tile_lengths=result.tile_lengths,
            tile_rows=result.tile_rows,
            scatter_ops=scatter_accumulation_ops(
                x.shape[0], n, result.reps.shape[0]
            ),
        )
        state.trace.sic_comparisons += result.comparisons
        return result.x_approx, stats
