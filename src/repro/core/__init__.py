"""The paper's contribution: streaming multilevel concentration."""

from repro.core.adaptive import (
    AdaptiveFocusPlugin,
    AdaptiveSemanticConcentrator,
    TopPSchedule,
)
from repro.core.blocks import (
    build_neighbor_table,
    comparisons_in_table,
    linear_index,
    neighbor_offsets,
)
from repro.core.gather import GatherResult, SimilarityGather, TilePlan
from repro.core.importance import (
    StreamingImportanceAnalyzer,
    importance_buffer_bytes,
    importance_scores,
)
from repro.core.layouter import BankAddress, ConvolutionLayouter
from repro.core.matching import (
    MATCHER_MODES,
    LevelGroup,
    MatchOutcome,
    SimilarityMatcher,
    build_level_groups,
    level_schedule,
    partner_levels,
)
from repro.core.offsets import (
    decode_offsets,
    encode_offsets,
    encoded_bits,
    offsets_to_positions,
)
from repro.core.pipeline import GATHER_SITES, FocusPlugin
from repro.core.scatter import (
    gathered_gemm,
    scatter_accumulation_ops,
    scatter_counts,
)
from repro.core.semantic import PruneDecision, SemanticConcentrator
from repro.core.topk import (
    StreamingBubbleSorter,
    sorter_cycles,
    top_k_indices,
    top_k_mask,
)

__all__ = [
    "AdaptiveFocusPlugin",
    "AdaptiveSemanticConcentrator",
    "TopPSchedule",
    "build_neighbor_table",
    "comparisons_in_table",
    "linear_index",
    "neighbor_offsets",
    "GatherResult",
    "SimilarityGather",
    "TilePlan",
    "StreamingImportanceAnalyzer",
    "importance_buffer_bytes",
    "importance_scores",
    "BankAddress",
    "ConvolutionLayouter",
    "MATCHER_MODES",
    "LevelGroup",
    "MatchOutcome",
    "SimilarityMatcher",
    "build_level_groups",
    "level_schedule",
    "partner_levels",
    "decode_offsets",
    "encode_offsets",
    "encoded_bits",
    "offsets_to_positions",
    "GATHER_SITES",
    "FocusPlugin",
    "gathered_gemm",
    "scatter_accumulation_ops",
    "scatter_counts",
    "PruneDecision",
    "SemanticConcentrator",
    "StreamingBubbleSorter",
    "sorter_cycles",
    "top_k_indices",
    "top_k_mask",
]
