"""Spatiotemporal comparison-block construction (Sec. VI-A).

A ``bf x bh x bw`` sliding window with stride 1 sweeps the FHW token
grid.  For every token acting as *key* (the highest linear index in its
window), its comparison partners are the surviving tokens at the
backward offsets ``(f-df, r-dr, c-dc)``.  Semantic pruning leaves holes
in the grid, so partners are resolved through a position lookup built
from the retained tokens' recovered coordinates.
"""

from __future__ import annotations

import numpy as np


def neighbor_offsets(block: tuple[int, int, int]) -> np.ndarray:
    """Backward (df, dr, dc) offsets of a block, excluding (0, 0, 0).

    For the default 2x2x2 block this yields the 7 comparison partners
    of Fig. 6; in linear FHW index terms they are the paper's fixed
    offsets ``-1, -W, -W-1, -HW, -HW-1, -HW-W, -HW-W-1``.
    """
    bf, bh, bw = block
    if min(bf, bh, bw) < 1:
        raise ValueError("block dimensions must be >= 1")
    offsets = [
        (df, dr, dc)
        for df in range(bf)
        for dr in range(bh)
        for dc in range(bw)
        if (df, dr, dc) != (0, 0, 0)
    ]
    return np.array(offsets, dtype=np.int64).reshape(-1, 3)


def linear_index(positions: np.ndarray, grid: tuple[int, int, int]) -> np.ndarray:
    """Linear FHW index of ``(n, 3)`` positions on the given grid."""
    frames, height, width = grid
    positions = np.asarray(positions, dtype=np.int64)
    return (
        positions[:, 0] * height * width
        + positions[:, 1] * width
        + positions[:, 2]
    )


def build_neighbor_table(
    positions: np.ndarray,
    grid: tuple[int, int, int],
    block: tuple[int, int, int],
) -> np.ndarray:
    """Comparison-partner table for a set of surviving tokens.

    Args:
        positions: ``(n, 3)`` FHW coordinates of surviving tokens, in
            stream order (strictly increasing linear index).
        grid: Full ``(frames, height, width)`` grid.
        block: Comparison-block dimensions.

    Returns:
        Integer array of shape ``(n, len(offsets))``: entry ``[i, o]``
        is the *local* index (into ``positions``) of the partner at
        backward offset ``o`` from token ``i``, or ``-1`` when that
        grid cell is pruned or out of bounds.  All valid partners have
        local index ``< i`` (they precede the key in stream order).
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (n, 3)")
    offsets = neighbor_offsets(block)
    n = positions.shape[0]
    table = np.full((n, offsets.shape[0]), -1, dtype=np.int64)
    if n == 0:
        return table

    linear = linear_index(positions, grid)
    if (np.diff(linear) <= 0).any():
        raise ValueError("positions must be in strictly increasing FHW order")
    lookup = {int(v): i for i, v in enumerate(linear)}

    frames, height, width = grid
    for o, (df, dr, dc) in enumerate(offsets):
        partner = positions - np.array([df, dr, dc], dtype=np.int64)
        valid = (partner >= 0).all(axis=1)
        partner_linear = (
            partner[:, 0] * height * width
            + partner[:, 1] * width
            + partner[:, 2]
        )
        for i in np.nonzero(valid)[0]:
            j = lookup.get(int(partner_linear[i]))
            if j is not None and j < i:
                table[i, o] = j
    return table


def comparisons_in_table(table: np.ndarray) -> int:
    """Total pairwise comparisons implied by a neighbor table."""
    return int(np.count_nonzero(np.asarray(table) >= 0))
