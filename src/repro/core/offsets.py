"""Localized offset encoding for retained-token positions (Sec. V-C).

After semantic pruning, the convolution-style layouter must recover
each retained token's (frame, row, col) coordinate.  Rather than
storing absolute indices, the SEC's offset encoder streams a small
delta per retained token — the gap to the previous retained token —
which is lossless, cheap to decode in stream order, and compact enough
to ride alongside the GEMM output.
"""

from __future__ import annotations

import numpy as np

DEFAULT_FIELD_BITS = 8
"""Offset field width; gaps >= 2**bits spill into escape words."""


def encode_offsets(indices: np.ndarray) -> np.ndarray:
    """Encode sorted token indices as successive deltas.

    The first delta is relative to index ``-1``, so all deltas are
    strictly positive: the identity permutation encodes as all-ones.

    Args:
        indices: Strictly increasing original token indices.

    Returns:
        Array of positive deltas, same length as ``indices``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("indices must be 1-D")
    if indices.size and indices[0] < 0:
        raise ValueError("indices must be non-negative")
    deltas = np.diff(indices, prepend=-1)
    if indices.size and (deltas <= 0).any():
        raise ValueError("indices must be strictly increasing")
    return deltas


def decode_offsets(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`encode_offsets`."""
    deltas = np.asarray(deltas, dtype=np.int64)
    if deltas.ndim != 1:
        raise ValueError("deltas must be 1-D")
    if deltas.size and (deltas <= 0).any():
        raise ValueError("deltas must be strictly positive")
    return np.cumsum(deltas) - 1


def offsets_to_positions(
    indices: np.ndarray, grid: tuple[int, int, int]
) -> np.ndarray:
    """Expand linear token indices to (frame, row, col) coordinates.

    Args:
        indices: Linear indices in FHW order.
        grid: ``(frames, height, width)`` of the visual token grid.

    Returns:
        Integer array of shape ``(len(indices), 3)``.
    """
    frames, height, width = grid
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices >= frames * height * width).any():
        raise ValueError("index outside the FHW grid")
    frame = indices // (height * width)
    rest = indices % (height * width)
    return np.stack([frame, rest // width, rest % width], axis=1)


def encoded_bits(deltas: np.ndarray, field_bits: int = DEFAULT_FIELD_BITS) -> int:
    """Metadata size of an offset stream.

    Each delta occupies one ``field_bits`` word; deltas that overflow
    the field consume additional escape words (value ``0`` marking a
    continuation), mirroring a fixed-width streaming encoder.
    """
    deltas = np.asarray(deltas, dtype=np.int64)
    if field_bits < 2:
        raise ValueError("field_bits must be >= 2")
    capacity = (1 << field_bits) - 1
    words = np.maximum(1, -(-deltas // capacity))
    return int(words.sum()) * field_bits
