"""Similarity Scatter: concentrated GEMM with map-driven reconstruction
(Sec. VI-C).

The GEMM over a gathered input runs on only the unique vectors of each
k-block; each partial-sum vector is then *scattered* — replicated to
every original row that maps to it — and accumulated into the
output-stationary tile buffer.  :func:`gathered_gemm` implements that
execution order and is verified (tests) to equal the dense GEMM over
the gathered input ``x_approx @ w``, which is the correctness property
("lossless reconstruction via index-based references") the paper
claims.
"""

from __future__ import annotations

import numpy as np

from repro.core.gather import GatherResult


def gathered_gemm(
    x: np.ndarray, weight: np.ndarray, result: GatherResult
) -> np.ndarray:
    """Execute ``x_approx @ weight`` the way the hardware does.

    For each k-block the PE array multiplies only the unique input
    vectors by the corresponding weight rows; the similarity map then
    scatters each partial sum to its original rows and the accumulator
    sums across k-blocks.

    Args:
        x: Original (pre-gather) input, shape ``(rows, k)``.
        weight: Weight matrix, shape ``(k, n)``.
        result: Gather outcome for ``x``.

    Returns:
        Output of shape ``(rows, n)``.
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    rows, k = x.shape
    if weight.shape[0] != k:
        raise ValueError("weight rows must match input columns")
    v = result.vector_size
    out = np.zeros((rows, weight.shape[1]), dtype=np.float32)
    for b in range(result.reps.shape[0]):
        col0 = b * v
        col1 = min(col0 + v, k)
        reps = result.reps[b]
        unique_rows, inverse = np.unique(reps, return_inverse=True)
        partial_unique = x[unique_rows, col0:col1] @ weight[col0:col1]
        out += partial_unique[inverse]
    return out


def scatter_counts(result: GatherResult) -> np.ndarray:
    """How many original rows each unique vector represents.

    Returns:
        One entry per (k-block, unique vector), concatenated in k-block
        order; useful for analysing replication skew.
    """
    counts: list[int] = []
    for b in range(result.reps.shape[0]):
        _, sizes = np.unique(result.reps[b], return_counts=True)
        counts.extend(int(s) for s in sizes)
    return np.array(counts, dtype=np.int64)


def scatter_accumulation_ops(rows: int, n: int, k_blocks: int) -> int:
    """Accumulator operations of the scatter phase (Fig. 10(b), (d)).

    Every outer-loop iteration (one per k-block) accumulates a full
    ``rows x n`` reconstructed tile into the output-stationary buffer,
    regardless of how few unique vectors the PE array processed — the
    accumulator-vs-array trade-off that makes very small vector sizes
    unattractive.
    """
    return rows * n * k_blocks
