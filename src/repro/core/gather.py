"""Similarity Gather: per-GEMM-tile vector deduplication (Sec. VI-A).

The gather walks the token stream in m-tiles (Table I: ``m = 1024``),
splits each tile's rows into k-blocks of ``vector_size`` columns, and
runs the streaming matcher within spatiotemporal comparison blocks.
Matching never crosses a tile boundary — the property behind the
Fig. 10(a) tile-size/latency trade-off — and text tokens (which have no
FHW position) are always stored as unique.

Hot-path layout: everything that depends only on the *token set* (tile
spans, neighbor tables, wavefront dependency levels) is computed once
per set and cached as a :class:`TilePlan` keyed on
``(cache_token, tile)`` — the forward pass passes
``TokenState.version`` as the token, so all gather sites (qkv /
o_proj / fc1) of every layer between two semantic-pruning events share
one plan.  Everything that depends on the *values* (padded k-blocks,
L2 norms) is computed once per gather call and sliced per tile instead
of being rebuilt inside the per-tile matcher.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.config import FocusConfig
from repro.core.blocks import build_neighbor_table, comparisons_in_table
from repro.core.matching import (
    BatchLevelGroup,
    LevelGroup,
    SimilarityMatcher,
    build_batch_schedule,
    build_level_groups,
)

__all__ = [
    "BATCH_PLAN_CACHE_MAX_ENTRIES",
    "BatchGatherResult",
    "BatchTilePlan",
    "GatherResult",
    "SimilarityGather",
    "TABLE_CACHE_MAX_ENTRIES",
    "TilePlan",
    "comparisons_in_table",
]

TABLE_CACHE_MAX_ENTRIES = 64
"""Upper bound on cached tile plans per gather engine.

A forward pass needs at most ``ceil(tokens / m_tile)`` plans per
token set, so 64 comfortably covers every model in the zoo while
keeping a long-lived gather (streaming service, benchmark loop) at
bounded memory."""

BATCH_PLAN_CACHE_MAX_ENTRIES = 16
"""Upper bound on cached *batch* tile plans (stacked tables + merged
wavefront schedules).  A batched pass sees at most a handful of
distinct per-lane layout combinations (one per semantic-pruning
event), so a small LRU covers a whole pass while keeping the larger
stacked index arrays at bounded memory."""


@dataclass
class TilePlan:
    """Token-set-dependent (value-independent) state of one m-tile.

    Attributes:
        table: ``(rows, n_offsets)`` local partner indices.
        schedule: :func:`~repro.core.matching.build_level_groups` of
            the table — the wavefront matcher's per-level index
            structures, ready for batched matching.  ``None`` for a
            reference-mode gather, which never reads them (keeping
            the A/B arm's timings honest).
    """

    table: np.ndarray
    schedule: tuple[LevelGroup, ...] | None


@dataclass
class BatchTilePlan:
    """Stacked token-set-dependent state of one m-tile, per lane.

    Attributes:
        tables: ``(S, rows, n_offsets)`` per-lane partner tables
            (stacked :attr:`TilePlan.table`; lanes may differ after
            semantic pruning diverges their layouts).
        schedule: Merged wavefront schedule
            (:func:`~repro.core.matching.build_batch_schedule`), with
            each level padded to the widest lane.  ``None`` in
            reference mode.
    """

    tables: np.ndarray
    schedule: tuple[BatchLevelGroup, ...] | None


@dataclass
class GatherResult:
    """Outcome of gathering one GEMM input matrix.

    Attributes:
        x_approx: The input with every redundant vector replaced by its
            representative's value (what the scatter reconstructs).
        reps: Global representative row per ``(k_block, row)``; a row
            maps to itself when unique.
        vector_size: Effective vector length used.
        unique_total: Total unique vectors over all (tile, k-block).
        total_vectors: Vector count before concentration.
        tile_lengths: Unique count per (tile, k-block) — Fig. 13 data.
        tile_rows: Row count of the tile each entry came from (for
            normalizing tile lengths to paper-scale tiles).
        map_bits: Similarity-map metadata bits.
        comparisons: Pairwise comparisons performed by the matcher.
    """

    x_approx: np.ndarray
    reps: np.ndarray
    vector_size: int
    unique_total: int
    total_vectors: int
    tile_lengths: list[int] = field(default_factory=list)
    tile_rows: list[int] = field(default_factory=list)
    map_bits: int = 0
    comparisons: int = 0

    @property
    def compression_ratio(self) -> float:
        """Original vectors per stored vector (>= 1)."""
        if self.unique_total == 0:
            return 1.0
        return self.total_vectors / self.unique_total


@dataclass
class BatchGatherResult:
    """Outcome of gathering one GEMM input across a stack of samples.

    Attributes:
        x_approx: ``(S, tokens, k)`` concentrated inputs; slice ``s``
            is bit-identical to the per-sample
            :attr:`GatherResult.x_approx`.
        per_sample: One :class:`GatherResult` per stack slice (each
            ``x_approx`` a view into the stacked array), carrying the
            exact statistics the serial gather would have produced.
    """

    x_approx: np.ndarray
    per_sample: list[GatherResult]


class SimilarityGather:
    """Tile-local vector deduplication engine."""

    def __init__(
        self, config: FocusConfig, token_wise: bool = False
    ) -> None:
        """Create a gather engine.

        Args:
            config: Focus hyper-parameters (tile size, block shape,
                vector length, threshold, matcher implementation).
            token_wise: When ``True``, compare whole tokens instead of
                sub-vectors (the "Ours token-wise" ablation of
                Fig. 2(c)).
        """
        self.config = config
        self.token_wise = token_wise
        self.matcher = SimilarityMatcher(
            config.similarity_threshold, mode=config.matcher
        )
        self._table_cache: OrderedDict[tuple, TilePlan] = OrderedDict()
        self._batch_plan_cache: OrderedDict[tuple, BatchTilePlan] = (
            OrderedDict()
        )
        self._current_cache_token: object | None = None

    def _neighbor_table(
        self,
        positions: np.ndarray,
        is_text: np.ndarray,
        grid: tuple[int, int, int],
        tile: tuple[int, int],
        cache_token: object | None,
    ) -> np.ndarray:
        """Partner table for the rows of one tile (see :meth:`_tile_plan`)."""
        return self._tile_plan(
            positions, is_text, grid, tile, cache_token
        ).table

    def _tile_plan(
        self,
        positions: np.ndarray,
        is_text: np.ndarray,
        grid: tuple[int, int, int],
        tile: tuple[int, int],
        cache_token: object | None,
        evict_stale: bool = True,
    ) -> TilePlan:
        """Partner table + wavefront levels for the rows of one tile.

        Text rows receive no partners.  Plans are cached per
        ``(cache_token, tile)`` because the token set only changes at
        semantic-pruning layers.  The cache is bounded: entries from
        stale cache tokens are evicted when a new token arrives (token
        sets only move forward through a pass), and an LRU cap of
        :data:`TABLE_CACHE_MAX_ENTRIES` guards against pathological
        token churn, so memory stays flat across arbitrarily many
        samples.

        ``evict_stale=False`` switches to pure LRU: batched gathers
        interleave content-addressed layout tokens (one per lane
        group) within a single pass, so "token changed" no longer
        means "older tokens are dead" — evicting on change would
        rebuild every plan at every site.
        """
        key = (cache_token, tile)
        if cache_token is not None and key in self._table_cache:
            self._table_cache.move_to_end(key)
            return self._table_cache[key]

        start, stop = tile
        rows = stop - start
        tile_text = np.asarray(is_text[start:stop], dtype=bool)
        image_local = np.nonzero(~tile_text)[0]
        table = np.full(
            (rows, max(1, self._num_offsets())), -1, dtype=np.int64
        )
        if image_local.size:
            image_positions = positions[start:stop][image_local]
            image_table = build_neighbor_table(
                image_positions, grid, self._block()
            )
            remap = image_local  # local-image index -> tile-row index
            expanded = np.where(image_table >= 0, remap[image_table], -1)
            table[image_local, : expanded.shape[1]] = expanded
        schedule = (
            build_level_groups(table)
            if self.matcher.mode == "wavefront" else None
        )
        plan = TilePlan(table=table, schedule=schedule)

        if cache_token is not None:
            if evict_stale and cache_token != self._current_cache_token:
                stale = [
                    k for k in self._table_cache if k[0] != cache_token
                ]
                for k in stale:
                    del self._table_cache[k]
                self._current_cache_token = cache_token
            self._table_cache[key] = plan
            while len(self._table_cache) > TABLE_CACHE_MAX_ENTRIES:
                self._table_cache.popitem(last=False)
        return plan

    def _batch_tile_plan(
        self,
        plans: list[TilePlan],
        batch_key: tuple | None,
        tile: tuple[int, int],
    ) -> BatchTilePlan:
        """Stacked tables + merged wavefront schedule for one tile.

        ``batch_key`` is the tuple of per-lane cache tokens (or
        ``None`` when any lane is uncacheable).  Keyed on
        ``(batch_key, tile)`` under pure LRU — one batched pass only
        ever sees a handful of layout combinations, so the merged
        schedules are built once per combination, not once per site.
        """
        key = None if batch_key is None else (batch_key, tile)
        if key is not None and key in self._batch_plan_cache:
            self._batch_plan_cache.move_to_end(key)
            return self._batch_plan_cache[key]

        tables = np.stack([plan.table for plan in plans])
        schedule = (
            build_batch_schedule(
                tables, tuple(plan.schedule for plan in plans)
            )
            if self.matcher.mode == "wavefront" else None
        )
        batch_plan = BatchTilePlan(tables=tables, schedule=schedule)
        if key is not None:
            self._batch_plan_cache[key] = batch_plan
            while len(self._batch_plan_cache) > BATCH_PLAN_CACHE_MAX_ENTRIES:
                self._batch_plan_cache.popitem(last=False)
        return batch_plan

    def _block(self) -> tuple[int, int, int]:
        cfg = self.config
        return (cfg.block_frames, cfg.block_height, cfg.block_width)

    def _num_offsets(self) -> int:
        return self.config.block_size - 1

    def gather(
        self,
        x: np.ndarray,
        positions: np.ndarray,
        is_text: np.ndarray,
        grid: tuple[int, int, int],
        cache_token: object | None = None,
    ) -> GatherResult:
        """Concentrate a GEMM input matrix.

        Args:
            x: Input of shape ``(tokens, k)`` in token-stream order.
            positions: ``(tokens, 3)`` FHW coordinates (text rows hold
                the sentinel and are skipped).
            is_text: Text mask.
            grid: Full FHW grid of the video.
            cache_token: Hashable key identifying the current token
                set; enables tile-plan (neighbor table + wavefront
                level) reuse across gather sites.

        Returns:
            A :class:`GatherResult`; ``x_approx`` is bit-identical to
            scattering the concentrated GEMM (see
            :mod:`repro.core.scatter`).
        """
        x = np.asarray(x, dtype=np.float32)
        num_rows, k = x.shape
        # Coverage is validated once here, not per tile: every tile
        # slices these same arrays.
        positions = np.asarray(positions)
        is_text = np.asarray(is_text, dtype=bool)
        if positions.shape[:1] != (num_rows,) or is_text.shape != (num_rows,):
            raise ValueError(
                "positions and is_text must cover every row of x"
            )
        vector_size = k if self.token_wise else min(self.config.vector_size, k)
        blocks = self.matcher.split_blocks(x, vector_size)
        num_blocks = blocks.shape[1]
        # L2 norms once for the whole matrix; per-tile slices are
        # bit-identical to per-tile recomputation (the norm reduces
        # over the contiguous v axis row by row).
        norms = np.linalg.norm(blocks, axis=2)

        reps_global = np.tile(
            np.arange(num_rows, dtype=np.int64), (num_blocks, 1)
        )
        tile_lengths: list[int] = []
        tile_rows: list[int] = []
        comparisons = 0
        m_tile = self.config.m_tile
        for start in range(0, num_rows, m_tile):
            stop = min(start + m_tile, num_rows)
            plan = self._tile_plan(
                positions, is_text, grid, (start, stop), cache_token
            )
            outcome = self.matcher.match_tile(
                blocks[start:stop], plan.table,
                norms=norms[start:stop], schedule=plan.schedule,
            )
            reps_global[:, start:stop] = outcome.reps + start
            counts = outcome.unique_counts()
            tile_lengths.extend(int(c) for c in counts)
            tile_rows.extend([stop - start] * len(counts))
            comparisons += outcome.comparisons

        unique_total = sum(tile_lengths)
        total_vectors = num_rows * num_blocks
        map_bits = total_vectors * max(
            1, int(np.ceil(np.log2(max(2, min(m_tile, num_rows)))))
        )

        # One fancy-indexed scatter assembles x_approx: column c takes
        # its value from row reps_global[block(c), :].
        col_block = np.repeat(np.arange(num_blocks), vector_size)[:k]
        x_approx = x[reps_global[col_block, :].T, np.arange(k)[None, :]]

        return GatherResult(
            x_approx=x_approx,
            reps=reps_global,
            vector_size=vector_size,
            unique_total=unique_total,
            total_vectors=total_vectors,
            tile_lengths=tile_lengths,
            tile_rows=tile_rows,
            map_bits=map_bits,
            comparisons=comparisons,
        )

    def gather_batch(
        self,
        x_stack: np.ndarray,
        positions: "np.ndarray | list[np.ndarray]",
        is_text: "np.ndarray | list[np.ndarray]",
        grid: tuple[int, int, int],
        cache_token: "object | list | tuple | None" = None,
    ) -> BatchGatherResult:
        """Concentrate one GEMM input across a stack of samples.

        ``x_stack`` is ``(S, tokens, k)`` — the inputs of ``S`` samples
        stacked along a leading axis.  ``positions``/``is_text`` may be
        single shared arrays (all lanes on one layout) or per-lane
        sequences: lanes whose layouts diverged after semantic pruning
        still run as *one* stacked pass, because
        :meth:`~repro.core.matching.SimilarityMatcher.match_tile_batch`
        takes the stacked per-lane tables and a merged, padded
        wavefront schedule.  Per-sample slices of the result — values
        and statistics — are bit-identical to :meth:`gather` on each
        slice with its own layout.

        ``cache_token`` (one token, or a per-lane sequence) should be
        *content-addressed* layout keys (batched callers pass layout
        digests), because layouts interleave within one pass; plans
        are kept under pure LRU rather than stale-token eviction.
        """
        x_stack = np.asarray(x_stack, dtype=np.float32)
        num_samples, num_rows, k = x_stack.shape
        if isinstance(positions, np.ndarray) and positions.ndim == 2:
            lane_positions = [np.asarray(positions)] * num_samples
        else:
            lane_positions = [np.asarray(p) for p in positions]
        if isinstance(is_text, np.ndarray) and is_text.ndim == 1:
            lane_text = [np.asarray(is_text, dtype=bool)] * num_samples
        else:
            lane_text = [np.asarray(t, dtype=bool) for t in is_text]
        if isinstance(cache_token, (list, tuple)):
            lane_tokens = list(cache_token)
        else:
            lane_tokens = [cache_token] * num_samples
        if not (
            len(lane_positions) == len(lane_text) == len(lane_tokens)
            == num_samples
        ):
            raise ValueError("per-lane layouts must cover every sample")
        for pos, text in zip(lane_positions, lane_text):
            if pos.shape[:1] != (num_rows,) or text.shape != (num_rows,):
                raise ValueError(
                    "positions and is_text must cover every row of x"
                )
        batch_key = (
            tuple(lane_tokens) if all(
                token is not None for token in lane_tokens
            ) else None
        )
        vector_size = k if self.token_wise else min(self.config.vector_size, k)
        # Zero-pad and split every sample at once; each slice matches
        # split_blocks on that sample (same pad, same copy).  When k
        # divides evenly there is no padding, so the reshape is a
        # copy-free view with the very same values.
        v = vector_size if vector_size > 0 else k
        v = min(v, k)
        num_blocks = -(-k // v)
        if num_blocks * v == k:
            blocks = x_stack.reshape(num_samples, num_rows, num_blocks, v)
        else:
            padded = np.zeros(
                (num_samples, num_rows, num_blocks * v), dtype=np.float32
            )
            padded[:, :, :k] = x_stack
            blocks = padded.reshape(num_samples, num_rows, num_blocks, v)
        # The norm reduces over the contiguous v axis row by row, so
        # the stacked reduction equals each sample's own.
        norms = np.linalg.norm(blocks, axis=3)

        reps_global = np.tile(
            np.arange(num_rows, dtype=np.int64),
            (num_samples, num_blocks, 1),
        )
        tile_lengths: list[list[int]] = [[] for _ in range(num_samples)]
        tile_rows: list[list[int]] = [[] for _ in range(num_samples)]
        comparisons = np.zeros(num_samples, dtype=np.int64)
        m_tile = self.config.m_tile
        for start in range(0, num_rows, m_tile):
            stop = min(start + m_tile, num_rows)
            plans = [
                self._tile_plan(
                    lane_positions[s], lane_text[s], grid, (start, stop),
                    lane_tokens[s], evict_stale=False,
                )
                for s in range(num_samples)
            ]
            batch_plan = self._batch_tile_plan(plans, batch_key, (start, stop))
            outcome = self.matcher.match_tile_batch(
                blocks[:, start:stop], batch_plan.tables,
                norms=norms[:, start:stop], schedule=batch_plan.schedule,
            )
            reps_global[:, :, start:stop] = outcome.reps + start
            counts = outcome.unique_counts()            # (S, B)
            for s in range(num_samples):
                tile_lengths[s].extend(int(c) for c in counts[s])
                tile_rows[s].extend([stop - start] * counts.shape[1])
            comparisons += outcome.comparisons

        total_vectors = num_rows * num_blocks
        map_bits = total_vectors * max(
            1, int(np.ceil(np.log2(max(2, min(m_tile, num_rows)))))
        )

        col_block = np.repeat(np.arange(num_blocks), vector_size)[:k]
        row_pick = reps_global[:, col_block, :].transpose(0, 2, 1)
        x_approx = x_stack[
            np.arange(num_samples)[:, None, None],
            row_pick,
            np.arange(k)[None, None, :],
        ]

        per_sample = [
            GatherResult(
                x_approx=x_approx[s],
                reps=reps_global[s],
                vector_size=vector_size,
                unique_total=sum(tile_lengths[s]),
                total_vectors=total_vectors,
                tile_lengths=tile_lengths[s],
                tile_rows=tile_rows[s],
                map_bits=map_bits,
                comparisons=int(comparisons[s]),
            )
            for s in range(num_samples)
        ]
        return BatchGatherResult(x_approx=x_approx, per_sample=per_sample)
