"""Semantic Concentrator (SEC): prompt-aware token pruning (Sec. V).

At the schedule layers of Table I the SEC reads the text-to-image
attention block, reduces it to a per-token importance score
(:mod:`repro.core.importance`), selects the top-k image tokens
(:mod:`repro.core.topk`), and emits offset encodings
(:mod:`repro.core.offsets`) so downstream block matching can recover
token coordinates.  Pruned tokens are excluded from the P(i) x V GEMM
of the same layer and from every later layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.trace import SecEvent
from repro.config import FocusConfig
from repro.core.importance import importance_scores
from repro.core.offsets import encode_offsets, encoded_bits
from repro.core.topk import sorter_cycles, top_k_mask


@dataclass(frozen=True)
class PruneDecision:
    """Outcome of one SEC invocation.

    Attributes:
        keep: Boolean mask over the *current* token set.
        event: Sorter-occupancy record for the hardware simulator.
        metadata_bits: Offset-encoding bits emitted for the retained
            image tokens.
    """

    keep: np.ndarray
    event: SecEvent
    metadata_bits: int


class SemanticConcentrator:
    """Layer-scheduled prompt-aware token pruning."""

    def __init__(self, config: FocusConfig, num_layers: int) -> None:
        self.config = config
        self.num_layers = num_layers
        self.schedule = config.scaled_schedule(num_layers)

    def target_tokens(self, layer_index: int, initial_image_tokens: int) -> int | None:
        """Retained image-token budget at ``layer_index``, or ``None``.

        Budgets are fractions of the *original* image-token count, as in
        Table I ("retain 40%/30%/... of total image tokens").
        """
        ratio = self.schedule.get(layer_index)
        if ratio is None:
            return None
        return max(1, int(round(ratio * initial_image_tokens)))

    def prune(
        self,
        layer_index: int,
        probs: np.ndarray,
        is_text: np.ndarray,
        initial_image_tokens: int,
        grid_linear_index: np.ndarray,
    ) -> PruneDecision | None:
        """Decide which tokens survive this layer's pruning.

        Args:
            layer_index: Current layer.
            probs: Attention probabilities ``(heads, S, S)``.
            is_text: Text mask over the current ``S`` tokens.
            initial_image_tokens: Original image-token count ``M``.
            grid_linear_index: Linear FHW index of each current token
                (text entries ignored), for offset encoding.

        Returns:
            A :class:`PruneDecision`, or ``None`` when this layer has
            no schedule entry or the budget is already met.
        """
        budget = self.target_tokens(layer_index, initial_image_tokens)
        if budget is None:
            return None
        is_text = np.asarray(is_text, dtype=bool)
        num_image = int(np.count_nonzero(~is_text))
        if num_image <= budget:
            return None

        scores = importance_scores(probs, is_text)
        image_keep = top_k_mask(scores, budget)

        keep = np.ones(is_text.shape[0], dtype=bool)
        keep[~is_text] = image_keep

        retained_linear = np.sort(
            np.asarray(grid_linear_index)[~is_text][image_keep]
        )
        deltas = encode_offsets(retained_linear)
        event = SecEvent(
            layer=layer_index, candidates=num_image, selected=budget
        )
        return PruneDecision(
            keep=keep, event=event, metadata_bits=encoded_bits(deltas)
        )

    def sorter_cycles_for(self, event: SecEvent) -> int:
        """Streaming-sorter cycles for one pruning event."""
        return sorter_cycles(
            event.candidates, event.selected, self.config.max_sorter_lanes
        )
