"""Top-k selection: streaming a-way bubble sorter (Sec. V-B).

The SEC chains the ``a`` max units of the importance analyzer into an
``a``-way streaming bubble sorter: each pass over the ``M`` candidates
extracts the current top ``a`` elements, so top-k selection costs
``ceil(k / a)`` passes = ``M * k / a`` cycles — far cheaper than a full
sort and, crucially, fully overlapped with the image-attention GEMM.

Two implementations are provided:

* :class:`StreamingBubbleSorter` — pass-by-pass hardware model with a
  cycle counter (used by the accelerator simulator and equivalence
  tests).
* :func:`top_k_mask` — a vectorized selection with the same
  deterministic tie-break, used on the model's fast path.
"""

from __future__ import annotations

import numpy as np


def _ordering_key(scores: np.ndarray) -> np.ndarray:
    """Sort key implementing (score desc, index asc) total order."""
    return np.lexsort((np.arange(scores.shape[0]), -scores))


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-``k`` scores, ties broken toward lower index.

    The returned indices are sorted ascending (token order), matching
    the streaming pipeline which emits retained tokens in stream order.
    """
    scores = np.asarray(scores, dtype=np.float32)
    if k < 0:
        raise ValueError("k must be non-negative")
    k = min(k, scores.shape[0])
    winners = _ordering_key(scores)[:k]
    return np.sort(winners)


def top_k_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Boolean keep-mask over ``scores`` selecting the top ``k``."""
    mask = np.zeros(np.asarray(scores).shape[0], dtype=bool)
    mask[top_k_indices(scores, k)] = True
    return mask


class StreamingBubbleSorter:
    """Pass-structured model of the a-way streaming bubble sorter.

    Each :meth:`run` pass streams all remaining candidates through an
    ``a``-deep insertion register file, extracting the top ``a`` of the
    remainder, exactly as the chained max units do.  Selected elements
    are removed from the candidate pool between passes.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.lanes = lanes
        self.cycles = 0

    def _one_pass(
        self, scores: np.ndarray, candidates: list[int]
    ) -> list[int]:
        """Extract the top ``lanes`` candidates of one streaming pass."""
        registers: list[int] = []
        for index in candidates:
            # Insertion into the sorted register chain: each candidate
            # bubbles down past smaller entries, one comparison per lane.
            position = len(registers)
            while position > 0:
                held = registers[position - 1]
                better = scores[index] > scores[held] or (
                    scores[index] == scores[held] and index < held
                )
                if not better:
                    break
                position -= 1
            registers.insert(position, index)
            if len(registers) > self.lanes:
                registers.pop()
            self.cycles += 1
        return registers

    def top_k(self, scores: np.ndarray, k: int) -> np.ndarray:
        """Select top-``k`` indices over multiple streaming passes."""
        scores = np.asarray(scores, dtype=np.float32)
        k = min(max(k, 0), scores.shape[0])
        candidates = list(range(scores.shape[0]))
        selected: list[int] = []
        while len(selected) < k and candidates:
            winners = self._one_pass(scores, candidates)
            winners = winners[: k - len(selected)]
            selected.extend(winners)
            winner_set = set(winners)
            candidates = [c for c in candidates if c not in winner_set]
        return np.sort(np.array(selected, dtype=np.int64))


def sorter_cycles(num_candidates: int, k: int, lanes: int) -> int:
    """Analytical cycle cost ``M * ceil(k/a)`` of the streaming sorter.

    This is the quantity the paper compares against the image-attention
    GEMM runtime to show the sorter stays off the critical path
    (Sec. V-B ratio analysis).
    """
    passes = -(-max(k, 0) // lanes)
    return num_candidates * passes
