"""Vector-wise streaming similarity matcher (Sec. VI-A).

Tokens stream through the matcher in FHW order.  Each token's hidden
state is split into length-``v`` vectors (one per k-block of the GEMM
tile); for every k-block the key vector is compared, by cosine
similarity, against the *stored* (already deduplicated) vectors of its
comparison partners.  A similarity above the threshold replaces the
vector with its partner's representative index — chaining through
earlier matches exactly as the hardware's compact buffer does.

Two implementations share this contract:

* :meth:`SimilarityMatcher.match_tile_reference` — the original
  row-at-a-time streaming loop.  It is the semantic oracle: one row at
  a time, one batched comparison against that row's partners.
* :meth:`SimilarityMatcher.match_tile_wavefront` — a level-scheduled
  (wavefront) formulation of the *same* recurrence.  Every partner
  index precedes its key, so the rows of a tile form a DAG; a row is
  schedulable as soon as all of its partners' representatives are
  finalized.  Grouping rows into dependency levels
  (:func:`partner_levels`) lets each level resolve with one batched
  gather and one batched dot-product/threshold pass.  Rows within a
  level never reference each other (a partner's level is strictly
  lower), so the wavefront result is bit-identical to the serial
  oracle for every tile, threshold, and block shape — the property
  ``tests/test_matcher_wavefront.py`` locks in differentially.

L2 norms are precomputed once per token, so each comparison costs a
single ``v``-wide dot product plus a few scalar ops, matching the
single-dot-product-unit matcher of Fig. 6(3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NORM_EPS = 1e-6
"""Vectors with L2 norm below this are treated as exact zeros."""

MATCHER_MODES = ("wavefront", "reference")
"""Available matcher implementations; ``wavefront`` is the default."""


def partner_levels(neighbor_table: np.ndarray) -> np.ndarray:
    """Dependency level of every row of a neighbor table.

    Rows with no partners sit at level 0; otherwise a row's level is
    one more than the maximum level of its partners.  Because every
    valid partner index precedes its key, levels are well defined and
    the fixpoint below converges in (max level + 1) vectorized sweeps
    — the DAG depth, which for an ``f x h x w`` comparison block over
    an FHW grid is at most ``(F-1) + (H-1) + (W-1)``, far below the
    row count.
    """
    table = np.asarray(neighbor_table, dtype=np.int64)
    n = table.shape[0]
    levels = np.zeros(n, dtype=np.int64)
    if n == 0 or table.shape[1] == 0:
        return levels
    valid = table >= 0
    has_partner = valid.any(axis=1)
    if not has_partner.any():
        return levels
    safe = np.where(valid, table, 0)
    # A valid DAG (every partner precedes its key) has depth < n, so
    # the fixpoint needs at most n sweeps; a table with a cycle or a
    # forward reference would otherwise spin forever.
    for _ in range(n + 1):
        gathered = np.where(valid, levels[safe], -1)
        new = np.where(has_partner, gathered.max(axis=1) + 1, 0)
        if np.array_equal(new, levels):
            return levels
        levels = new
    raise ValueError("partner indices must precede the key")


def level_schedule(levels: np.ndarray) -> tuple[np.ndarray, ...]:
    """Group row indices by dependency level, levels ``>= 1`` only.

    Level-0 rows have no partners and keep themselves as
    representatives, so they need no matching work.  Within a group
    rows are in increasing index order (irrelevant for correctness —
    same-level rows are independent — but it keeps gathers cache
    friendly).
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.size == 0:
        return ()
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    max_level = int(sorted_levels[-1])
    if max_level == 0:
        return ()
    bounds = np.searchsorted(sorted_levels, np.arange(1, max_level + 2))
    return tuple(
        order[bounds[i]:bounds[i + 1]] for i in range(max_level)
    )


@dataclass
class LevelGroup:
    """Precomputed index structures for one wavefront level.

    Everything here depends only on the neighbor table, so gathers
    sharing a token set build these once (cached in the gather's tile
    plan) and the per-level hot loop degenerates to pure array math.

    Attributes:
        rows: ``(r,)`` row indices resolved at this level.
        valid3: ``(r, m, 1)`` mask of present partners, shaped to
            broadcast over k-blocks.
        safe: ``(r, m)`` partner indices with ``-1`` clamped to 0
            (masked out of every decision by ``valid3``).
        row_index: ``(r, 1)`` arange, for the per-row argmax pick.
    """

    rows: np.ndarray
    valid3: np.ndarray
    safe: np.ndarray
    row_index: np.ndarray


def build_level_groups(
    table: np.ndarray, levels: np.ndarray | None = None
) -> tuple[LevelGroup, ...]:
    """Materialize :class:`LevelGroup` structures for a neighbor table."""
    table = np.asarray(table, dtype=np.int64)
    if levels is None:
        levels = partner_levels(table)
    groups = []
    for rows in level_schedule(levels):
        tab = table[rows]
        valid = tab >= 0
        groups.append(LevelGroup(
            rows=rows,
            valid3=valid[:, :, None],
            safe=np.where(valid, tab, 0),
            row_index=np.arange(rows.size, dtype=np.int64)[:, None],
        ))
    return tuple(groups)


@dataclass
class MatchOutcome:
    """Result of matching one tile.

    Attributes:
        reps: Integer array of shape ``(num_blocks, n)``; entry
            ``[b, i]`` is the local row index of the representative of
            token ``i``'s ``b``-th vector (``i`` itself when unique).
        comparisons: Pairwise vector comparisons performed.
    """

    reps: np.ndarray
    comparisons: int

    def unique_counts(self) -> np.ndarray:
        """Unique-vector count per k-block (the concentrated tile
        lengths of Fig. 13)."""
        n = self.reps.shape[1]
        own = np.arange(n)
        return (self.reps == own[None, :]).sum(axis=1)


@dataclass
class BatchMatchOutcome:
    """Result of matching one tile across a stack of samples.

    Attributes:
        reps: Integer array of shape ``(S, num_blocks, n)``; slice
            ``[s]`` is bit-identical to the ``reps`` of a per-sample
            :class:`MatchOutcome` for sample ``s``.
        comparisons: ``(S,)`` pairwise vector comparisons per sample
            (a pure function of each sample's neighbor table).
    """

    reps: np.ndarray
    comparisons: np.ndarray

    def unique_counts(self) -> np.ndarray:
        """Per-sample unique-vector count per k-block, ``(S, B)``."""
        n = self.reps.shape[2]
        own = np.arange(n)
        return (self.reps == own[None, None, :]).sum(axis=2)


@dataclass
class BatchLevelGroup:
    """One wavefront level of a *stack* of (possibly different) tables.

    The per-sample levels are padded to the widest sample: padded row
    slots carry row 0 with every partner masked invalid, so they can
    never match (all similarities are ``-inf``) and never scatter.

    Attributes:
        rows: ``(S, r)`` row indices resolved at this level (0 where
            padded).
        valid4: ``(S, r, m, 1)`` present-partner mask (``False``
            everywhere on padded row slots).
        safe: ``(S, r, m)`` partner indices with absent ones clamped
            to 0.
        row_index: ``(1, r, 1)`` arange, for the per-row argmax pick.
    """

    rows: np.ndarray
    valid4: np.ndarray
    safe: np.ndarray
    row_index: np.ndarray


def build_batch_schedule(
    tables: np.ndarray,
    per_sample: "tuple[tuple[LevelGroup, ...], ...] | None" = None,
) -> tuple[BatchLevelGroup, ...]:
    """Merge per-sample wavefront schedules into padded stack levels.

    Args:
        tables: ``(S, n, m)`` stacked neighbor tables.
        per_sample: Optional precomputed :func:`build_level_groups`
            output per sample (e.g. from cached tile plans); computed
            on the fly otherwise.

    A sample's level-``l`` rows land in stack level ``l`` regardless
    of the other samples, so every row still resolves strictly after
    all of its own partners — the per-sample recurrence is untouched
    and each slice stays bit-identical to its own serial pass.
    """
    tables = np.asarray(tables, dtype=np.int64)
    num_samples, _, m = tables.shape
    if per_sample is None:
        per_sample = tuple(
            build_level_groups(tables[s]) for s in range(num_samples)
        )
    depth = max((len(groups) for groups in per_sample), default=0)
    if depth == 0:
        return ()
    merged = []
    empty = np.empty(0, dtype=np.int64)
    for level in range(depth):
        lane_rows = [
            groups[level].rows if level < len(groups) else empty
            for groups in per_sample
        ]
        width = max(r.size for r in lane_rows)
        rows = np.zeros((num_samples, width), dtype=np.int64)
        valid = np.zeros((num_samples, width, m), dtype=bool)
        safe = np.zeros((num_samples, width, m), dtype=np.int64)
        for index, r in enumerate(lane_rows):
            if r.size == 0:
                continue
            rows[index, : r.size] = r
            tab = tables[index][r]
            tab_valid = tab >= 0
            valid[index, : r.size] = tab_valid
            safe[index, : r.size] = np.where(tab_valid, tab, 0)
        merged.append(BatchLevelGroup(
            rows=rows,
            valid4=valid[:, :, :, None],
            safe=safe,
            row_index=np.arange(width, dtype=np.int64)[None, :, None],
        ))
    return tuple(merged)


def _validate_tile(table: np.ndarray, n: int) -> None:
    """One vectorized pre-check per tile (not per row): the table must
    cover the tile and every partner must precede its key."""
    if table.shape[0] != n:
        raise ValueError("neighbor table does not cover the tile")
    if table.size and (table >= np.arange(n)[:, None]).any():
        raise ValueError("partner indices must precede the key")


class SimilarityMatcher:
    """Streaming cosine matcher over padded k-block vectors."""

    def __init__(self, threshold: float, mode: str = "wavefront") -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        if mode not in MATCHER_MODES:
            raise ValueError(
                f"unknown matcher mode {mode!r}; available: {MATCHER_MODES}"
            )
        self.threshold = threshold
        self.mode = mode

    @staticmethod
    def split_blocks(x: np.ndarray, vector_size: int) -> np.ndarray:
        """Split ``(n, k)`` rows into zero-padded ``(n, B, v)`` blocks.

        Zero padding leaves dot products and norms unchanged, so a
        ragged final block behaves identically to the hardware's
        shorter last vector.
        """
        x = np.asarray(x, dtype=np.float32)
        n, k = x.shape
        v = min(vector_size, k) if vector_size > 0 else k
        num_blocks = -(-k // v)
        padded = np.zeros((n, num_blocks * v), dtype=np.float32)
        padded[:, :k] = x
        return padded.reshape(n, num_blocks, v)

    def match_tile(
        self,
        blocks: np.ndarray,
        neighbor_table: np.ndarray,
        levels: np.ndarray | None = None,
        norms: np.ndarray | None = None,
        schedule: "tuple[LevelGroup, ...] | None" = None,
    ) -> MatchOutcome:
        """Run the configured matcher implementation over one tile.

        Args:
            blocks: ``(n, B, v)`` zero-padded vectors (see
                :meth:`split_blocks`).
            neighbor_table: ``(n, n_offsets)`` local partner indices,
                ``-1`` for absent partners (from
                :func:`repro.core.blocks.build_neighbor_table`); every
                valid partner index is smaller than the key index.
            levels: Optional precomputed :func:`partner_levels` of the
                table (wavefront only; computed on the fly otherwise).
            norms: Optional precomputed ``(n, B)`` L2 norms of
                ``blocks`` — callers gathering many tiles compute them
                once for the whole matrix and pass slices.
            schedule: Optional precomputed :func:`build_level_groups`
                output for the table (wavefront only).

        Returns:
            Representative assignments and comparison count.
        """
        if self.mode == "reference":
            return self.match_tile_reference(blocks, neighbor_table, norms)
        return self.match_tile_wavefront(
            blocks, neighbor_table, levels, norms, schedule
        )

    def match_tile_reference(
        self,
        blocks: np.ndarray,
        neighbor_table: np.ndarray,
        norms: np.ndarray | None = None,
    ) -> MatchOutcome:
        """The retained row-at-a-time oracle (original serial matcher)."""
        blocks = np.asarray(blocks, dtype=np.float32)
        n, num_blocks, _ = blocks.shape
        table = np.asarray(neighbor_table, dtype=np.int64)
        _validate_tile(table, n)

        if norms is None:
            norms = np.linalg.norm(blocks, axis=2)
        reps = np.tile(np.arange(n, dtype=np.int64), (num_blocks, 1))
        block_range = np.arange(num_blocks)
        comparisons = 0

        for i in range(n):
            partners = table[i][table[i] >= 0]
            if partners.size == 0:
                continue
            # Stored values: each partner's vector was possibly replaced
            # by its representative; compare against what the compact
            # buffer actually holds.
            partner_reps = reps[:, partners].T          # (m, B)
            stored = blocks[partner_reps, block_range[None, :], :]  # (m, B, v)
            stored_norms = norms[partner_reps, block_range[None, :]]
            dots = np.einsum("mbv,bv->mb", stored, blocks[i])
            denom = stored_norms * norms[i][None, :]
            sims = np.where(
                denom > NORM_EPS * NORM_EPS,
                dots / np.maximum(denom, NORM_EPS * NORM_EPS),
                # Two exact-zero vectors are identical; a zero against a
                # non-zero is maximally dissimilar.
                np.where(
                    (stored_norms < NORM_EPS) & (norms[i][None, :] < NORM_EPS),
                    1.0,
                    0.0,
                ),
            )
            comparisons += int(sims.size)
            best = np.argmax(sims, axis=0)
            best_sims = sims[best, block_range]
            matched = best_sims > self.threshold
            if matched.any():
                chosen = partner_reps[best, block_range]
                reps[matched, i] = chosen[matched]
        return MatchOutcome(reps=reps, comparisons=comparisons)

    def match_tile_wavefront(
        self,
        blocks: np.ndarray,
        neighbor_table: np.ndarray,
        levels: np.ndarray | None = None,
        norms: np.ndarray | None = None,
        schedule: "tuple[LevelGroup, ...] | None" = None,
    ) -> MatchOutcome:
        """Level-scheduled matcher, bit-identical to the reference.

        Rows are grouped by dependency level; all rows of one level
        resolve in a single batched gather + dot-product/threshold
        pass.  Per-row float operations (dot products over the
        contiguous ``v`` axis, norm products, threshold comparisons,
        first-maximum argmax over a row's partners in table order) are
        the very same elementwise kernels the serial loop runs, so the
        representatives agree bit for bit while the Python-level
        iteration count drops from ``n`` to the DAG depth.
        """
        blocks = np.asarray(blocks, dtype=np.float32)
        n, num_blocks, _ = blocks.shape
        table = np.asarray(neighbor_table, dtype=np.int64)
        _validate_tile(table, n)

        if norms is None:
            norms = np.linalg.norm(blocks, axis=2)
        reps = np.tile(np.arange(n, dtype=np.int64), (num_blocks, 1))
        if n == 0 or table.shape[1] == 0:
            return MatchOutcome(reps=reps, comparisons=0)
        if schedule is None:
            schedule = build_level_groups(table, levels)
        # The comparison count is a pure function of the table: every
        # valid partner of every row costs one comparison per k-block.
        comparisons = int(np.count_nonzero(table >= 0)) * num_blocks
        eps_sq = NORM_EPS * NORM_EPS
        # When no vector in the tile has a sub-epsilon norm, every
        # denominator is >= float32(eps^2) (the minimum float32 product
        # of two surviving norms lands exactly on it), so the zero-pair
        # branch is the constant 0.0 and np.maximum is the identity —
        # the short where below is bit-identical to the full chain.
        tile_has_zero = bool((norms < NORM_EPS).any())
        reps_rows = reps.T                          # (n, B) view
        block_range3 = np.arange(num_blocks)[None, None, :]
        block_range_row = np.arange(num_blocks)[None, :]

        for group in schedule:
            rows = group.rows
            # Partners' representatives are final: their levels are
            # strictly lower, so earlier iterations fixed them.
            partner_reps = reps_rows[group.safe]    # (r, m, B)
            stored = blocks[partner_reps, block_range3, :]  # (r, m, B, v)
            stored_norms = norms[partner_reps, block_range3]
            key_norms = norms[rows][:, None, :]     # (r, 1, B)
            dots = np.einsum("rmbv,rbv->rmb", stored, blocks[rows])
            denom = stored_norms * key_norms
            if tile_has_zero:
                sims = np.where(
                    denom > eps_sq,
                    dots / np.maximum(denom, eps_sq),
                    # Two exact-zero vectors are identical; a zero
                    # against a non-zero is maximally dissimilar.
                    np.where(
                        (stored_norms < NORM_EPS) & (key_norms < NORM_EPS),
                        1.0,
                        0.0,
                    ),
                )
            else:
                # np.float64(0.0) deliberately reproduces the full
                # chain's float64 promotion: the reference compares
                # sims to the threshold in float64, and a float32
                # comparison could flip a sim landing exactly on
                # float32(threshold).
                sims = np.where(denom > eps_sq, dots / denom, np.float64(0.0))
            # Absent partners never win: -inf loses to every real
            # similarity, and compaction order == table order, so the
            # first-maximum argmax picks the same partner the serial
            # loop picks over its compacted partner list.
            sims = np.where(group.valid3, sims, -np.inf)
            best = np.argmax(sims, axis=1)          # (r, B)
            best_sims = sims[group.row_index, best, block_range_row]
            matched = best_sims > self.threshold    # (r, B)
            if matched.any():
                chosen = partner_reps[
                    group.row_index, best, block_range_row
                ]
                ri, bi = np.nonzero(matched)
                reps[bi, rows[ri]] = chosen[ri, bi]
        return MatchOutcome(reps=reps, comparisons=comparisons)

    def match_tile_batch(
        self,
        blocks: np.ndarray,
        neighbor_table: np.ndarray,
        norms: np.ndarray | None = None,
        schedule: "tuple[BatchLevelGroup, ...] | None" = None,
    ) -> BatchMatchOutcome:
        """Match one tile across a stack of samples in one pass.

        ``blocks`` is ``(S, n, B, v)`` — the per-sample ``(n, B, v)``
        tiles of :meth:`match_tile` stacked along a leading sample
        axis.  ``neighbor_table`` is either one shared ``(n, m)``
        table or a stacked ``(S, n, m)`` array with a *different*
        table per sample (the post-pruning case, where lanes of one
        batch have diverged layouts).  The merged wavefront schedule
        (:func:`build_batch_schedule`) pads each level to the widest
        sample, so every level still resolves with a single gather +
        dot/threshold pass over the whole stack.  Per-element float
        kernels (the ``v``-axis einsum reduction, norm products,
        threshold compares, first-maximum argmax over the partner
        axis) are the same ones the per-sample matcher runs on each
        slice, so slice ``s`` of the result is bit-identical to
        ``match_tile(blocks[s], tables[s])`` — the property
        ``tests/test_batched_forward.py`` locks in differentially.

        In ``reference`` mode the stack simply loops through the
        per-sample oracle (the A/B arm stays honest).
        """
        blocks = np.asarray(blocks, dtype=np.float32)
        num_samples, n, num_blocks, _ = blocks.shape
        tables = np.asarray(neighbor_table, dtype=np.int64)
        if tables.ndim == 2:
            _validate_tile(tables, n)
            tables = np.broadcast_to(
                tables, (num_samples,) + tables.shape
            )
        else:
            if tables.shape[0] != num_samples or tables.shape[1] != n:
                raise ValueError("stacked tables do not cover the stack")
            if tables.size and (
                tables >= np.arange(n)[None, :, None]
            ).any():
                raise ValueError("partner indices must precede the key")
        if norms is None:
            norms = np.linalg.norm(blocks, axis=3)

        if self.mode == "reference":
            outcomes = [
                self.match_tile_reference(blocks[s], tables[s], norms=norms[s])
                for s in range(num_samples)
            ]
            return BatchMatchOutcome(
                reps=np.stack([o.reps for o in outcomes]) if outcomes
                else np.empty((0, num_blocks, n), dtype=np.int64),
                comparisons=np.array(
                    [o.comparisons for o in outcomes], dtype=np.int64
                ),
            )

        reps = np.tile(
            np.arange(n, dtype=np.int64), (num_samples, num_blocks, 1)
        )
        comparisons = (
            np.count_nonzero(tables >= 0, axis=(1, 2)) * num_blocks
        ).astype(np.int64)
        if n == 0 or tables.shape[2] == 0:
            return BatchMatchOutcome(reps=reps, comparisons=comparisons)
        if schedule is None:
            schedule = build_batch_schedule(tables)
        eps_sq = NORM_EPS * NORM_EPS
        # The zero-norm branch must agree with each sample's *own*
        # serial pass.  When no sample holds a sub-epsilon vector the
        # short where is bit-identical to the full chain (see
        # match_tile_wavefront); when any sample does, the full chain
        # runs for the whole stack — still bit-identical for the
        # zero-free slices, by the same argument.
        any_zero = bool((norms < NORM_EPS).any())
        reps_rows = reps.transpose(0, 2, 1)             # (S, n, B) view
        sample_idx2 = np.arange(num_samples)[:, None]
        sample_idx3 = np.arange(num_samples)[:, None, None]
        sample_idx4 = np.arange(num_samples)[:, None, None, None]
        block_range4 = np.arange(num_blocks)[None, None, None, :]
        block_range_row3 = np.arange(num_blocks)[None, None, :]

        for group in schedule:
            rows = group.rows                           # (S, r)
            partner_reps = reps_rows[sample_idx3, group.safe]  # (S,r,m,B)
            stored = blocks[
                sample_idx4, partner_reps, block_range4, :
            ]                                           # (S, r, m, B, v)
            stored_norms = norms[sample_idx4, partner_reps, block_range4]
            key_norms = norms[sample_idx2, rows][:, :, None, :]
            keys = blocks[sample_idx2, rows]            # (S, r, B, v)
            dots = np.einsum("srmbv,srbv->srmb", stored, keys)
            denom = stored_norms * key_norms
            if any_zero:
                sims = np.where(
                    denom > eps_sq,
                    dots / np.maximum(denom, eps_sq),
                    np.where(
                        (stored_norms < NORM_EPS) & (key_norms < NORM_EPS),
                        1.0,
                        0.0,
                    ),
                )
                sims = np.where(group.valid4, sims, -np.inf)
            else:
                # One masked divide instead of divide + two where
                # passes: valid slots with denom > eps get the very
                # same float32 quotient (stored widened to float64,
                # exactly as the old where-select cast it); valid
                # slots below eps keep the pre-filled 0.0; invalid
                # (and padded) slots keep -inf, so their best sim can
                # never pass the threshold below.
                sims = np.broadcast_to(
                    np.where(group.valid4, 0.0, -np.inf), dots.shape
                ).copy()
                np.divide(
                    dots, denom, out=sims,
                    where=group.valid4 & (denom > eps_sq),
                )
            best = np.argmax(sims, axis=2)              # (S, r, B)
            row_index3 = group.row_index                # (1, r, 1)
            best_sims = sims[sample_idx3, row_index3, best, block_range_row3]
            matched = best_sims > self.threshold        # (S, r, B)
            if matched.any():
                chosen = partner_reps[
                    sample_idx3, row_index3, best, block_range_row3
                ]
                si, ri, bi = np.nonzero(matched)
                reps[si, bi, rows[si, ri]] = chosen[si, ri, bi]
        return BatchMatchOutcome(reps=reps, comparisons=comparisons)
