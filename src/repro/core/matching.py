"""Vector-wise streaming similarity matcher (Sec. VI-A).

Tokens stream through the matcher in FHW order.  Each token's hidden
state is split into length-``v`` vectors (one per k-block of the GEMM
tile); for every k-block the key vector is compared, by cosine
similarity, against the *stored* (already deduplicated) vectors of its
comparison partners.  A similarity above the threshold replaces the
vector with its partner's representative index — chaining through
earlier matches exactly as the hardware's compact buffer does.

L2 norms are precomputed once per token, so each comparison costs a
single ``v``-wide dot product plus a few scalar ops, matching the
single-dot-product-unit matcher of Fig. 6(3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NORM_EPS = 1e-6
"""Vectors with L2 norm below this are treated as exact zeros."""


@dataclass
class MatchOutcome:
    """Result of matching one tile.

    Attributes:
        reps: Integer array of shape ``(num_blocks, n)``; entry
            ``[b, i]`` is the local row index of the representative of
            token ``i``'s ``b``-th vector (``i`` itself when unique).
        comparisons: Pairwise vector comparisons performed.
    """

    reps: np.ndarray
    comparisons: int

    def unique_counts(self) -> np.ndarray:
        """Unique-vector count per k-block (the concentrated tile
        lengths of Fig. 13)."""
        n = self.reps.shape[1]
        own = np.arange(n)
        return (self.reps == own[None, :]).sum(axis=1)


class SimilarityMatcher:
    """Streaming cosine matcher over padded k-block vectors."""

    def __init__(self, threshold: float) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        self.threshold = threshold

    @staticmethod
    def split_blocks(x: np.ndarray, vector_size: int) -> np.ndarray:
        """Split ``(n, k)`` rows into zero-padded ``(n, B, v)`` blocks.

        Zero padding leaves dot products and norms unchanged, so a
        ragged final block behaves identically to the hardware's
        shorter last vector.
        """
        x = np.asarray(x, dtype=np.float32)
        n, k = x.shape
        v = min(vector_size, k) if vector_size > 0 else k
        num_blocks = -(-k // v)
        padded = np.zeros((n, num_blocks * v), dtype=np.float32)
        padded[:, :k] = x
        return padded.reshape(n, num_blocks, v)

    def match_tile(
        self, blocks: np.ndarray, neighbor_table: np.ndarray
    ) -> MatchOutcome:
        """Run the streaming matcher over one tile.

        Args:
            blocks: ``(n, B, v)`` zero-padded vectors (see
                :meth:`split_blocks`).
            neighbor_table: ``(n, n_offsets)`` local partner indices,
                ``-1`` for absent partners (from
                :func:`repro.core.blocks.build_neighbor_table`); every
                valid partner index is smaller than the key index.

        Returns:
            Representative assignments and comparison count.
        """
        blocks = np.asarray(blocks, dtype=np.float32)
        n, num_blocks, _ = blocks.shape
        table = np.asarray(neighbor_table, dtype=np.int64)
        if table.shape[0] != n:
            raise ValueError("neighbor table does not cover the tile")

        norms = np.linalg.norm(blocks, axis=2)
        reps = np.tile(np.arange(n, dtype=np.int64), (num_blocks, 1))
        block_range = np.arange(num_blocks)
        comparisons = 0

        for i in range(n):
            partners = table[i][table[i] >= 0]
            if partners.size == 0:
                continue
            if (partners >= i).any():
                raise ValueError("partner indices must precede the key")
            # Stored values: each partner's vector was possibly replaced
            # by its representative; compare against what the compact
            # buffer actually holds.
            partner_reps = reps[:, partners].T          # (m, B)
            stored = blocks[partner_reps, block_range[None, :], :]  # (m, B, v)
            stored_norms = norms[partner_reps, block_range[None, :]]
            dots = np.einsum("mbv,bv->mb", stored, blocks[i])
            denom = stored_norms * norms[i][None, :]
            sims = np.where(
                denom > NORM_EPS * NORM_EPS,
                dots / np.maximum(denom, NORM_EPS * NORM_EPS),
                # Two exact-zero vectors are identical; a zero against a
                # non-zero is maximally dissimilar.
                np.where(
                    (stored_norms < NORM_EPS) & (norms[i][None, :] < NORM_EPS),
                    1.0,
                    0.0,
                ),
            )
            comparisons += int(sims.size)
            best = np.argmax(sims, axis=0)
            best_sims = sims[best, block_range]
            matched = best_sims > self.threshold
            if matched.any():
                chosen = partner_reps[best, block_range]
                reps[matched, i] = chosen[matched]
        return MatchOutcome(reps=reps, comparisons=comparisons)
