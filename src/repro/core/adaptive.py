"""Adaptive (top-p) semantic pruning — the paper's stated extension.

Sec. VII-D: *"Future work may further enhance this strategy by
dynamically adapting to input contexts, e.g., using a post-softmax
attention threshold or top-p pruning, though such adaptation can
introduce runtime variations across inputs."*

:class:`AdaptiveSemanticConcentrator` implements exactly that: at each
schedule layer it keeps the smallest set of image tokens whose
cumulative (normalized) importance reaches a mass target ``p``, instead
of a fixed count.  Easy prompts (attention concentrated on few tokens)
prune harder; diffuse prompts keep more — trading deterministic
latency for input-adaptive sparsity.  A floor/ceiling pair bounds the
runtime variation the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.trace import SecEvent
from repro.config import FocusConfig
from repro.core.importance import importance_scores
from repro.core.offsets import encode_offsets, encoded_bits
from repro.core.pipeline import FocusPlugin
from repro.core.semantic import PruneDecision, SemanticConcentrator
from repro.model.spec import ModelConfig
from repro.model.vlm import SyntheticVLM


@dataclass(frozen=True)
class TopPSchedule:
    """Adaptive pruning parameters.

    Attributes:
        mass: Importance mass to retain at every schedule layer
            (the "p" of top-p).
        floor_ratio: Never keep fewer than this fraction of the fixed
            schedule's budget (bounds best-case runtime variation).
        ceiling_ratio: Never keep more than this multiple of the fixed
            schedule's budget (bounds worst-case latency).
    """

    mass: float = 0.90
    floor_ratio: float = 0.5
    ceiling_ratio: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.mass <= 1.0:
            raise ValueError("mass must lie in (0, 1]")
        if self.floor_ratio <= 0 or self.ceiling_ratio < self.floor_ratio:
            raise ValueError("need 0 < floor_ratio <= ceiling_ratio")


class AdaptiveSemanticConcentrator(SemanticConcentrator):
    """Top-p variant of the SEC."""

    def __init__(
        self,
        config: FocusConfig,
        num_layers: int,
        schedule: TopPSchedule | None = None,
    ) -> None:
        super().__init__(config, num_layers)
        self.top_p = schedule or TopPSchedule()

    def prune(
        self,
        layer_index: int,
        probs: np.ndarray,
        is_text: np.ndarray,
        initial_image_tokens: int,
        grid_linear_index: np.ndarray,
    ) -> PruneDecision | None:
        budget = self.target_tokens(layer_index, initial_image_tokens)
        if budget is None:
            return None
        is_text = np.asarray(is_text, dtype=bool)
        num_image = int(np.count_nonzero(~is_text))
        floor = max(1, int(round(budget * self.top_p.floor_ratio)))
        ceiling = max(floor, int(round(budget * self.top_p.ceiling_ratio)))
        if num_image <= floor:
            return None

        scores = importance_scores(probs, is_text)
        total = float(scores.sum())
        if total <= 0.0:
            return None
        order = np.lexsort((np.arange(scores.shape[0]), -scores))
        cumulative = np.cumsum(scores[order]) / total
        adaptive_k = int(np.searchsorted(cumulative, self.top_p.mass) + 1)
        keep_count = int(np.clip(adaptive_k, floor, min(ceiling, num_image)))

        image_keep = np.zeros(num_image, dtype=bool)
        image_keep[order[:keep_count]] = True
        keep = np.ones(is_text.shape[0], dtype=bool)
        keep[~is_text] = image_keep

        retained_linear = np.sort(
            np.asarray(grid_linear_index)[~is_text][image_keep]
        )
        event = SecEvent(
            layer=layer_index, candidates=num_image, selected=keep_count
        )
        return PruneDecision(
            keep=keep,
            event=event,
            metadata_bits=encoded_bits(encode_offsets(retained_linear)),
        )


class AdaptiveFocusPlugin(FocusPlugin):
    """Focus pipeline with the top-p SEC swapped in."""

    def __init__(
        self,
        model: SyntheticVLM | ModelConfig | int,
        config: FocusConfig | None = None,
        schedule: TopPSchedule | None = None,
        **kwargs: object,
    ) -> None:
        from repro.config import DEFAULT_CONFIG

        config = config or DEFAULT_CONFIG
        super().__init__(model, config, **kwargs)
        self.sec = AdaptiveSemanticConcentrator(
            config, self.sec.num_layers, schedule
        )
