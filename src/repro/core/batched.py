"""Cross-sample batched forward: one concentration pass per eval shard.

PR 4 made a *single* forward fast; this module amortizes the remaining
Python-dispatch and small-array overhead across samples, the software
analogue of the Focus Unit's streaming datapath amortizing the
similarity/gather hardware over a token stream.  Same-shape samples
stack into one ``(lanes, tokens, hidden)`` pass
(:meth:`~repro.model.vlm.SyntheticVLM.forward_batch`); the plugins
here drive the Focus pipeline over that stack:

* :class:`BatchFocusPlugin` — SEC per lane (cheap, runs only at
  schedule layers) and SIC via *one* batched gather over the whole
  stack: per-lane tile plans (lanes start identical within a shape
  bucket and diverge when semantic pruning keeps different positions)
  stack into one set of tables plus a merged, padded wavefront
  schedule, so even layout-diverged lanes resolve in a single
  matcher pass (:class:`~repro.core.gather.BatchTilePlan`).
* :class:`Int8BatchPlugin` — the Table IV INT8 activation arm; absmax
  rounding is per-row, so the stacked quantization is per-lane
  bit-identical to the serial wrapper.

Tile plans are cached *content-addressed*: the cache token is a digest
of the layout (positions + text mask + grid), so identical layouts —
across lanes, chunks, and samples — resolve to one cached plan, and
interleaved groups within a pass never thrash the stale-token
eviction the serial path uses (the batched gather runs the cache in
pure-LRU mode).

Methods that compress tokens before the LLM stack or merge between
layers (``framefusion``, ``adaptiv``, ``cmc``) and methods with
data-dependent keep counts (``focus-topp``) have no batched
implementation; :func:`make_batch_plugin` returns ``None`` and the
evaluation loop falls back to the per-sample oracle.
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.core.blocks import linear_index
from repro.core.gather import SimilarityGather
from repro.core.pipeline import GATHER_SITES
from repro.core.scatter import scatter_accumulation_ops
from repro.core.semantic import SemanticConcentrator
from repro.model.plugins import BatchPlugin, DedupStats
from repro.model.spec import ModelConfig
from repro.model.vlm import BatchState, SyntheticVLM, TokenState
from repro.quant.int8 import fake_quant_int8
from repro.workloads.datasets import Sample

__all__ = [
    "BATCH_METHOD_REGISTRY",
    "BatchFocusPlugin",
    "Int8BatchPlugin",
    "bucket_samples",
    "layout_digest",
    "make_batch_plugin",
    "run_batched",
]


def layout_digest(lane: TokenState) -> str:
    """Content digest of a lane's token layout.

    Two lanes with equal digests have bit-identical positions, text
    masks, and grids, so they can share neighbor tables, wavefront
    schedules, and one batched matcher pass.  Memoized per lane and
    :attr:`~repro.model.vlm.TokenState.version` in the lane's scratch
    dict (the layout only changes when the version does).
    """
    cached = lane.scratch.get("_layout_digest")
    if cached is not None and cached[0] == lane.version:
        return cached[1]
    hasher = hashlib.sha1()
    hasher.update(np.ascontiguousarray(lane.positions).tobytes())
    hasher.update(np.ascontiguousarray(lane.is_text).tobytes())
    hasher.update(repr((lane.grid, lane.positions.shape)).encode("utf-8"))
    digest = hasher.hexdigest()
    lane.scratch["_layout_digest"] = (lane.version, digest)
    return digest


class BatchFocusPlugin(BatchPlugin):
    """Focus concentration over a lane stack.

    Per-lane observable behaviour — keep masks, gather statistics,
    trace updates — is bit-identical to a per-lane
    :class:`~repro.core.pipeline.FocusPlugin`: the SEC literally runs
    the serial code on each lane's probability slice, and the batched
    gather's per-sample slices reproduce the serial gather exactly
    (see :meth:`~repro.core.gather.SimilarityGather.gather_batch`).
    """

    def __init__(
        self,
        model: SyntheticVLM | ModelConfig | int,
        config: FocusConfig = DEFAULT_CONFIG,
        enable_sec: bool = True,
        enable_sic: bool = True,
        token_wise: bool = False,
    ) -> None:
        if isinstance(model, SyntheticVLM):
            num_layers = model.config.num_layers
        elif isinstance(model, ModelConfig):
            num_layers = model.num_layers
        else:
            num_layers = int(model)
        self.config = config
        self.enable_sec = enable_sec
        self.enable_sic = enable_sic
        self.sec = SemanticConcentrator(config, num_layers)
        self.gather_engine = SimilarityGather(config, token_wise=token_wise)

    def after_attention_probs(
        self, layer_index: int, probs: np.ndarray, batch: BatchState
    ) -> list[np.ndarray] | None:
        if not self.enable_sec:
            return None
        keeps: list[np.ndarray | None] = []
        for index, lane in enumerate(batch.lanes):
            grid_linear = linear_index(
                np.maximum(lane.positions, 0), lane.grid
            )
            decision = self.sec.prune(
                layer_index,
                probs[index],
                lane.is_text,
                lane.num_image_initial,
                grid_linear,
            )
            if decision is None:
                keeps.append(None)
                continue
            lane.trace.metadata_bits += decision.metadata_bits
            lane.trace.sec_events.append(decision.event)
            keeps.append(decision.keep)
        pruned = [k for k in keeps if k is not None]
        if not pruned:
            return None
        if len(pruned) != len(keeps):
            # Cannot happen for the fixed-budget SEC (equal initial
            # counts + exact-k selection keep lanes in lockstep), but a
            # ragged prune would silently desynchronize the stack.
            raise RuntimeError(
                "semantic pruning diverged across lanes of one batch"
            )
        return pruned

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        batch: BatchState,
        producers,
        n: int,
    ) -> tuple[np.ndarray, list[DedupStats | None]]:
        if not self.enable_sic or site not in GATHER_SITES:
            return x, [None] * batch.num_lanes
        lanes = batch.lanes
        result = self.gather_engine.gather_batch(
            x,
            [lane.positions for lane in lanes],
            [lane.is_text for lane in lanes],
            lanes[0].grid,
            cache_token=[layout_digest(lane) for lane in lanes],
        )
        stats_list: list[DedupStats | None] = []
        num_rows = x.shape[1]
        for lane, r in zip(lanes, result.per_sample):
            stats_list.append(DedupStats(
                unique_vectors=r.unique_total,
                total_vectors=r.total_vectors,
                map_bits=r.map_bits,
                vector_size=r.vector_size,
                tile_lengths=r.tile_lengths,
                tile_rows=r.tile_rows,
                scatter_ops=scatter_accumulation_ops(
                    num_rows, n, r.reps.shape[0]
                ),
            ))
            lane.trace.sic_comparisons += r.comparisons
        return result.x_approx, stats_list


class Int8BatchPlugin(BatchPlugin):
    """Wrap a batch plugin with per-token INT8 activation rounding.

    The absmax scale is per row (last axis), so quantizing the stack
    equals quantizing each lane alone — the stacked counterpart of
    :class:`~repro.quant.int8.Int8ActivationPlugin`, applied before
    the wrapped plugin's gather exactly as in the serial wrapper.
    """

    def __init__(self, inner: BatchPlugin | None = None) -> None:
        self.inner = inner or BatchPlugin()

    def begin(self, batch: BatchState) -> None:
        self.inner.begin(batch)

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        batch: BatchState,
        producers,
        n: int,
    ) -> tuple[np.ndarray, list[DedupStats | None]]:
        quantized = fake_quant_int8(x, axis=-1)
        return self.inner.gemm_input(
            layer_index, site, quantized, batch, producers, n
        )

    def after_attention_probs(
        self, layer_index: int, probs: np.ndarray, batch: BatchState
    ) -> list[np.ndarray] | None:
        return self.inner.after_attention_probs(layer_index, probs, batch)

    def finish(self, batch: BatchState) -> None:
        self.inner.finish(batch)


BatchPluginFactory = Callable[[SyntheticVLM, FocusConfig], BatchPlugin]

BATCH_METHOD_REGISTRY: dict[str, BatchPluginFactory] = {
    "dense": lambda model, cfg: BatchPlugin(),
    "focus": lambda model, cfg: BatchFocusPlugin(model, cfg),
    "focus-sec": lambda model, cfg: BatchFocusPlugin(
        model, cfg, enable_sic=False
    ),
    "focus-sic": lambda model, cfg: BatchFocusPlugin(
        model, cfg, enable_sec=False
    ),
    "focus-token": lambda model, cfg: BatchFocusPlugin(
        model, cfg, token_wise=True
    ),
}
"""Methods with a batched implementation.  Everything else (entry
compression, inter-layer merging, data-dependent keep counts) falls
back to the serial per-sample loop."""


def make_batch_plugin(
    method: str,
    model: SyntheticVLM,
    config: FocusConfig = DEFAULT_CONFIG,
    quantized: bool = False,
) -> BatchPlugin | None:
    """Batch plugin for a registry method, or ``None`` if unsupported."""
    factory = BATCH_METHOD_REGISTRY.get(method)
    if factory is None:
        return None
    plugin = factory(model, config)
    if quantized:
        plugin = Int8BatchPlugin(plugin)
    return plugin


def bucket_samples(samples: list[Sample]) -> list[list[int]]:
    """Group sample indices by token-layout shape, in encounter order.

    The bucketing rule: samples batch together iff they agree on
    (visual-token count, text-token count, FHW grid) — exactly the
    quantities that make their initial token stacks rectangular and
    their neighbor tables shareable.  Ragged eval spans (mixed
    datasets) therefore split into a handful of buckets, each run as
    one or more batched passes.
    """
    buckets: dict[tuple, list[int]] = {}
    for index, sample in enumerate(samples):
        key = (
            sample.num_visual_tokens,
            sample.num_text_tokens,
            sample.grid,
        )
        buckets.setdefault(key, []).append(index)
    return list(buckets.values())


def run_batched(
    model: SyntheticVLM,
    samples: list[Sample],
    plugin: BatchPlugin,
    batch_size: int,
) -> list:
    """Evaluate ``samples`` in shape-bucketed batched passes.

    Returns per-sample :class:`~repro.model.vlm.InferenceResult`\\ s in
    the *original* sample order, so callers accumulate records exactly
    as the serial loop would.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    outcomes: list = [None] * len(samples)
    for lane_indices in bucket_samples(samples):
        for start in range(0, len(lane_indices), batch_size):
            chunk = lane_indices[start:start + batch_size]
            results = model.forward_batch(
                [samples[i] for i in chunk], plugin
            )
            for index, result in zip(chunk, results):
                outcomes[index] = result
    return outcomes
