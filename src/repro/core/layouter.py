"""Convolution-style layouter with conflict-free bank mapping (Sec. VI-B).

Block-level similarity matching reads all ``f x h x w`` vectors of a
sliding window in one cycle.  A naive SRAM layout would either incur
bank conflicts or replicate data up to 8x (as some CNN accelerators
do).  The paper's layouter instead maps every token deterministically
to one of ``f*h*w`` banks by coordinate parity::

    bank   = (frame mod 2) * 4 + (row mod 2) * 2 + (col mod 2)
    offset = floor(row / 2) * ceil(W / 2) + floor(col / 2)

(for the default 2x2x2 block), which guarantees the 8 vectors of any
window live in 8 distinct banks.  This module implements the general
``(bf, bh, bw)`` form and the conflict-freedom check the tests and the
Fig. 10(c) block-size sweep rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BankAddress:
    """A (bank, offset) physical placement of one token's vectors."""

    bank: int
    offset: int


class ConvolutionLayouter:
    """Deterministic token -> (bank, offset) placement.

    Args:
        block: ``(frames, height, width)`` of the comparison block.
        frame_width: ``W`` of the visual grid, used by the offset
            equation.
    """

    def __init__(self, block: tuple[int, int, int], frame_width: int) -> None:
        bf, bh, bw = block
        if min(bf, bh, bw) < 1:
            raise ValueError("block dimensions must be >= 1")
        if frame_width < 1:
            raise ValueError("frame_width must be >= 1")
        self.block = (bf, bh, bw)
        self.frame_width = frame_width

    @property
    def num_banks(self) -> int:
        """One bank per block cell: ``bf * bh * bw`` (8 for 2x2x2)."""
        bf, bh, bw = self.block
        return bf * bh * bw

    def bank_of(self, frame: int, row: int, col: int) -> int:
        """Bank index by coordinate parity (Fig. 7 equation)."""
        bf, bh, bw = self.block
        return (frame % bf) * (bh * bw) + (row % bh) * bw + (col % bw)

    def offset_of(self, row: int, col: int) -> int:
        """Within-bank word offset (Fig. 7 equation)."""
        _, bh, bw = self.block
        cols_per_bank = -(-self.frame_width // bw)
        return (row // bh) * cols_per_bank + (col // bw)

    def address(self, frame: int, row: int, col: int) -> BankAddress:
        """Full physical address of one token."""
        return BankAddress(
            bank=self.bank_of(frame, row, col),
            offset=self.offset_of(row, col),
        )

    def addresses(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized addressing of an ``(n, 3)`` position array.

        Returns:
            Integer array of shape ``(n, 2)`` holding (bank, offset).
        """
        positions = np.asarray(positions, dtype=np.int64)
        bf, bh, bw = self.block
        frame, row, col = positions[:, 0], positions[:, 1], positions[:, 2]
        bank = (frame % bf) * (bh * bw) + (row % bh) * bw + (col % bw)
        cols_per_bank = -(-self.frame_width // bw)
        offset = (row // bh) * cols_per_bank + (col // bw)
        return np.stack([bank, offset], axis=1)

    def window_positions(
        self, key: tuple[int, int, int]
    ) -> list[tuple[int, int, int]]:
        """All block positions whose *highest-index* corner is ``key``.

        The key vector is the token with the largest FHW linear index in
        its window (Sec. VI-A); its comparison partners sit at
        ``(f - df, r - dr, c - dc)`` for all non-zero backward offsets.
        """
        bf, bh, bw = self.block
        frame, row, col = key
        return [
            (frame - df, row - dr, col - dc)
            for df in range(bf)
            for dr in range(bh)
            for dc in range(bw)
        ]

    def is_conflict_free(self, key: tuple[int, int, int]) -> bool:
        """Whether the window at ``key`` touches each bank exactly once.

        This is the property that lets the matcher read a whole block
        in a single cycle with no data replication.
        """
        window = [
            pos for pos in self.window_positions(key)
            if pos[0] >= 0 and pos[1] >= 0 and pos[2] >= 0
        ]
        banks = [self.bank_of(*pos) for pos in window]
        return len(banks) == len(set(banks))
