"""repro: a full reproduction of *Focus: A Streaming Concentration
Architecture for Efficient Vision-Language Models* (HPCA 2026).

The package has four layers:

* ``repro.model`` / ``repro.workloads`` — a NumPy VLM substrate and
  synthetic video/image QA benchmarks (substituting the paper's 7B
  PyTorch models and HuggingFace datasets).
* ``repro.core`` — the paper's contribution: multilevel concentration
  (semantic / block / vector) as a streaming, tile-local pipeline.
* ``repro.baselines`` — FrameFusion, AdapTiV, CMC and GPU roofline
  comparators.
* ``repro.accel`` / ``repro.eval`` — a trace-driven systolic-array
  simulator with DRAM/energy/area models, and experiment drivers that
  regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import FocusConfig, FocusPlugin, SyntheticVLM
    from repro.model import get_model_config
    from repro.workloads import make_dataset

    config = get_model_config("llava-video")
    model = SyntheticVLM(config)
    samples = make_dataset("videomme", config.layout, num_samples=4)
    plugin = FocusPlugin(model, FocusConfig())
    result = model.forward(samples[0], plugin)
"""

from repro.config import DEFAULT_CONFIG, FocusConfig
from repro.model import ModelConfig, SyntheticVLM
from repro.core import FocusPlugin

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "FocusConfig",
    "ModelConfig",
    "SyntheticVLM",
    "FocusPlugin",
    "__version__",
]
