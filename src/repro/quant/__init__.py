"""INT8 quantization emulation for the Table IV synergy study."""

from repro.quant.int8 import (
    INT8_LEVELS,
    Int8ActivationPlugin,
    fake_quant_int8,
    quantize_model,
)

__all__ = [
    "INT8_LEVELS",
    "Int8ActivationPlugin",
    "fake_quant_int8",
    "quantize_model",
]
