"""INT8 quantization emulation (Table IV: synergy with quantization).

The paper integrates Focus with bitsandbytes-style INT8 inference.  We
emulate it with absmax fake-quantization: weights are quantized
per-output-channel once, activations per-token at every GEMM input.
Values are rounded through the INT8 grid and dequantized, so the rest
of the NumPy pipeline (and the similarity matcher, whose thresholds
the quantization perturbs) sees exactly the precision the hardware
would.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.model.plugins import DedupStats, InferencePlugin
from repro.model.vlm import SyntheticVLM, TokenState

INT8_LEVELS = 127
"""Symmetric signed INT8 grid."""


def fake_quant_int8(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Round ``x`` through a symmetric per-slice INT8 grid.

    Args:
        x: Input array.
        axis: Axis along which each slice gets its own absmax scale
            (``-1``: per-row scaling for activations; ``0``: per-output-
            channel for weight matrices).
    """
    x = np.asarray(x, dtype=np.float32)
    scale = np.max(np.abs(x), axis=axis, keepdims=True) / INT8_LEVELS
    scale = np.where(scale > 0, scale, 1.0)
    return (np.round(x / scale) * scale).astype(np.float32)


def quantize_model(model: SyntheticVLM) -> SyntheticVLM:
    """Return a copy of the model with INT8-rounded weights.

    Each projection matrix is quantized per output channel, the
    standard absmax scheme of bitsandbytes' LLM.int8 path.
    """
    quantized = SyntheticVLM(model.config)
    quantized.layers = []
    for weights in model.layers:
        clone = copy.copy(weights)
        clone = type(weights)(
            wq=fake_quant_int8(weights.wq, axis=0),
            wk=fake_quant_int8(weights.wk, axis=0),
            wv=fake_quant_int8(weights.wv, axis=0),
            wo=fake_quant_int8(weights.wo, axis=0),
            w_fc1=fake_quant_int8(weights.w_fc1, axis=0),
            w_fc2=fake_quant_int8(weights.w_fc2, axis=0),
        )
        quantized.layers.append(clone)
    return quantized


class Int8ActivationPlugin(InferencePlugin):
    """Wrap another plugin with per-token INT8 activation rounding.

    Activations are quantized *before* the wrapped plugin's gather so
    the similarity matcher operates on the values the INT8 datapath
    would actually compare — the interaction Table IV measures.
    """

    def __init__(self, inner: InferencePlugin | None = None) -> None:
        self.inner = inner or InferencePlugin()

    @property
    def needs_attention_summary(self) -> bool:  # type: ignore[override]
        """Delegated: the wrapped plugin decides whether the engine
        must compute per-key attention summaries."""
        return self.inner.needs_attention_summary

    @property
    def reusable(self) -> bool:  # type: ignore[override]
        """Delegated: the wrapper itself is stateless, so reuse is
        exactly as safe as the wrapped plugin's reuse."""
        return self.inner.reusable

    def begin(self, state: TokenState) -> None:
        self.inner.begin(state)

    def on_visual_tokens(self, state: TokenState) -> None:
        self.inner.on_visual_tokens(state)

    def before_layer(self, layer_index: int, state: TokenState) -> None:
        self.inner.before_layer(layer_index, state)

    def gemm_input(
        self,
        layer_index: int,
        site: str,
        x: np.ndarray,
        state: TokenState,
        producer,
        n: int,
    ) -> tuple[np.ndarray, DedupStats | None]:
        quantized = fake_quant_int8(x, axis=-1)
        return self.inner.gemm_input(
            layer_index, site, quantized, state, producer, n
        )

    def after_attention_probs(
        self, layer_index: int, probs: np.ndarray, state: TokenState
    ) -> np.ndarray | None:
        return self.inner.after_attention_probs(layer_index, probs, state)

    def finish(self, state: TokenState) -> None:
        self.inner.finish(state)
