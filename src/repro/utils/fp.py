"""Floating-point precision emulation.

The Focus accelerator computes GEMMs with FP16 multipliers and FP32
accumulators (Table I).  NumPy on CPU computes in FP32/FP64; these
helpers round values through ``float16`` so the algorithmic results see
the same quantization the hardware would.
"""

from __future__ import annotations

import numpy as np


def to_fp16(x: np.ndarray) -> np.ndarray:
    """Round ``x`` through IEEE float16 and return it as float32.

    This models storing a value in an FP16 register or SRAM word while
    keeping subsequent NumPy arithmetic in float32 (the accumulator
    precision of the paper's PE array).
    """
    return np.asarray(x, dtype=np.float16).astype(np.float32)


def quantize_fp16(x: np.ndarray, enabled: bool = True) -> np.ndarray:
    """Conditionally apply :func:`to_fp16`.

    Args:
        x: Input array.
        enabled: When ``False`` the input is returned unchanged, which
            is useful for ablating precision effects in tests.
    """
    return to_fp16(x) if enabled else np.asarray(x, dtype=np.float32)
