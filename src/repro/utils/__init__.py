"""Shared utilities: seeded randomness and floating-point emulation."""

from repro.utils.rng import rng_for
from repro.utils.fp import to_fp16, quantize_fp16

__all__ = ["rng_for", "to_fp16", "quantize_fp16"]
