"""Deterministic random number generation.

Every stochastic component in the library (synthetic scenes, model
weights, noise injection) draws from a generator obtained through
:func:`rng_for`, so a whole experiment is reproducible from a single
integer seed plus a human-readable stream label.
"""

from __future__ import annotations

import hashlib

import numpy as np


def rng_for(seed: int, *labels: object) -> np.random.Generator:
    """Return an independent generator for ``(seed, *labels)``.

    The labels are hashed together with the seed so that, for example,
    ``rng_for(0, "scene", 3)`` and ``rng_for(0, "weights", "attn")``
    produce decorrelated streams while remaining fully deterministic.

    Args:
        seed: Experiment-level seed.
        labels: Any printable objects naming the stream.

    Returns:
        A ``numpy.random.Generator`` seeded from the digest.
    """
    digest = hashlib.sha256(repr((seed,) + labels).encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
