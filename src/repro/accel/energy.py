"""28 nm energy constants and accounting.

The constants follow the usual 28 nm CMOS estimates (Horowitz,
ISSCC'14 scaling; DDR4 device power from DRAMsim3-class models) and
are calibrated so the vanilla systolic array lands at Table III's
~720 mW on-chip power under the Llava-Video/VideoMME workload.
"""

from __future__ import annotations

from dataclasses import dataclass

E_MAC_FP16_PJ = 1.10
"""FP16 multiply + FP32 accumulate with operand movement through the
array, 28 nm (calibrated to Table III's 720 mW vanilla-array power)."""

E_SRAM_PJ_PER_BYTE = 4.0
"""Large-buffer SRAM access (read or write), per byte."""

E_DRAM_PJ_PER_BYTE = 120.0
"""DDR4 device + IO energy per byte transferred."""

E_SFU_OP_PJ = 1.8
"""Special-function op (exp, div, sqrt for softmax/RMSNorm/cosine)."""

E_CMP_PJ = 0.05
"""Scalar compare (sorter stage, sign check)."""

E_ACC_FP32_PJ = 0.45
"""FP32 accumulate in the scatter accumulator."""


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one simulated run, split as in Fig. 9(b).

    Attributes:
        core_j: PE array + special units (SEC/SIC/codec/merge/SFU).
        buffer_j: On-chip SRAM traffic.
        dram_j: Off-chip transfers.
    """

    core_j: float
    buffer_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return self.core_j + self.buffer_j + self.dram_j

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Scale every component (e.g. per-sample normalization)."""
        return EnergyBreakdown(
            core_j=self.core_j * factor,
            buffer_j=self.buffer_j * factor,
            dram_j=self.dram_j * factor,
        )

    def fractions(self) -> dict[str, float]:
        """Component shares of the total (for breakdown plots)."""
        total = self.total_j
        if total <= 0:
            return {"core": 0.0, "buffer": 0.0, "dram": 0.0}
        return {
            "core": self.core_j / total,
            "buffer": self.buffer_j / total,
            "dram": self.dram_j / total,
        }
