"""28 nm area model and component breakdown (Table III, Fig. 9(c)).

Per-component densities are set to standard 28 nm figures (FP16 MAC
PE ~1340 um^2, single-port SRAM ~2 mm^2/MB) and reproduce the paper's
synthesized totals: 3.12 mm^2 for the vanilla array, 3.21 mm^2 for
Focus (+2.7%), 3.38 mm^2 for AdapTiV, 3.58 mm^2 for CMC.
"""

from __future__ import annotations

from repro.accel.arch import ArchConfig

PE_AREA_MM2 = 1.34e-3
"""One FP16-multiply / FP32-accumulate PE with pipeline registers."""

SRAM_MM2_PER_KB = 1.95e-3
"""Compiled single-port SRAM macro density."""

SFU_AREA_MM2 = 0.32
"""Special function unit (exp/div/sqrt lanes shared by softmax,
RMSNorm and, in Focus, cosine normalization)."""

SEC_AREA_MM2 = 0.061
"""Semantic concentrator: max lanes, bubble sorter, offset encoder
(1.9% of the Focus design)."""

SIC_AREA_MM2 = 0.026
"""Similarity concentrator: dot-product matcher, similarity map logic,
scatter accumulators (0.8%)."""

CODEC_AREA_MM2 = 0.12
"""CMC's external video-codec block (motion search + reconstruction)."""

MERGE_UNIT_AREA_MM2 = 0.19
"""AdapTiV's sign-similarity token-merge unit."""


def area_breakdown(arch: ArchConfig) -> dict[str, float]:
    """Per-component area (mm^2) of a configuration."""
    breakdown = {
        "systolic_array": arch.num_pes * PE_AREA_MM2,
        "buffer": arch.buffer_kb * SRAM_MM2_PER_KB,
        "sfu": SFU_AREA_MM2,
    }
    if arch.has_sec:
        breakdown["sec"] = SEC_AREA_MM2
    if arch.has_sic:
        breakdown["sic"] = SIC_AREA_MM2
    if arch.has_codec:
        breakdown["codec"] = CODEC_AREA_MM2
    if arch.has_merge_unit:
        breakdown["merge_unit"] = MERGE_UNIT_AREA_MM2
    return breakdown


def total_area_mm2(arch: ArchConfig) -> float:
    """Total on-chip area of a configuration."""
    return sum(area_breakdown(arch).values())


def focus_overhead_fraction() -> float:
    """Area overhead of the Focus Unit relative to the vanilla array."""
    from repro.accel.arch import FOCUS, SYSTOLIC

    return total_area_mm2(FOCUS) / total_area_mm2(SYSTOLIC) - 1.0
