"""On-chip buffer capacity model.

Used for two things: validating that the Table I tiling fits the
Table I buffers (worst-case analysis of Sec. VIII-B — a fully
incompressible tile must not overflow), and the latency-vs-buffer
trade-off of the Fig. 10(a) tile-size sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.arch import ArchConfig
from repro.accel.trace import BYTES_PER_ELEMENT

ACCUMULATOR_BYTES = 4
"""Output tiles accumulate in FP32."""


@dataclass(frozen=True)
class BufferRequirement:
    """Worst-case SRAM demand of one tiling configuration (bytes)."""

    input_bytes: int
    weight_bytes: int
    output_bytes: int
    layouter_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.input_bytes
            + self.weight_bytes
            + self.output_bytes
            + self.layouter_bytes
        )


def tiling_requirement(
    m_tile: int,
    n_tile: int,
    k_tile: int,
    hidden: int,
    layouter_window: int = 256,
    double_buffered: bool = True,
) -> BufferRequirement:
    """Worst-case buffer demand of a tiling configuration.

    Args:
        m_tile: Output-tile height (tokens per tile).
        n_tile: Output-tile width.
        k_tile: Inner-dimension tile (array height).
        hidden: Hidden dimension (input rows span the full k).
        layouter_window: Vectors held by the convolution-style
            layouter's reorder window (Table I: 256).
        double_buffered: Ping-pong buffers for overlap.
    """
    factor = 2 if double_buffered else 1
    input_bytes = m_tile * k_tile * BYTES_PER_ELEMENT * factor
    weight_bytes = k_tile * n_tile * BYTES_PER_ELEMENT * factor
    # The worst case keeps the full m x n tile resident in FP32 until
    # gathering completes; no overflow is possible because gathering
    # only ever shrinks the tile (Sec. VIII-B).
    output_bytes = m_tile * n_tile * ACCUMULATOR_BYTES * factor
    layouter_bytes = layouter_window * n_tile * BYTES_PER_ELEMENT
    del hidden  # spans are tiled; kept for signature clarity
    return BufferRequirement(
        input_bytes=input_bytes,
        weight_bytes=weight_bytes,
        output_bytes=output_bytes,
        layouter_bytes=layouter_bytes,
    )


def fits(arch: ArchConfig, requirement: BufferRequirement) -> bool:
    """Whether a tiling's worst case fits the architecture's SRAM."""
    checks = (
        requirement.input_bytes <= arch.input_buffer_kb * 1024,
        requirement.weight_bytes <= arch.weight_buffer_kb * 1024,
        requirement.output_bytes <= arch.output_buffer_kb * 1024,
        requirement.layouter_bytes
        <= max(arch.extra_buffer_kb, 0.0) * 1024 or arch.extra_buffer_kb == 0,
    )
    return all(checks)


def output_buffer_kb_for_tile(m_tile: int, n_tile: int = 32) -> float:
    """Output SRAM needed for a given m-tile (Fig. 10(a) buffer axis)."""
    return m_tile * n_tile * ACCUMULATOR_BYTES * 2 / 1024.0
