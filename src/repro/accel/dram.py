"""Off-chip DRAM model (DDR4, Table I: 4Gb x16 2133R, 4 channels).

Bandwidth-and-energy level model standing in for DRAMsim3: transfers
move at a fixed achievable bandwidth and cost a fixed energy per byte.
Row-buffer effects are folded into the achievable-bandwidth derating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.energy import E_DRAM_PJ_PER_BYTE


@dataclass(frozen=True)
class DramModel:
    """DDR4 channel group.

    Attributes:
        bandwidth_gbs: Peak aggregate bandwidth (Table I: 64 GB/s).
        efficiency: Achievable fraction of peak on streaming access.
        energy_pj_per_byte: Device + IO energy per byte transferred.
        static_power_w: Background power of the four-channel DDR4
            group (activate/precharge standby, refresh, clocking) —
            paid for the whole runtime regardless of traffic, as
            DRAMsim3's device model does.  This is why energy
            efficiency tracks speedup so closely in Fig. 9.
    """

    bandwidth_gbs: float = 64.0
    efficiency: float = 0.80
    energy_pj_per_byte: float = E_DRAM_PJ_PER_BYTE
    static_power_w: float = 0.85

    @property
    def achievable_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9 * self.efficiency

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` at achievable bandwidth."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.achievable_bytes_per_s

    def transfer_cycles(self, num_bytes: float, frequency_hz: float) -> int:
        """Same, expressed in core cycles."""
        return int(round(self.transfer_seconds(num_bytes) * frequency_hz))

    def energy_j(self, num_bytes: float, runtime_s: float = 0.0) -> float:
        """Transfer + background energy in joules."""
        dynamic = num_bytes * self.energy_pj_per_byte * 1e-12
        return dynamic + self.static_power_w * runtime_s
