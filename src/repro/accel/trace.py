"""Layer-wise execution traces.

The paper's evaluation methodology (Sec. VII-A) generates *layer-wise
sparse traces* from the PyTorch algorithm run and feeds them to a
SCALEsim-based cycle-accurate simulator.  This module defines that
interface: every GEMM the model executes is recorded as a
:class:`GemmTrace`, and a :class:`ModelTrace` aggregates one forward
pass.  The simulator (:mod:`repro.accel.simulator`) consumes traces
without ever touching model internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BYTES_PER_ELEMENT = 2
"""FP16 operand width used throughout the accelerator (Table I)."""


@dataclass
class GemmTrace:
    """One executed GEMM, with optional concentration annotations.

    A dense GEMM computes ``m x k @ k x n``.  When the similarity
    concentrator (SIC) compresses the input, the ``k`` dimension is
    split into ``k_blocks`` blocks of ``vector_size`` columns and only
    ``input_unique`` total vectors (summed over blocks and m-tiles)
    enter the PE array; ``scatter_ops`` accumulations reconstruct the
    full output.

    Attributes:
        name: Site of the GEMM (``qkv``, ``qk``, ``pv``, ``o_proj``,
            ``fc1``, ``fc2``).
        layer: Transformer layer index.
        m: Output rows (tokens actually processed).
        k: Inner dimension.
        n: Output columns.
        input_unique: Total unique input vectors over all
            (m-tile, k-block) pairs after similarity gathering, or
            ``None`` when the input is dense.
        vector_size: Sub-token vector length used by the gather.
        input_map_bits: Similarity-map metadata accompanying the
            compressed input.
        output_compressed_rows: Unique output vectors written back to
            DRAM (set by the consumer-side gather), or ``None`` when
            the output is stored dense.
        output_map_bits: Metadata bits for the compressed output.
        scatter_ops: FP32 accumulations performed by the similarity
            scatter for this GEMM.
    """

    name: str
    layer: int
    m: int
    k: int
    n: int
    input_unique: int | None = None
    vector_size: int = 32
    input_map_bits: int = 0
    output_compressed_rows: int | None = None
    output_map_bits: int = 0
    scatter_ops: int = 0

    @property
    def k_blocks(self) -> int:
        """Number of vector-granular blocks along the k dimension."""
        return max(1, -(-self.k // self.vector_size))

    @property
    def dense_macs(self) -> int:
        """MACs a dense execution of this GEMM would need."""
        return self.m * self.k * self.n

    @property
    def macs(self) -> int:
        """MACs actually executed on the PE array."""
        if self.input_unique is None:
            return self.dense_macs
        return self.input_unique * self.vector_size * self.n

    @property
    def input_bytes(self) -> int:
        """Activation bytes read for this GEMM (compressed if gathered)."""
        if self.input_unique is None:
            return self.m * self.k * BYTES_PER_ELEMENT
        payload = self.input_unique * self.vector_size * BYTES_PER_ELEMENT
        return payload + -(-self.input_map_bits // 8)

    @property
    def weight_bytes(self) -> int:
        """Weight bytes streamed from DRAM (once per layer execution)."""
        return self.k * self.n * BYTES_PER_ELEMENT

    @property
    def output_bytes(self) -> int:
        """Activation bytes written back (compressed if gathered)."""
        if self.output_compressed_rows is None:
            return self.m * self.n * BYTES_PER_ELEMENT
        payload = (
            self.output_compressed_rows * self.vector_size * BYTES_PER_ELEMENT
        )
        return payload + -(-self.output_map_bits // 8)


@dataclass(frozen=True)
class SecEvent:
    """One semantic-pruning invocation, for sorter-cycle modelling.

    Attributes:
        layer: Layer at which the top-k selection ran.
        candidates: Image tokens entering the sorter (``M``).
        selected: Tokens retained (``k``).
    """

    layer: int
    candidates: int
    selected: int


@dataclass
class ModelTrace:
    """Trace of one full forward pass.

    Attributes:
        gemms: Every GEMM executed, in execution order.
        tile_lengths: Concentrated vector count of every
            (m-tile, k-block) gather invocation; this is the histogram
            of Fig. 13.
        tile_rows: Row count of the tile behind each ``tile_lengths``
            entry (for normalizing to paper-scale 1024-row tiles).
        tokens_per_layer: Token count entering each layer (after any
            semantic pruning); drives Fig. 12's activation-size bars.
        metadata_bits: Total offset-encoding + similarity-map bits
            produced during the pass.
        preprocess_macs: Extra operations spent by the method itself
            (codec search, merging, importance estimation) outside the
            model GEMMs.
        sec_events: Semantic-pruning invocations (sorter occupancy).
        sic_comparisons: Total pairwise vector comparisons performed by
            the similarity matcher (matcher occupancy).
        initial_tokens: Token count (image + text) before any
            compression; baselines that restore full outputs are
            charged write-back traffic at this width.
    """

    gemms: list[GemmTrace] = field(default_factory=list)
    tile_lengths: list[int] = field(default_factory=list)
    tile_rows: list[int] = field(default_factory=list)
    tokens_per_layer: list[int] = field(default_factory=list)
    metadata_bits: int = 0
    preprocess_macs: int = 0
    sec_events: list[SecEvent] = field(default_factory=list)
    sic_comparisons: int = 0
    initial_tokens: int = 0

    def add(self, gemm: GemmTrace) -> GemmTrace:
        """Append a GEMM record and return it (for later annotation)."""
        self.gemms.append(gemm)
        return gemm

    @property
    def total_macs(self) -> int:
        return sum(g.macs for g in self.gemms) + self.preprocess_macs

    @property
    def dense_macs(self) -> int:
        return sum(g.dense_macs for g in self.gemms)

    @property
    def total_scatter_ops(self) -> int:
        return sum(g.scatter_ops for g in self.gemms)

    @property
    def activation_read_bytes(self) -> int:
        return sum(g.input_bytes for g in self.gemms)

    @property
    def activation_write_bytes(self) -> int:
        return sum(g.output_bytes for g in self.gemms)

    @property
    def weight_bytes(self) -> int:
        return sum(g.weight_bytes for g in self.gemms)

    def merge(self, other: "ModelTrace") -> None:
        """Fold another trace into this one (multi-sample aggregation)."""
        self.gemms.extend(other.gemms)
        self.tile_lengths.extend(other.tile_lengths)
        self.tile_rows.extend(other.tile_rows)
        self.tokens_per_layer.extend(other.tokens_per_layer)
        self.metadata_bits += other.metadata_bits
        self.preprocess_macs += other.preprocess_macs
        self.sec_events.extend(other.sec_events)
        self.sic_comparisons += other.sic_comparisons
        self.initial_tokens += other.initial_tokens


def sparsity_vs_dense(trace: ModelTrace) -> float:
    """Computation sparsity as defined in Sec. VII-B.

    The fraction of dense-model operations *avoided* by the method:
    ``1 - ops(method) / ops(dense)``.
    """
    dense = trace.dense_macs
    if dense == 0:
        return 0.0
    return 1.0 - trace.total_macs / dense
