"""Cycle-level accelerator models: systolic array, DRAM, energy, area."""

from repro.accel.arch import (
    ADAPTIV,
    ARCH_CONFIGS,
    CMC,
    FOCUS,
    METHOD_TO_ARCH,
    SYSTOLIC,
    ArchConfig,
)
from repro.accel.area import (
    area_breakdown,
    focus_overhead_fraction,
    total_area_mm2,
)
from repro.accel.buffers import (
    BufferRequirement,
    fits,
    output_buffer_kb_for_tile,
    tiling_requirement,
)
from repro.accel.dram import DramModel
from repro.accel.energy import EnergyBreakdown
from repro.accel.focus_unit import FocusUnitActivity, focus_unit_activity
from repro.accel.sim_jobs import (
    make_sim_jobs,
    simulate_many_sharded,
    traces_digest,
)
from repro.accel.simulator import (
    SimResult,
    canonical_dram,
    dram_config,
    plan_shards,
    simulate,
    simulate_many,
)
from repro.accel.systolic import (
    concentrated_gemm_cycles,
    dense_gemm_cycles,
    gemm_utilization,
    tile_utilization,
)
from repro.accel.trace import (
    BYTES_PER_ELEMENT,
    GemmTrace,
    ModelTrace,
    SecEvent,
)

__all__ = [
    "ADAPTIV",
    "ARCH_CONFIGS",
    "CMC",
    "FOCUS",
    "METHOD_TO_ARCH",
    "SYSTOLIC",
    "ArchConfig",
    "area_breakdown",
    "focus_overhead_fraction",
    "total_area_mm2",
    "BufferRequirement",
    "fits",
    "output_buffer_kb_for_tile",
    "tiling_requirement",
    "DramModel",
    "EnergyBreakdown",
    "FocusUnitActivity",
    "focus_unit_activity",
    "SimResult",
    "canonical_dram",
    "dram_config",
    "make_sim_jobs",
    "plan_shards",
    "simulate",
    "simulate_many",
    "simulate_many_sharded",
    "traces_digest",
    "concentrated_gemm_cycles",
    "dense_gemm_cycles",
    "gemm_utilization",
    "tile_utilization",
    "BYTES_PER_ELEMENT",
    "GemmTrace",
    "ModelTrace",
    "SecEvent",
]
