"""Timing and energy model of the Focus Unit (SEC + SIC).

The unit's defining property is that it stays *off the critical path*:
the SEC sorter overlaps the image-attention GEMM (Sec. V-B's ratio
argument) and the SIC matcher finishes within each tile's GEMM time
whenever ``K >= 256`` (Sec. VI-A).  The simulator uses these models to
charge only the *non-overlapped* residue, plus the unit's energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.energy import E_ACC_FP32_PJ, E_CMP_PJ, E_MAC_FP16_PJ
from repro.accel.trace import ModelTrace, SecEvent


def _sorter_cycles(num_candidates: int, k: int, lanes: int) -> int:
    """``M * ceil(k/a)`` streaming-sorter cycles.

    Kept in sync with :func:`repro.core.topk.sorter_cycles` (tests
    assert equality); duplicated here so the accel package does not
    import the algorithm package.
    """
    passes = -(-max(k, 0) // lanes)
    return num_candidates * passes


MATCHER_OPS_PER_COMPARISON = 32
"""One cosine comparison = one 32-wide dot product (norms are
precomputed and reused, Sec. VI-A)."""

NORM_OPS_PER_VECTOR = 32
"""One L2-norm computation per stored vector."""


@dataclass(frozen=True)
class FocusUnitActivity:
    """Cycle and energy accounting of the unit over one trace."""

    sorter_cycles: int
    matcher_cycles: int
    scatter_cycles: int
    exposed_cycles: int
    energy_j: float


def sec_sorter_cycles(events: list[SecEvent], lanes: int = 32) -> int:
    """Total streaming-sorter occupancy across pruning events."""
    return sum(
        _sorter_cycles(event.candidates, event.selected, lanes)
        for event in events
    )


def sec_attention_cycles(
    events: list[SecEvent], trace: ModelTrace, rows: int, cols: int
) -> int:
    """Image-attention GEMM cycles available to hide the sorter.

    The sorter of the pruning at layer ``l`` overlaps that layer's
    ``Q(i) K^T`` GEMM (the dominant part of the ``qk`` record).
    """
    available = 0
    qk_by_layer = {
        g.layer: g for g in trace.gemms if g.name == "qk"
    }
    for event in events:
        gemm = qk_by_layer.get(event.layer)
        if gemm is None:
            continue
        k_tiles = -(-gemm.k // rows)
        n_tiles = -(-gemm.n // cols)
        available += k_tiles * n_tiles * (gemm.m + rows + cols - 1)
    return available


def sic_matcher_cycles(trace: ModelTrace) -> int:
    """Matcher occupancy: one comparison or norm per cycle.

    Per tile of ``m`` vectors the hardware bound is ``8 m`` cycles
    (7 comparisons + 1 norm per vector for a 2x2x2 block); the trace
    records the comparisons actually performed (pruned neighbours skip).
    """
    norms = sum(trace.tile_lengths)
    return trace.sic_comparisons + norms


def scatter_cycles(trace: ModelTrace, accumulators: int = 64) -> int:
    """Scatter accumulation occupancy with ``accumulators`` lanes."""
    if accumulators < 1:
        raise ValueError("need at least one accumulator")
    total = sum(g.scatter_ops for g in trace.gemms)
    return -(-total // accumulators)


def focus_unit_activity(
    trace: ModelTrace,
    rows: int = 32,
    cols: int = 32,
    lanes: int = 32,
    accumulators: int = 64,
    compute_cycles: int | None = None,
) -> FocusUnitActivity:
    """Aggregate occupancy, exposure and energy of the Focus Unit.

    Args:
        trace: Executed model trace.
        rows: PE-array height.
        cols: PE-array width.
        lanes: Sorter lanes (= max units).
        accumulators: Scatter accumulator lanes.
        compute_cycles: Total GEMM cycles of the run; when given, the
            matcher/scatter exposure is the residue beyond the GEMM
            time they overlap.

    Returns:
        Activity record; ``exposed_cycles`` is what the critical path
        actually pays.
    """
    sorter = sec_sorter_cycles(trace.sec_events, lanes)
    sorter_cover = sec_attention_cycles(trace.sec_events, trace, rows, cols)
    matcher = sic_matcher_cycles(trace)
    scatter = scatter_cycles(trace, accumulators)

    exposed = max(0, sorter - sorter_cover)
    if compute_cycles is not None:
        exposed += max(0, matcher - compute_cycles)
        exposed += max(0, scatter - compute_cycles)

    energy = (
        trace.sic_comparisons * MATCHER_OPS_PER_COMPARISON * E_MAC_FP16_PJ
        + sum(trace.tile_lengths) * NORM_OPS_PER_VECTOR * E_MAC_FP16_PJ
        + sorter * E_CMP_PJ
        + sum(g.scatter_ops for g in trace.gemms) * E_ACC_FP32_PJ
    ) * 1e-12
    return FocusUnitActivity(
        sorter_cycles=sorter,
        matcher_cycles=matcher,
        scatter_cycles=scatter,
        exposed_cycles=exposed,
        energy_j=energy,
    )
