"""Weight-stationary systolic-array cycle model (SCALEsim-style).

A ``rows x cols`` weight-stationary array executes an ``m x k @ k x n``
GEMM as ``ceil(k/rows) * ceil(n/cols)`` weight tiles; each tile loads
its weights (pipelined with the previous tile's drain), then streams
``m`` input rows through the array with a fill of ``rows`` cycles and a
drain of ``cols`` cycles.  This is the analytical model SCALEsim v2
uses for weight-stationary dataflow, and the baseline the paper's
simulator builds on (Sec. VII-A).

Concentrated GEMMs (Focus) stream only the unique vectors of each
k-block; because the vector size equals the array height (Table I:
both 32), k-blocks coincide with weight tiles and the reduced stream
length applies per tile.
"""

from __future__ import annotations

from repro.accel.trace import GemmTrace


def dense_gemm_cycles(m: int, k: int, n: int, rows: int, cols: int) -> int:
    """Cycles for a dense GEMM on a weight-stationary array."""
    if min(m, k, n) <= 0:
        return 0
    k_tiles = -(-k // rows)
    n_tiles = -(-n // cols)
    per_tile = m + rows + cols - 1
    return k_tiles * n_tiles * per_tile


def concentrated_gemm_cycles(
    gemm: GemmTrace, rows: int, cols: int
) -> int:
    """Cycles for a (possibly gathered) GEMM trace record.

    For gathered inputs the stream length per weight tile is the
    unique-vector count of that k-block; summed over all k-blocks that
    is exactly ``input_unique``, plus fill/drain per tile.
    """
    if gemm.input_unique is None:
        return dense_gemm_cycles(gemm.m, gemm.k, gemm.n, rows, cols)
    n_tiles = -(-gemm.n // cols)
    # Unique vectors stream once per n-tile (weights differ per tile).
    stream = gemm.input_unique * n_tiles
    fill_drain = gemm.k_blocks * n_tiles * (rows + cols - 1)
    return stream + fill_drain


def gemm_utilization(gemm: GemmTrace, rows: int, cols: int) -> float:
    """Fraction of PE-cycles doing useful MACs for this GEMM."""
    cycles = concentrated_gemm_cycles(gemm, rows, cols)
    if cycles == 0:
        return 0.0
    return gemm.macs / (cycles * rows * cols)


def tile_utilization(tile_length: int, rows: int, cols: int) -> float:
    """Array utilization when streaming one concentrated tile.

    This is the quantity plotted against the tile-length histogram in
    Fig. 13: short concentrated tiles pay proportionally more
    fill/drain, so utilization falls as tiles shrink.
    """
    if tile_length <= 0:
        return 0.0
    return tile_length / (tile_length + rows + cols - 1)
