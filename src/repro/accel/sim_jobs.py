"""Sharded trace simulation as an engine workload.

:func:`repro.accel.simulator.simulate_many` historically folded every
per-sample trace on one core.  This module makes simulation a
first-class, shardable job kind: a trace batch is split into contiguous
shards, each shard becomes a ``sim`` :class:`~repro.engine.jobs.EvalJob`
that the :class:`~repro.engine.scheduler.ExperimentEngine` dedupes,
caches, and executes on its worker pool, and the per-trace results are
re-folded in global trace order by :meth:`SimResult.merge
<repro.accel.simulator.SimResult.merge>`.

Bit-identity with the serial path is guaranteed by two choices:

* every shard returns *per-trace* :class:`SimResult`\\ s (not a partial
  sum), so the parent's final fold performs the exact same sequence of
  float additions as the serial loop, regardless of shard boundaries
  or worker count;
* each shard constructs its own :class:`DramModel` from the canonical
  field-value config (:func:`repro.accel.simulator.dram_config`), so a
  shared, possibly mutated instance can never make shards drift.

Job identity is content-addressed: the key hashes the trace batch
digest, the architecture config, the DRAM config, and the shard span.
The traces themselves ride in the job's ``payload`` (excluded from the
key), which lets identical simulation requests — Fig. 9's power
breakdown re-simulating a grid cell, repeated sweeps over one
evaluation — hit the result cache without re-shipping work.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Sequence

from repro.accel.arch import ArchConfig
from repro.accel.dram import DramModel
from repro.accel.simulator import (
    SimResult,
    canonical_dram,
    dram_config,
    simulate,
)
from repro.accel.trace import ModelTrace
from repro.engine.jobs import EvalJob, register_job_kind
from repro.engine.sharding import (  # noqa: F401  (plan_shards re-export)
    plan_shards,
    sequence_digest,
    shard_count_to_size,
)

if TYPE_CHECKING:
    from repro.engine.scheduler import ExperimentEngine

SIM_JOB_KIND = "sim"
SIM_JOB_PROVIDER = "repro.accel.sim_jobs"

SIM_TELEMETRY: deque[dict[str, object]] = deque(maxlen=1024)
"""Most recent sharded ``simulate_many`` records: wall-clock, shard
count, and engine cache/executed deltas.  Bounded so a long-lived
process can't grow it without limit; the benchmark harness drains it
into ``BENCH_sim.json``."""


def reset_sim_telemetry() -> None:
    SIM_TELEMETRY.clear()


def traces_digest(traces: Sequence[ModelTrace]) -> str:
    """Content digest of a trace batch.

    Traces are dataclasses of ints and floats whose ``repr`` is
    deterministic, so the digest (see :func:`repro.engine.sharding.
    sequence_digest`) is stable across processes and sessions — it is
    the part of a sim job's identity that stands in for the payload.
    """
    return sequence_digest(traces)


def make_sim_jobs(
    traces: Sequence[ModelTrace],
    arch: ArchConfig,
    dram: DramModel | None = None,
    shard_size: int = 1,
) -> list[EvalJob]:
    """Plan one ``sim`` job per shard of ``traces``.

    Every job is a pure function of its key — ``(trace-batch digest,
    arch config, dram config, shard span)`` — with the shard's traces
    attached as payload for transport to worker processes.
    """
    dram = canonical_dram(dram, arch)
    config = dram_config(dram)
    digest = traces_digest(traces)
    jobs = []
    for start, stop in plan_shards(len(traces), shard_size):
        jobs.append(EvalJob(
            model="trace",
            dataset=digest[:12],
            method=arch.name,
            num_samples=stop - start,
            seed=0,
            kind=SIM_JOB_KIND,
            extra=(
                ("arch", arch),
                ("dram", config),
                ("traces", digest),
                ("shard", (start, stop)),
            ),
            provider=SIM_JOB_PROVIDER,
            payload=tuple(traces[start:stop]),
        ))
    return jobs


@register_job_kind(SIM_JOB_KIND)
def _execute_sim(job: EvalJob) -> tuple[SimResult, ...]:
    """Simulate one shard; return *per-trace* results.

    Returning per-trace results (rather than a shard-local fold) is
    what lets the parent re-fold in global trace order and stay
    bit-identical to serial execution for any shard size.
    """
    extra = job.extra_map
    arch: ArchConfig = extra["arch"]
    dram = DramModel(**dict(extra["dram"]))
    traces = job.payload
    if traces is None:
        raise ValueError(
            f"sim job {job.job_id} has no trace payload; sim jobs must "
            "be built with make_sim_jobs()"
        )
    return tuple(simulate(trace, arch, dram) for trace in traces)


def resolve_shard_size(
    num_traces: int,
    engine: "ExperimentEngine",
    shard_size: int | None = None,
) -> int:
    """Pick the traces-per-shard for a batch on a given engine.

    An explicit ``shard_size`` wins; otherwise the batch is split into
    ``engine.sim_shards`` shards (when set, e.g. from the CLI's
    ``--sim-shards``) or one shard per engine worker.
    """
    if shard_size is not None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        return shard_size
    shards = getattr(engine, "sim_shards", None)
    if shards is None:
        shards = getattr(engine, "workers", 1)
    if shards < 1:
        raise ValueError(f"sim_shards must be >= 1, got {shards}")
    return shard_count_to_size(num_traces, shards)


def simulate_many_sharded(
    traces: Sequence[ModelTrace],
    arch: ArchConfig,
    dram: DramModel | None,
    engine: "ExperimentEngine",
    shard_size: int | None = None,
) -> SimResult:
    """Run a trace batch as sharded sim jobs on an engine and merge.

    Bit-identical to the serial :func:`repro.accel.simulator.
    simulate_many` fold for every worker count and shard size (the
    property the parity test harness locks in).
    """
    if not traces:
        return SimResult(arch=arch.name)
    shard_size = resolve_shard_size(len(traces), engine, shard_size)
    # make_sim_jobs canonicalizes the DRAM model; each shard rebuilds
    # its own instance from the config, so no extra round-trip here.
    jobs = make_sim_jobs(traces, arch, dram, shard_size)

    start = time.perf_counter()
    executed_before = engine.stats.executed
    hits_before = engine.cache.stats.hits
    results = engine.run(jobs)
    per_trace = [result for job in jobs for result in results[job]]

    SIM_TELEMETRY.append({
        "arch": arch.name,
        "traces": len(traces),
        "shards": len(jobs),
        "shard_size": shard_size,
        "wall_s": round(time.perf_counter() - start, 4),
        "cache_hits": engine.cache.stats.hits - hits_before,
        "executed": engine.stats.executed - executed_before,
    })
    return SimResult.merge(per_trace, arch=arch.name)
