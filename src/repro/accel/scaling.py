"""Replaying measured sparsity patterns at the paper's model scale.

The algorithm runs on a width-reduced synthetic VLM (hidden 192 vs the
paper's 3584; ~400 tokens vs ~6,400).  Relative sparsity is faithful,
but absolute hardware behaviour is not: a 32x32 array's fill/drain
overhead is disproportionate on tiny GEMMs, and weight traffic is a
different fraction of total bytes.  The paper's own methodology
separates the two concerns — accuracy on the GPU, cycles from traces —
so for the hardware experiments (Figs. 9, 12) we *rescale* each trace's
GEMM dimensions to the 7B geometry while preserving every measured
sparsity ratio (unique-vector fractions, retained-token fractions,
metadata proportions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.trace import GemmTrace, ModelTrace, SecEvent

PAPER_HIDDEN = 3584
"""Qwen2-7B hidden size (the paper's evaluation backbones)."""

PAPER_VISUAL_TOKENS = 6272
"""Average visual tokens per sample (Sec. II-A, VideoMME)."""

PAPER_TEXT_TOKENS = 109
"""Average text tokens per sample (Sec. II-A)."""

_DIM_KIND = {
    # (m, k, n) of each GEMM site: "t" scales with tokens, "h" with
    # hidden width (FFN width scales with hidden too).
    "qkv": ("t", "h", "h"),
    "qk": ("t", "h", "t"),
    "pv": ("t", "t", "h"),
    "o_proj": ("t", "h", "h"),
    "fc1": ("t", "h", "h"),
    "fc2": ("t", "h", "h"),
}


@dataclass(frozen=True)
class ScaleFactors:
    """Multipliers taking a synthetic trace to paper-scale geometry."""

    token: float
    hidden: float

    @classmethod
    def for_sample(
        cls,
        sample_tokens: int,
        model_hidden: int,
        target_tokens: int | None = None,
    ) -> "ScaleFactors":
        if target_tokens is None:
            target_tokens = PAPER_VISUAL_TOKENS + PAPER_TEXT_TOKENS
        return cls(
            token=target_tokens / max(sample_tokens, 1),
            hidden=PAPER_HIDDEN / max(model_hidden, 1),
        )


def _scale_dim(value: int, kind: str, factors: ScaleFactors) -> int:
    factor = factors.token if kind == "t" else factors.hidden
    return max(1, int(round(value * factor)))


def scale_gemm(gemm: GemmTrace, factors: ScaleFactors) -> GemmTrace:
    """Scale one GEMM record, preserving its sparsity ratios."""
    kinds = _DIM_KIND.get(gemm.name, ("t", "h", "h"))
    m = _scale_dim(gemm.m, kinds[0], factors)
    k = _scale_dim(gemm.k, kinds[1], factors)
    n = _scale_dim(gemm.n, kinds[2], factors)

    input_unique = gemm.input_unique
    scatter_ops = gemm.scatter_ops
    input_map_bits = gemm.input_map_bits
    output_rows = gemm.output_compressed_rows
    output_map_bits = gemm.output_map_bits
    if input_unique is not None:
        # Vector count scales with rows x k-blocks; the unique fraction
        # is the measured quantity and is preserved exactly.
        old_vectors = gemm.m * gemm.k_blocks
        new_k_blocks = max(1, -(-k // gemm.vector_size))
        new_vectors = m * new_k_blocks
        fraction = input_unique / max(old_vectors, 1)
        input_unique = max(1, int(round(fraction * new_vectors)))
        input_map_bits = int(round(
            input_map_bits * new_vectors / max(old_vectors, 1)
        ))
        scatter_ops = m * n * new_k_blocks
    if output_rows is not None:
        old_vectors = gemm.m * gemm.k_blocks
        out_fraction = output_rows / max(old_vectors, 1)
        new_out_blocks = max(1, -(-n // gemm.vector_size))
        output_rows = max(1, int(round(out_fraction * m * new_out_blocks)))
        output_map_bits = int(round(
            output_map_bits * (m * new_out_blocks) / max(old_vectors, 1)
        ))
    return GemmTrace(
        name=gemm.name,
        layer=gemm.layer,
        m=m,
        k=k,
        n=n,
        input_unique=input_unique,
        vector_size=gemm.vector_size,
        input_map_bits=input_map_bits,
        output_compressed_rows=output_rows,
        output_map_bits=output_map_bits,
        scatter_ops=scatter_ops,
    )


def scale_trace(trace: ModelTrace, factors: ScaleFactors) -> ModelTrace:
    """Scale a whole per-sample trace to paper geometry."""
    scaled = ModelTrace(
        gemms=[scale_gemm(g, factors) for g in trace.gemms],
        tile_lengths=list(trace.tile_lengths),
        tokens_per_layer=[
            max(1, int(round(t * factors.token)))
            for t in trace.tokens_per_layer
        ],
        metadata_bits=int(round(
            trace.metadata_bits * factors.token * factors.hidden
        )),
        preprocess_macs=int(round(
            trace.preprocess_macs * factors.token * factors.hidden
        )),
        sec_events=[
            SecEvent(
                layer=e.layer,
                candidates=max(1, int(round(e.candidates * factors.token))),
                selected=max(1, int(round(e.selected * factors.token))),
            )
            for e in trace.sec_events
        ],
        sic_comparisons=int(round(
            trace.sic_comparisons * factors.token * factors.hidden
        )),
        initial_tokens=max(1, int(round(
            trace.initial_tokens * factors.token
        ))),
    )
    return scaled


PAPER_IMAGE_TOKENS = 729
"""Single-image visual tokens of the paper's image-VLM runs
(Table V; one 27x27 patch grid)."""


def scale_to_paper(
    trace: ModelTrace,
    model_hidden: int,
    target_tokens: int | None = None,
) -> ModelTrace:
    """Convenience: scale one per-sample trace to the 7B geometry.

    Args:
        trace: Per-sample trace (NOT a merged multi-sample trace; the
            restoration accounting needs per-sample token counts).
        model_hidden: Hidden size the trace was generated at.
        target_tokens: Paper-scale token count; defaults to the video
            workload (6272 visual + 109 text).
    """
    factors = ScaleFactors.for_sample(
        trace.initial_tokens, model_hidden, target_tokens
    )
    return scale_trace(trace, factors)
