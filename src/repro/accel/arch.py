"""Accelerator architecture configurations (Table III).

All four designs share frequency, technology node, PE count, operand
width and DRAM bandwidth; they differ in array aspect ratio, buffer
provisioning, compression strategy and attached special units —
exactly the controlled comparison of the paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchConfig:
    """One accelerator configuration.

    Attributes:
        name: Display name.
        pe_rows: Systolic-array height (dot-product length per pass).
        pe_cols: Systolic-array width (output vectors per pass).
        frequency_hz: Core clock.
        input_buffer_kb: Input activation SRAM.
        weight_buffer_kb: Weight SRAM.
        output_buffer_kb: Output/accumulation SRAM.
        extra_buffer_kb: Method-specific SRAM (Focus layouter window,
            CMC codec staging, AdapTiV merge buffers).
        dram_bandwidth_gbs: Off-chip bandwidth.
        compression: Activation write-back strategy — ``"none"``
            (dense), ``"focus"`` (tile-local compressed + metadata),
            ``"cmc"`` (condensed reads, restored full writes, codec
            round-trip at entry), ``"adaptiv"`` (reduced token set, but
            full uncompressed transfer before the merge unit).
        has_sec: Semantic concentrator present.
        has_sic: Similarity concentrator present.
        has_codec: External video-codec block present (CMC).
        has_merge_unit: Token-merge unit present (AdapTiV).
        scatter_accumulators: Parallel FP32 accumulators in the
            similarity scatter (Fig. 10(d) sweep; 64 is the knee).
    """

    name: str
    pe_rows: int = 32
    pe_cols: int = 32
    frequency_hz: float = 500e6
    input_buffer_kb: float = 128.0
    weight_buffer_kb: float = 78.0
    output_buffer_kb: float = 512.0
    extra_buffer_kb: float = 0.0
    dram_bandwidth_gbs: float = 64.0
    compression: str = "none"
    has_sec: bool = False
    has_sic: bool = False
    has_codec: bool = False
    has_merge_unit: bool = False
    scatter_accumulators: int = 64

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE array dimensions must be positive")
        if self.compression not in ("none", "focus", "cmc", "adaptiv"):
            raise ValueError(f"unknown compression {self.compression!r}")

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def buffer_kb(self) -> float:
        """Total on-chip SRAM."""
        return (
            self.input_buffer_kb
            + self.weight_buffer_kb
            + self.output_buffer_kb
            + self.extra_buffer_kb
        )


SYSTOLIC = ArchConfig(name="systolic-array", extra_buffer_kb=16.0)
"""Vanilla 32x32 weight-stationary array, 734 KB SRAM (misc staging in
place of the layouter window), no compression."""

ADAPTIV = ArchConfig(
    name="adaptiv",
    pe_rows=16,
    pe_cols=64,
    extra_buffer_kb=50.0,
    compression="adaptiv",
    has_merge_unit=True,
)
"""AdapTiV: 16x64 array, 768 KB SRAM, sign-similarity merge unit."""

CMC = ArchConfig(
    name="cmc",
    extra_buffer_kb=189.0,
    compression="cmc",
    has_codec=True,
)
"""CMC: 32x32 array plus an external codec block and 907 KB SRAM
(large staging buffers for the codec's uncompressed working set)."""

FOCUS = ArchConfig(
    name="focus",
    extra_buffer_kb=16.0,
    compression="focus",
    has_sec=True,
    has_sic=True,
)
"""Focus: 32x32 array, 734 KB SRAM (16 KB layouter window), SEC + SIC."""

ARCH_CONFIGS: dict[str, ArchConfig] = {
    "systolic-array": SYSTOLIC,
    "adaptiv": ADAPTIV,
    "cmc": CMC,
    "focus": FOCUS,
}

METHOD_TO_ARCH: dict[str, ArchConfig] = {
    "dense": SYSTOLIC,
    "adaptiv": ADAPTIV,
    "cmc": CMC,
    "focus": FOCUS,
    "focus-sec": FOCUS,
    "focus-sic": FOCUS,
    "focus-token": FOCUS,
}
"""Which hardware runs which method's trace."""
