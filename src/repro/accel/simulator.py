"""Trace-driven accelerator simulator (the paper's SCALEsim-v2 +
DRAMsim3 methodology, Sec. VII-A).

For every GEMM in a model trace the simulator computes array cycles
(weight-stationary model) and DRAM transfer time, overlaps them
(double-buffered tiles), applies the method-specific memory behaviour
of each architecture, and accumulates the Fig. 9(b) energy breakdown:

* **systolic-array** — dense everything.
* **adaptiv** — tokens were merged by the on-chip unit, but the full
  uncompressed token set must be transferred in first; afterwards all
  traffic is at the reduced token count.
* **cmc** — the codec condenses tokens *off-chip*: the full vision
  output is written to DRAM, read by the codec, and written back
  condensed; per layer, reads are condensed but write-backs are
  *restored to full width* (the codec's reconstruction contract), which
  is why CMC keeps ~79% of dense DRAM traffic at 46% sparsity.
* **focus** — reads and writes are tile-local compressed (payload +
  similarity-map/offset metadata, already in the trace records); the
  Focus Unit's non-overlapped cycles and energy are charged explicitly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.accel.arch import ArchConfig
from repro.accel.dram import DramModel
from repro.engine.sharding import plan_shards  # noqa: F401  (re-export)

if TYPE_CHECKING:
    from repro.engine.scheduler import ExperimentEngine
from repro.accel.energy import (
    E_MAC_FP16_PJ,
    E_SFU_OP_PJ,
    E_SRAM_PJ_PER_BYTE,
    EnergyBreakdown,
)
from repro.accel.focus_unit import focus_unit_activity
from repro.accel.systolic import concentrated_gemm_cycles
from repro.accel.trace import BYTES_PER_ELEMENT, GemmTrace, ModelTrace

TOKEN_DIM_SITES = ("qkv", "o_proj", "fc1", "fc2", "pv")
"""GEMMs whose output height is the token count (restorable by CMC)."""


@dataclass
class SimResult:
    """Outcome of simulating one or more traces on one architecture.

    Attributes:
        arch: Architecture name.
        cycles: Total latency in core cycles.
        compute_cycles: Array-busy cycles (before overlap).
        dram_cycles: DRAM-transfer cycles (before overlap).
        macs: MACs executed on the array.
        dram_bytes: Total off-chip traffic.
        activation_dram_bytes: Off-chip traffic excluding weights (the
            quantity Fig. 12(a) compares, since weights are identical
            across methods).
        sram_bytes: Total on-chip buffer traffic.
        energy: Energy breakdown (core / buffer / DRAM).
        samples: Number of forward passes folded in.
    """

    arch: str
    cycles: int = 0
    compute_cycles: int = 0
    dram_cycles: int = 0
    macs: int = 0
    dram_bytes: int = 0
    activation_dram_bytes: int = 0
    sram_bytes: int = 0
    energy: EnergyBreakdown = field(
        default_factory=lambda: EnergyBreakdown(0.0, 0.0, 0.0)
    )
    samples: int = 0

    def latency_s(self, frequency_hz: float = 500e6) -> float:
        return self.cycles / frequency_hz

    def utilization(self, num_pes: int) -> float:
        """Average useful-MAC fraction of array capacity."""
        if self.compute_cycles == 0:
            return 0.0
        return self.macs / (self.compute_cycles * num_pes)

    def power_w(self, frequency_hz: float = 500e6) -> float:
        """Average total power over the run."""
        latency = self.latency_s(frequency_hz)
        return self.energy.total_j / latency if latency > 0 else 0.0

    def on_chip_power_w(self, frequency_hz: float = 500e6) -> float:
        """Average on-chip (core + buffer) power."""
        latency = self.latency_s(frequency_hz)
        on_chip = self.energy.core_j + self.energy.buffer_j
        return on_chip / latency if latency > 0 else 0.0

    def accumulate(self, other: "SimResult") -> None:
        """Fold another simulated run into this one."""
        if other.arch != self.arch:
            raise ValueError("cannot accumulate across architectures")
        self.cycles += other.cycles
        self.compute_cycles += other.compute_cycles
        self.dram_cycles += other.dram_cycles
        self.macs += other.macs
        self.dram_bytes += other.dram_bytes
        self.activation_dram_bytes += other.activation_dram_bytes
        self.sram_bytes += other.sram_bytes
        self.energy = EnergyBreakdown(
            core_j=self.energy.core_j + other.energy.core_j,
            buffer_j=self.energy.buffer_j + other.energy.buffer_j,
            dram_j=self.energy.dram_j + other.energy.dram_j,
        )
        self.samples += other.samples

    @staticmethod
    def merge(
        results: Sequence["SimResult"], arch: str | None = None
    ) -> "SimResult":
        """Fold a sequence of results into one (associative reduce).

        Folding starts from a zero-valued identity and accumulates each
        result in sequence order, so merging per-trace results in trace
        order reproduces the serial :func:`simulate_many` fold bit for
        bit (``0.0 + x == x`` exactly in IEEE arithmetic).  Integer
        fields merge exactly under any grouping; the float energy terms
        are associative only up to rounding, which is why the sharded
        path always re-folds *per-trace* results in global order rather
        than merging per-shard partial sums.

        Args:
            results: Results to fold; all must share one architecture.
            arch: Architecture name for the empty-sequence identity
                (required when ``results`` is empty, ignored otherwise
                except as a consistency check).
        """
        results = list(results)
        if not results:
            if arch is None:
                raise ValueError(
                    "merging zero results needs an explicit arch for "
                    "the identity element"
                )
            return SimResult(arch=arch)
        total = SimResult(arch=arch if arch is not None else results[0].arch)
        for result in results:
            total.accumulate(result)
        return total


def dram_config(dram: DramModel) -> tuple[tuple[str, float], ...]:
    """A :class:`DramModel`'s constructor arguments as sorted pairs.

    This is the canonical wire/cache form of a DRAM configuration: sim
    shards rebuild their own :class:`DramModel` from it, so a shared
    instance that was mutated in place (``object.__setattr__`` defeats
    ``frozen=True``) or is otherwise stateful can never make sharded
    and serial runs drift apart.

    Raises:
        TypeError: If ``dram`` is not exactly a :class:`DramModel` — a
            subclass may override behaviour that a worker-side rebuild
            from plain field values would silently discard.
    """
    if type(dram) is not DramModel:
        raise TypeError(
            f"expected a plain DramModel, got {type(dram).__name__}; "
            "sharded workers rebuild the DRAM model from its field "
            "values, so subclasses cannot be simulated faithfully"
        )
    return tuple(sorted(
        (f.name, getattr(dram, f.name))
        for f in dataclasses.fields(DramModel)
    ))


def canonical_dram(dram: DramModel | None, arch: ArchConfig) -> DramModel:
    """Normalize an optional DRAM model to a fresh canonical instance.

    ``None`` derives the bandwidth from the architecture (the historical
    default); anything else is round-tripped through
    :func:`dram_config`, so every simulation path — serial or sharded,
    parent or worker process — runs on an instance constructed the same
    way from the same field values.
    """
    if dram is None:
        dram = DramModel(bandwidth_gbs=arch.dram_bandwidth_gbs)
    return DramModel(**dict(dram_config(dram)))


def _gemm_dram_bytes(
    gemm: GemmTrace, arch: ArchConfig, initial_tokens: int
) -> tuple[int, int]:
    """Off-chip bytes of one GEMM under the architecture's policy.

    Returns:
        ``(weight_bytes, activation_bytes)``.  Attention score/prob
        matrices never leave the chip (softmax streams through the SFU
        straight into the PV GEMM), so ``qk`` writes and ``pv`` reads
        of the probability matrix are excluded; ``pv``'s "weight" side
        is the V matrix, which *is* an activation.
    """
    if gemm.name == "qk":
        # K streams as the stationary side, Q as the moving side; the
        # score matrix stays on-chip.
        return 0, gemm.weight_bytes + gemm.input_bytes
    if gemm.name == "pv":
        # Probabilities arrive from the on-chip SFU; V is re-read.
        return 0, gemm.weight_bytes

    weights = gemm.weight_bytes
    if arch.compression == "cmc" and gemm.name in TOKEN_DIM_SITES:
        read = gemm.m * gemm.k * BYTES_PER_ELEMENT
        write = max(initial_tokens, gemm.m) * gemm.n * BYTES_PER_ELEMENT
        return weights, read + write
    # Focus traces carry compressed sizes in their records; dense and
    # AdapTiV traces have no annotations so these are plain products.
    return weights, gemm.input_bytes + gemm.output_bytes


def _gemm_sram_bytes(gemm: GemmTrace, arch: ArchConfig) -> int:
    """On-chip buffer traffic of one GEMM (weight-stationary reuse)."""
    n_tiles = -(-gemm.n // arch.pe_cols)
    input_traffic = gemm.input_bytes * n_tiles
    weight_traffic = gemm.weight_bytes
    output_traffic = 2 * gemm.m * gemm.n * BYTES_PER_ELEMENT
    return input_traffic + weight_traffic + output_traffic


def _sfu_ops(trace: ModelTrace) -> int:
    """Softmax/RMSNorm special-function ops of a trace."""
    ops = 0
    for gemm in trace.gemms:
        if gemm.name == "qk":
            ops += gemm.m * gemm.n  # softmax over attention scores
        elif gemm.name in ("qkv", "fc1"):
            ops += gemm.m * gemm.k  # RMSNorm ahead of the projection
    return ops


def simulate(trace: ModelTrace, arch: ArchConfig,
             dram: DramModel | None = None) -> SimResult:
    """Simulate one forward-pass trace on an architecture.

    Per-GEMM latency is ``max(array cycles, DRAM cycles)`` — tiles are
    double-buffered so transfer and compute overlap; the longer one
    wins (this is also how SCALEsim composes its memory model).
    """
    dram = canonical_dram(dram, arch)
    result = SimResult(arch=arch.name, samples=1)

    compute_total = 0
    dram_total_bytes = 0
    activation_bytes_total = 0
    sram_total_bytes = 0
    overlapped_cycles = 0
    for gemm in trace.gemms:
        cycles = concentrated_gemm_cycles(gemm, arch.pe_rows, arch.pe_cols)
        weight_bytes, act_bytes = _gemm_dram_bytes(
            gemm, arch, trace.initial_tokens
        )
        gemm_bytes = weight_bytes + act_bytes
        transfer = dram.transfer_cycles(gemm_bytes, arch.frequency_hz)
        compute_total += cycles
        dram_total_bytes += gemm_bytes
        activation_bytes_total += act_bytes
        sram_total_bytes += _gemm_sram_bytes(gemm, arch)
        overlapped_cycles += max(cycles, transfer)

    preprocess_cycles = 0
    entry_bytes = 0
    hidden = trace.gemms[0].k if trace.gemms else 0
    if arch.compression == "cmc":
        # Codec round-trip: full vision output to DRAM, codec read,
        # condensed write-back.
        entry_bytes = 3 * trace.initial_tokens * hidden * BYTES_PER_ELEMENT
        preprocess_cycles = dram.transfer_cycles(entry_bytes,
                                                 arch.frequency_hz)
    elif arch.compression == "adaptiv":
        # Uncompressed tokens must be transferred in before merging.
        entry_bytes = 2 * trace.initial_tokens * hidden * BYTES_PER_ELEMENT
        preprocess_cycles = dram.transfer_cycles(entry_bytes,
                                                 arch.frequency_hz)
    dram_total_bytes += entry_bytes
    activation_bytes_total += entry_bytes

    exposed_unit_cycles = 0
    unit_energy = 0.0
    if arch.compression == "focus":
        activity = focus_unit_activity(
            trace,
            rows=arch.pe_rows,
            cols=arch.pe_cols,
            accumulators=arch.scatter_accumulators,
            compute_cycles=compute_total,
        )
        exposed_unit_cycles = activity.exposed_cycles
        unit_energy = activity.energy_j

    sfu_ops = _sfu_ops(trace)
    preprocess_energy = trace.preprocess_macs * E_MAC_FP16_PJ * 1e-12

    result.compute_cycles = compute_total
    result.dram_cycles = dram.transfer_cycles(dram_total_bytes,
                                              arch.frequency_hz)
    result.cycles = overlapped_cycles + preprocess_cycles + exposed_unit_cycles
    result.macs = trace.total_macs
    result.dram_bytes = dram_total_bytes
    result.activation_dram_bytes = activation_bytes_total
    result.sram_bytes = sram_total_bytes
    runtime_s = result.cycles / arch.frequency_hz
    result.energy = EnergyBreakdown(
        core_j=(
            trace.total_macs * E_MAC_FP16_PJ
            + sfu_ops * E_SFU_OP_PJ
        ) * 1e-12 + unit_energy + preprocess_energy,
        buffer_j=sram_total_bytes * E_SRAM_PJ_PER_BYTE * 1e-12,
        dram_j=dram.energy_j(dram_total_bytes, runtime_s),
    )
    return result


def simulate_many(
    traces: list[ModelTrace], arch: ArchConfig,
    dram: DramModel | None = None,
    *,
    engine: "ExperimentEngine | None" = None,
    shard_size: int | None = None,
) -> SimResult:
    """Simulate a list of per-sample traces and fold the results.

    Args:
        traces: Per-sample traces.
        arch: Architecture to simulate.
        dram: DRAM model; normalized through :func:`canonical_dram` so
            serial and sharded execution see identical instances.
        engine: Optional experiment engine.  When given, the traces are
            split into per-shard ``sim`` jobs (see
            :mod:`repro.accel.sim_jobs`) that dedupe, cache, and run on
            the engine's worker pool; the per-trace results are then
            re-folded in trace order, making the output bit-identical
            to the serial path for every worker count and shard size.
        shard_size: Traces per shard on the engine path; defaults to
            one shard per engine worker (or ``engine.sim_shards``
            shards when set).
    """
    dram = canonical_dram(dram, arch)
    if engine is not None and traces:
        from repro.accel.sim_jobs import simulate_many_sharded

        return simulate_many_sharded(
            traces, arch, dram, engine, shard_size=shard_size
        )
    if not traces:
        return SimResult(arch=arch.name)
    total = simulate(traces[0], arch, dram)
    for trace in traces[1:]:
        total.accumulate(simulate(trace, arch, dram))
    return total
