"""Re-stream stored runs: ``repro replay`` and ``repro runs``.

``repro replay <run-id>`` emits a historical run's event stream
through the same codec and framing as the live server, byte-identical
to what a subscriber of the original run received:

* ``--format sse`` (default) reproduces the body of
  ``GET /runs/{id}/events`` — the ``retry:`` preamble followed by one
  SSE frame per event;
* ``--format jsonl`` reproduces ``GET /runs/{id}/events?format=jsonl``
  — one canonical JSON line per event.

Byte-identity is by construction, not re-encoding: the store holds
each event's canonical JSON line verbatim (``id`` included), and
framing concatenates stored columns exactly as
:func:`repro.serve.events.format_sse` did at record time.
``--last-event-id N`` resumes mid-replay precisely like the live
header: the output is the recorded stream's suffix after id ``N``.

``repro runs`` lists stored runs (or inspects one), including status,
event counts, and per-report sha256 digests.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Iterable, Iterator

from repro.serve import events as codec
from repro.store.runstore import DEFAULT_STORE_PATH, RunStore


def frame_raw(event_id: int, name: str, payload: str, jsonl: bool) -> str:
    """Frame one stored ``(id, event, payload)`` row as the live
    server framed it — without re-encoding the payload."""
    if jsonl:
        return payload + "\n"
    return f"id: {event_id}\nevent: {name}\ndata: {payload}\n\n"


def iter_frames(
    store: RunStore,
    run_id: str,
    jsonl: bool = False,
    last_event_id: int = 0,
    chunk: int = 1024,
) -> Iterator[str]:
    """Yield a stored run's stream exactly as the live server sent it.

    The first yield of an SSE replay is the ``retry:`` preamble (the
    live endpoint writes it before any frame); every subsequent yield
    is one framed event.  ``last_event_id`` skips the recorded prefix,
    matching a live ``Last-Event-ID`` resume.
    """
    if not jsonl:
        yield codec.SSE_RETRY_PREAMBLE
    for event_id, name, payload in store.iter_raw_events(
        run_id, last_event_id, chunk=chunk
    ):
        yield frame_raw(event_id, name, payload, jsonl)


def replay_run(
    store: RunStore,
    run_id: str,
    jsonl: bool = False,
    last_event_id: int = 0,
) -> str:
    """The full replayed stream as one string (tests, small runs)."""
    return "".join(
        iter_frames(store, run_id, jsonl=jsonl, last_event_id=last_event_id)
    )


def _open_store(path: str) -> RunStore:
    import os

    if not os.path.exists(path):
        raise SystemExit(
            f"repro replay: no run store at {path!r} "
            "(record one with 'repro serve --store-path')"
        )
    return RunStore(path)


def build_replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli replay",
        description="Re-stream a stored run byte-identically to its "
                    "recorded live SSE/JSON-lines stream.",
    )
    parser.add_argument("run_id", help="stored run id (see 'repro runs')")
    parser.add_argument(
        "--store-path", default=DEFAULT_STORE_PATH,
        help=f"run-store database (default: {DEFAULT_STORE_PATH})",
    )
    parser.add_argument(
        "--format", choices=("sse", "jsonl"), default="sse",
        help="framing: 'sse' matches GET /runs/{id}/events, 'jsonl' "
             "matches ?format=jsonl (default: sse)",
    )
    parser.add_argument(
        "--last-event-id", type=int, default=0, metavar="N",
        help="resume mid-replay: emit only events with id > N "
             "(default: 0, the full stream)",
    )
    parser.add_argument(
        "--output", default="-", metavar="PATH",
        help="write the stream to PATH instead of stdout",
    )
    return parser


def replay_main(argv: Iterable[str] | None = None) -> int:
    args = build_replay_parser().parse_args(
        list(argv) if argv is not None else None
    )
    with _open_store(args.store_path) as store:
        if store.get_run(args.run_id) is None:
            known = [run["run_id"] for run in store.list_runs(limit=10)]
            print(
                f"repro replay: no run {args.run_id!r} in "
                f"{args.store_path} (recent: {known})", file=sys.stderr,
            )
            return 2
        out = (
            sys.stdout if args.output == "-"
            else open(args.output, "w", encoding="utf-8", newline="")
        )
        try:
            for piece in iter_frames(
                store, args.run_id,
                jsonl=args.format == "jsonl",
                last_event_id=max(0, args.last_event_id),
            ):
                out.write(piece)
            out.flush()
        except BrokenPipeError:
            # Downstream (e.g. ``| head``) closed the pipe.  Point the
            # stdout fd at devnull so the interpreter's exit-time flush
            # of the dead pipe can't error, and exit quietly like cat.
            if out is sys.stdout:
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        finally:
            if out is not sys.stdout:
                out.close()
    return 0


def _format_run_row(run: dict[str, Any]) -> str:
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(run["created_at"])
    )
    elapsed = (
        f"{run['elapsed_s']:.1f}s" if run["elapsed_s"] is not None else "-"
    )
    return (
        f"{run['run_id']:<18} {run['status']:<9} {created}  "
        f"{run['last_event_id']:>6} ev  {elapsed:>8}  "
        f"{','.join(run['experiments'])}"
    )


def build_runs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli runs",
        description="List or inspect runs recorded in the run store.",
    )
    parser.add_argument(
        "run_id", nargs="?", default=None,
        help="inspect one run (default: list recent runs)",
    )
    parser.add_argument(
        "--store-path", default=DEFAULT_STORE_PATH,
        help=f"run-store database (default: {DEFAULT_STORE_PATH})",
    )
    parser.add_argument(
        "--limit", type=int, default=20,
        help="runs listed, newest first (default: 20)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the table",
    )
    parser.add_argument(
        "--latest", action="store_true",
        help="print only the newest run id (for scripts)",
    )
    return parser


def runs_main(argv: Iterable[str] | None = None) -> int:
    args = build_runs_parser().parse_args(
        list(argv) if argv is not None else None
    )
    with _open_store(args.store_path) as store:
        if args.latest:
            runs = store.list_runs(limit=1)
            if not runs:
                print("repro runs: store is empty", file=sys.stderr)
                return 1
            print(runs[0]["run_id"])
            return 0
        if args.run_id is not None:
            run = store.get_run(args.run_id)
            if run is None:
                print(
                    f"repro runs: no run {args.run_id!r} in "
                    f"{args.store_path}", file=sys.stderr,
                )
                return 2
            run["reports"] = store.report_digests(args.run_id)
            if args.json:
                print(json.dumps(run, indent=2, sort_keys=True))
            else:
                print(_format_run_row(run))
                if run["error"]:
                    print(f"  error: {run['error']}")
                for name, digest in run["reports"].items():
                    print(
                        f"  report {name}: sha256={digest['sha256']} "
                        f"({digest['chars']} chars)"
                    )
            return 0
        runs = store.list_runs(limit=args.limit)
        if args.json:
            print(json.dumps(runs, indent=2, sort_keys=True))
            return 0
        if not runs:
            print("repro runs: store is empty", file=sys.stderr)
            return 1
        print(f"{'run id':<18} {'status':<9} {'created':<19} "
              f"{'events':>9}  {'elapsed':>8}  experiments")
        for run in runs:
            print(_format_run_row(run))
    return 0
