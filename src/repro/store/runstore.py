"""SQLite-backed durable run store: runs, events, reports.

The serving layer's per-run ring buffer (:class:`repro.serve.server.
RunLog`) dies with the process; :class:`RunStore` is the durable tier
underneath it.  The server *writes through* on every emitted event, so
the store always holds the complete, id-dense event log of every run
it ever saw — the backbone for ``repro replay``, ``repro runs``,
post-restart ``Last-Event-ID`` resume, dashboards, and regression
bisection over large run populations.

Schema (one row per codec concept — see :mod:`repro.serve.events`):

``runs``
    One row per launched run: id, wall-clock ``created_at``, the
    launched ``experiments``/``params`` (JSON), terminal ``status``
    (``running`` / ``done`` / ``partial`` / ``failed`` /
    ``cancelled``), ``error``, ``elapsed_s``, structured ``failures``
    (JSON: per failed experiment, the :meth:`repro.engine.faults.
    JobFailure.as_detail` records of its lost jobs; NULL unless the
    run ended ``partial``), and the event-codec ``event_schema`` the
    run was recorded under.
``events``
    The run's stamped wire events, keyed ``(run_id, id)`` with the
    per-run dense id the server assigned at append time.  The
    ``payload`` column holds the *canonical JSON line* —
    :func:`repro.serve.events.to_json` output, ``id`` included — so a
    replayed stream is byte-identical to the recorded live one by
    construction.  ``event`` (name) and ``seq`` are denormalized for
    indexed filtering without JSON parsing.
``reports``
    One row per formatted report of a finished run, carrying the
    report text plus its sha256 digest and length — the same digests
    the terminal ``run-done`` event streams.

Durability/concurrency: WAL journal with ``synchronous=NORMAL`` (no
per-commit fsync stall on the serving hot path; a power cut can lose
the tail milliseconds, never corrupt), autocommit writes, and
``check_same_thread=False`` behind an internal lock so the asyncio
serving thread and CLI readers share one connection safely.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.serve import events as codec

STORE_SCHEMA_VERSION = 2
"""Bumped when the *store* layout changes incompatibly (independent of
the event codec's :data:`repro.serve.events.EVENT_SCHEMA_VERSION`).
v1 → v2 added the ``runs.failures`` column (partial-results runs);
v1 databases are migrated in place on open."""

DEFAULT_STORE_PATH = "repro-runs.sqlite"
"""Default database file, shared by ``serve``/``replay``/``runs``."""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    created_at   REAL NOT NULL,
    experiments  TEXT NOT NULL,
    params       TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'running',
    error        TEXT,
    elapsed_s    REAL,
    failures     TEXT,
    event_schema INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    run_id  TEXT    NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    id      INTEGER NOT NULL,
    seq     INTEGER NOT NULL,
    event   TEXT    NOT NULL,
    payload TEXT    NOT NULL,
    PRIMARY KEY (run_id, id)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS reports (
    run_id TEXT    NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    name   TEXT    NOT NULL,
    sha256 TEXT    NOT NULL,
    chars  INTEGER NOT NULL,
    text   TEXT    NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE INDEX IF NOT EXISTS runs_created_at ON runs (created_at);
"""


class StoreError(RuntimeError):
    """Raised for store-level misuse (unknown run, schema mismatch)."""


class RunStore:
    """Durable run/event/report store over one SQLite database.

    Safe for concurrent use from multiple threads of one process (an
    internal lock serializes the shared connection) and for concurrent
    *readers* in other processes (WAL mode); the serving frontend is
    the single writer.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES "
                    "('schema_version', ?)", (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) > STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path} has schema "
                    f"{row['value']}, newer than supported "
                    f"{STORE_SCHEMA_VERSION}"
                )
            elif int(row["value"]) < STORE_SCHEMA_VERSION:
                self._migrate(int(row["value"]))

    def _migrate(self, from_version: int) -> None:
        """In-place, lock-held upgrade of an older store layout.

        v1 → v2: the ``runs`` table (created before ``CREATE TABLE IF
        NOT EXISTS`` knew the column) gains ``failures``.
        """
        if from_version < 2:
            columns = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(runs)")
            }
            if "failures" not in columns:
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN failures TEXT"
                )
        self._conn.execute(
            "UPDATE store_meta SET value=? WHERE key='schema_version'",
            (str(STORE_SCHEMA_VERSION),),
        )

    # -- write path (the serving frontend) ----------------------------

    def create_run(
        self,
        run_id: str,
        experiments: list[str],
        params: Mapping[str, Any],
        created_at: float | None = None,
    ) -> None:
        """Register a freshly launched run (status ``running``)."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs (run_id, created_at, experiments, "
                "params, status, event_schema) VALUES (?, ?, ?, ?, "
                "'running', ?)",
                (
                    run_id,
                    time.time() if created_at is None else created_at,
                    json.dumps(list(experiments)),
                    codec.to_json(codec.jsonify(dict(params))),
                    codec.EVENT_SCHEMA_VERSION,
                ),
            )

    def append_event(self, run_id: str, stamped: Mapping[str, Any]) -> None:
        """Persist one server-stamped wire event (``id`` assigned).

        The canonical JSON line is stored verbatim, so replay emits
        the recorded bytes exactly.
        """
        event_id = stamped.get("id")
        if not isinstance(event_id, int):
            raise StoreError(
                f"event for run {run_id!r} has no integer 'id' "
                "(append through the serving log, which stamps ids)"
            )
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO events "
                "(run_id, id, seq, event, payload) VALUES (?, ?, ?, ?, ?)",
                (
                    run_id,
                    event_id,
                    int(stamped.get("seq", 0)),
                    str(stamped.get("event", "")),
                    codec.to_json(stamped),
                ),
            )

    def finish_run(
        self,
        run_id: str,
        status: str,
        elapsed_s: float,
        error: str | None = None,
        reports: Mapping[str, str] | None = None,
        failures: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a run's terminal status, reports, and — for
        ``partial`` runs — its structured per-experiment failures."""
        if status not in ("done", "partial", "failed", "cancelled"):
            raise StoreError(f"not a terminal status: {status!r}")
        with self._lock:
            cur = self._conn.execute(
                "UPDATE runs SET status=?, error=?, elapsed_s=?, "
                "failures=? WHERE run_id=?",
                (
                    status, error, float(elapsed_s),
                    (
                        codec.to_json(codec.jsonify(dict(failures)))
                        if failures else None
                    ),
                    run_id,
                ),
            )
            if cur.rowcount == 0:
                raise StoreError(f"no such run {run_id!r}")
            for name, text in (reports or {}).items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO reports "
                    "(run_id, name, sha256, chars, text) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (run_id, name, codec.report_digest(text),
                     len(text), text),
                )

    def recover_interrupted(self) -> list[str]:
        """Mark runs still ``running`` as failed (server restarted).

        Called once at server startup: any run that was live when the
        previous process died can never finish, but its recorded
        event prefix stays replayable.  Returns the affected run ids.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id FROM runs WHERE status='running'"
            ).fetchall()
            ids = [row["run_id"] for row in rows]
            if ids:
                self._conn.execute(
                    "UPDATE runs SET status='failed', "
                    "error='interrupted: server restarted' "
                    "WHERE status='running'"
                )
        return ids

    # -- read path (resume, replay, inspection) -----------------------

    def get_run(self, run_id: str) -> dict[str, Any] | None:
        """One run's row as a dict (with ``last_event_id``), or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id=?", (run_id,)
            ).fetchone()
            if row is None:
                return None
            return self._describe(row)

    def list_runs(self, limit: int = 50) -> list[dict[str, Any]]:
        """Most recent runs, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs ORDER BY created_at DESC, run_id "
                "LIMIT ?", (max(0, limit),),
            ).fetchall()
            return [self._describe(row) for row in rows]

    def _describe(self, row: sqlite3.Row) -> dict[str, Any]:
        return {
            "run_id": row["run_id"],
            "created_at": row["created_at"],
            "experiments": json.loads(row["experiments"]),
            "params": json.loads(row["params"]),
            "status": row["status"],
            "error": row["error"],
            "elapsed_s": row["elapsed_s"],
            "failures": (
                json.loads(row["failures"]) if row["failures"] else None
            ),
            "event_schema": row["event_schema"],
            "last_event_id": self._last_id_locked(row["run_id"]),
        }

    def last_event_id(self, run_id: str) -> int:
        """Highest stored event id for a run (0 when none)."""
        with self._lock:
            return self._last_id_locked(run_id)

    def _last_id_locked(self, run_id: str) -> int:
        row = self._conn.execute(
            "SELECT MAX(id) AS last FROM events WHERE run_id=?",
            (run_id,),
        ).fetchone()
        return int(row["last"] or 0)

    def events_since(
        self, run_id: str, last_id: int = 0, limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Stored events with id > ``last_id``, ascending, decoded."""
        return [
            codec.parse_event(payload)
            for _id, _name, payload in self.raw_events_since(
                run_id, last_id, limit
            )
        ]

    def raw_events_since(
        self, run_id: str, last_id: int = 0, limit: int | None = None,
    ) -> list[tuple[int, str, str]]:
        """Like :meth:`events_since` but as ``(id, event, payload)``
        rows with the payload still canonical JSON text — the
        zero-copy path replay frames from."""
        sql = (
            "SELECT id, event, payload FROM events "
            "WHERE run_id=? AND id>? ORDER BY id"
        )
        args: tuple[Any, ...] = (run_id, last_id)
        if limit is not None:
            sql += " LIMIT ?"
            args += (max(0, limit),)
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [(row["id"], row["event"], row["payload"]) for row in rows]

    def iter_raw_events(
        self, run_id: str, last_id: int = 0, chunk: int = 1024,
    ) -> Iterator[tuple[int, str, str]]:
        """Stream ``(id, event, payload)`` rows in bounded chunks."""
        while True:
            rows = self.raw_events_since(run_id, last_id, limit=chunk)
            if not rows:
                return
            yield from rows
            last_id = rows[-1][0]

    def reports(self, run_id: str) -> dict[str, str]:
        """A finished run's formatted reports keyed by experiment."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, text FROM reports WHERE run_id=? "
                "ORDER BY name", (run_id,),
            ).fetchall()
        return {row["name"]: row["text"] for row in rows}

    def report_digests(self, run_id: str) -> dict[str, dict[str, Any]]:
        """``{name: {sha256, chars}}`` — as carried by ``run-done``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, sha256, chars FROM reports WHERE run_id=? "
                "ORDER BY name", (run_id,),
            ).fetchall()
        return {
            row["name"]: {"sha256": row["sha256"], "chars": row["chars"]}
            for row in rows
        }

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.path)!r})"
