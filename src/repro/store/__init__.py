"""Durable run store: SQLite-backed event/report persistence + replay.

See ``src/repro/engine/ARCHITECTURE.md`` ("Run store & replay") for
the design note.  :class:`RunStore` is the write-through tier under
the serving layer's ring buffer; :mod:`repro.store.replay` re-streams
stored runs byte-identically to the recorded live stream.
"""

from repro.store.replay import (
    frame_raw,
    iter_frames,
    replay_main,
    replay_run,
    runs_main,
)
from repro.store.runstore import (
    DEFAULT_STORE_PATH,
    STORE_SCHEMA_VERSION,
    RunStore,
    StoreError,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "StoreError",
    "frame_raw",
    "iter_frames",
    "replay_main",
    "replay_run",
    "runs_main",
]
