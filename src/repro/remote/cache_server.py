"""``repro cache-server``: a content-addressed HTTP object store.

The fleet's shared result namespace.  Objects are the canonical
payload bytes of :mod:`repro.remote.protocol`, keyed by job id, laid
out on disk exactly like a :class:`~repro.engine.cache.ResultCache`
disk tier (one ``{job_id}.pkl`` per object, atomic tmp-file + rename
writes) — pointing a cache server at an existing ``--cache-dir``
publishes it to the fleet as-is.

Routes:

``GET /cache/{job_id}``
    The object's bytes, with its sha256 in ``X-Repro-Sha256``; 404
    when absent.
``HEAD /cache/{job_id}``
    Existence check: 200 with the digest/size headers, 404 otherwise.
``PUT /cache/{job_id}``
    Store an object.  The body's sha256 must match the
    ``X-Repro-Sha256`` header when one is sent — a mismatch is a 400
    and nothing is stored, so a corrupted upload can never enter the
    namespace.  Idempotent: re-putting an object is a no-op rewrite.
``POST /cache/manifest``
    Batched existence check: JSON ``{"job_ids": [...]}`` in,
    ``{"present": [...]}`` out — one round-trip amortizes a whole
    schedule's worth of per-job HEADs.
``GET /healthz``
    Liveness plus object count and byte total.

Storage is size-capped like the disk cache tier (``--max-mb``):
least-recently-used objects (GET refreshes mtime) are pruned when a
write pushes the store over the cap.  The server is single-process
asyncio over the shared plumbing in :mod:`repro.serve.http`; storage
calls are cheap local file I/O performed inline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from typing import Iterable
from urllib.parse import urlsplit

from repro.remote import protocol
from repro.serve.http import (
    HttpError,
    read_request,
    respond_bytes,
    respond_json,
)

DEFAULT_PORT = 8378
MAX_OBJECT_BYTES = 1 << 30
"""Upload ceiling (1 GiB): rejects runaway bodies before buffering."""

PRUNE_HEADROOM = 0.9
"""Prune down to this fraction of the cap (mirrors the disk tier)."""


class ObjectStore:
    """Directory-backed content-addressed object storage.

    Thread-safe (one lock around the running byte total) although the
    asyncio server drives it from a single thread; tests and embedded
    uses may not.
    """

    def __init__(
        self, root: str | os.PathLike, max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._usage: int | None = None  # lazy running total
        self.evictions = 0

    def _path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.pkl"

    def get(self, job_id: str) -> bytes | None:
        path = self._path(job_id)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            os.utime(path)  # refresh the last_used stamp
        except OSError:
            pass
        return data

    def head(self, job_id: str) -> int | None:
        """The object's size, or ``None`` when absent."""
        try:
            return self._path(job_id).stat().st_size
        except OSError:
            return None

    def put(self, job_id: str, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        path = self._path(job_id)
        old_size = self.head(job_id) or 0
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        with self._lock:
            if self._usage is not None:
                self._usage += len(data) - old_size
        self.prune()

    def present(self, job_ids: Iterable[str]) -> list[str]:
        return [job_id for job_id in job_ids
                if self.head(job_id) is not None]

    def _entries(self) -> list[tuple[Path, float, int]]:
        entries = []
        for path in self.root.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def usage_bytes(self) -> int:
        with self._lock:
            if self._usage is None:
                self._usage = (
                    sum(size for _, _, size in self._entries())
                    if self.root.is_dir() else 0
                )
            return self._usage

    def object_count(self) -> int:
        return len(self._entries()) if self.root.is_dir() else 0

    def prune(self) -> int:
        """Evict LRU objects until the store fits ``max_bytes``."""
        if self.max_bytes is None or not self.root.is_dir():
            return 0
        if self.usage_bytes() <= self.max_bytes:
            return 0
        with self._lock:
            entries = self._entries()
            total = sum(size for _, _, size in entries)
            target = int(self.max_bytes * PRUNE_HEADROOM)
            evicted = 0
            for path, _, size in sorted(entries, key=lambda e: e[1]):
                if total <= target:
                    break
                path.unlink(missing_ok=True)
                total -= size
                evicted += 1
            self._usage = total
            self.evictions += evicted
            return evicted


class CacheServerApp:
    """Routing over one :class:`ObjectStore`."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store

    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(
                    reader, max_body=MAX_OBJECT_BYTES
                )
            except HttpError as exc:
                await respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            if request is None:
                return
            method, target, headers, body = request
            try:
                await self._route(method, target, headers, body, writer)
            except HttpError as exc:
                await respond_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            except Exception as exc:
                await respond_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, method: str, target: str, headers: dict[str, str],
        body: bytes, writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in urlsplit(target).path.split("/") if p]

        if parts == ["healthz"] and method == "GET":
            await respond_json(writer, 200, {
                "ok": True,
                "objects": self.store.object_count(),
                "bytes": self.store.usage_bytes(),
                "evictions": self.store.evictions,
            })
        elif len(parts) == 2 and parts[0] == "cache" \
                and parts[1] == "manifest" and method == "POST":
            await self._manifest(writer, body)
        elif len(parts) == 2 and parts[0] == "cache":
            job_id = parts[1]
            if not protocol.valid_job_id(job_id):
                raise HttpError(400, f"malformed object id {job_id!r}")
            if method == "GET":
                await self._get(writer, job_id)
            elif method == "HEAD":
                await self._head(writer, job_id)
            elif method == "PUT":
                await self._put(writer, job_id, headers, body)
            else:
                raise HttpError(405, f"no {method} on /cache/{{id}}")
        else:
            path = urlsplit(target).path
            raise HttpError(404, f"no route for {method} {path}")

    async def _get(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        data = self.store.get(job_id)
        if data is None:
            raise HttpError(404, f"no object {job_id}")
        await respond_bytes(
            writer, 200, data,
            extra_headers={
                "X-Repro-Sha256": protocol.payload_digest(data),
            },
        )

    async def _head(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        size = self.store.head(job_id)
        if size is None:
            raise HttpError(404, f"no object {job_id}")
        # A HEAD body must be empty; the size travels in its own
        # header so Content-Length can honestly frame the (absent)
        # body.
        await respond_bytes(
            writer, 200, b"",
            extra_headers={"X-Repro-Size": str(size)},
        )

    async def _put(
        self, writer: asyncio.StreamWriter, job_id: str,
        headers: dict[str, str], body: bytes,
    ) -> None:
        digest = protocol.payload_digest(body)
        claimed = headers.get(protocol.DIGEST_HEADER)
        if claimed is not None and claimed != digest:
            raise HttpError(
                400,
                f"digest mismatch for {job_id}: body hashes to "
                f"{digest}, header claims {claimed}",
            )
        self.store.put(job_id, body)
        await respond_json(
            writer, 200,
            {"stored": job_id, "bytes": len(body), "sha256": digest},
        )

    async def _manifest(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            spec = json.loads(body or b"{}")
            job_ids = spec["job_ids"]
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise HttpError(
                400, f'manifest body must be {{"job_ids": [...]}}: {exc}'
            ) from None
        if not isinstance(job_ids, list) or not all(
            isinstance(job_id, str) for job_id in job_ids
        ):
            raise HttpError(400, "'job_ids' must be a list of strings")
        bad = [job_id for job_id in job_ids
               if not protocol.valid_job_id(job_id)]
        if bad:
            raise HttpError(400, f"malformed object ids: {bad[:5]}")
        await respond_json(
            writer, 200, {"present": self.store.present(job_ids)}
        )


async def serve(
    app: CacheServerApp, host: str, port: int,
    ready: asyncio.Event | None = None,
) -> None:
    """Accept connections until cancelled; announce readiness."""
    server = await asyncio.start_server(app.handle_client, host, port)
    addr = server.sockets[0].getsockname()
    print(
        f"repro-cache-server listening on http://{addr[0]}:{addr[1]} "
        f"({app.store.object_count()} objects)",
        file=sys.stderr, flush=True,
    )
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


class BackgroundCacheServer:
    """A cache server on a daemon thread, for tests and benchmarks.

    Runs its own event loop; :meth:`stop` cancels the accept loop and
    joins the thread.  Use as a context manager::

        with BackgroundCacheServer(tmp_path) as server:
            client = RemoteCacheClient(server.url)
    """

    def __init__(
        self, root: str | os.PathLike, max_bytes: int | None = None,
    ) -> None:
        self.store = ObjectStore(root, max_bytes=max_bytes)
        self.url: str = ""
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._task: asyncio.Task | None = None

    def __enter__(self) -> "BackgroundCacheServer":
        started = threading.Event()

        def run() -> None:
            async def body() -> None:
                app = CacheServerApp(self.store)
                server = await asyncio.start_server(
                    app.handle_client, "127.0.0.1", 0
                )
                port = server.sockets[0].getsockname()[1]
                self.url = f"http://127.0.0.1:{port}"
                self._loop = asyncio.get_running_loop()
                self._task = asyncio.current_task()
                started.set()
                try:
                    async with server:
                        await server.serve_forever()
                except asyncio.CancelledError:
                    pass

            asyncio.run(body())

        self._thread = threading.Thread(
            target=run, name="repro-cache-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("cache server failed to start")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop = self._task = self._thread = None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli cache-server",
        description="Serve a content-addressed result-cache object "
                    "store over HTTP for a fleet of repro engines.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default: {DEFAULT_PORT})")
    parser.add_argument("--dir", default="repro-remote-cache",
                        metavar="DIR",
                        help="object storage directory (default: "
                             "repro-remote-cache; a ResultCache "
                             "--cache-dir works as-is)")
    parser.add_argument("--max-mb", type=float, default=None,
                        help="LRU size cap for the store, in megabytes")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    max_bytes = (
        int(args.max_mb * 1e6) if args.max_mb is not None else None
    )
    app = CacheServerApp(ObjectStore(args.dir, max_bytes=max_bytes))
    try:
        asyncio.run(serve(app, args.host, args.port))
    except KeyboardInterrupt:
        print("repro-cache-server: interrupted, shutting down",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
