"""Fleet job dispatch: rendezvous placement and the peer wire client.

A fleet is N ``repro serve`` processes plus the coordinating engine.
Placement is rendezvous (highest-random-weight) hashing on the job's
content address over the node set — every coordinator with the same
``--peers`` list computes the same owner for the same job, so repeat
sweeps land each job on the host whose disk cache already holds it,
without any shared placement state.  The local engine is itself a node
(:data:`LOCAL_NODE`), so the coordinator always takes a share instead
of idling while its peers work.

:class:`PeerClient` ships a batch to a peer's ``POST /jobs`` endpoint
(pickled :func:`~repro.remote.protocol.encode_jobs` envelope in,
per-job ``("ok", digest, payload_bytes)`` / ``("failed", detail)``
entries out) and raises :class:`~repro.engine.faults.PeerUnreachable`
on any transport-, status-, or decode-level trouble — the scheduler
then requeues the batch for local execution without penalty, exactly
like a crashed worker's cohort.  A peer that keeps failing is marked
*down* and sits out a cooldown so one dead host costs one timeout per
batch, not per job.
"""

from __future__ import annotations

import hashlib
import http.client
import threading
import time
from typing import Iterable, Sequence
from urllib.parse import urlsplit

from repro.engine.faults import PeerUnreachable
from repro.engine.jobs import EvalJob
from repro.remote import protocol

LOCAL_NODE = "local"
"""The coordinator's own name in the rendezvous node set."""

CONNECT_TIMEOUT = 5.0
"""Seconds to establish a connection / read a health probe."""

EXECUTE_TIMEOUT = 600.0
"""Seconds for a shipped batch to come back (jobs do real work)."""

DOWN_AFTER_FAILURES = 2
"""Consecutive batch failures before a peer is marked down."""

DOWN_COOLDOWN = 30.0
"""Seconds a down peer sits out before being probed again."""


def rendezvous_owner(job_id: str, nodes: Sequence[str]) -> str:
    """The node owning ``job_id`` under rendezvous hashing.

    Deterministic in the *set* of nodes (order-insensitive, ties
    broken by node name), and minimally disruptive: removing a node
    reassigns only the jobs it owned.
    """
    if not nodes:
        raise ValueError("rendezvous over an empty node set")
    return max(
        sorted(nodes),
        key=lambda node: hashlib.sha256(
            f"{node}\x00{job_id}".encode("utf-8")
        ).digest(),
    )


class PeerClient:
    """Blocking client for one ``repro serve`` peer's job endpoint."""

    def __init__(
        self,
        base_url: str,
        connect_timeout: float = CONNECT_TIMEOUT,
        execute_timeout: float = EXECUTE_TIMEOUT,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"peer URL must look like http://host:port, "
                f"got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.connect_timeout = connect_timeout
        self.execute_timeout = execute_timeout
        self._lock = threading.Lock()
        self._failures = 0
        self._down_until = 0.0

    def __repr__(self) -> str:
        return f"PeerClient({self.base_url!r})"

    # -- availability -------------------------------------------------

    def available(self) -> bool:
        """False while the peer is sitting out a failure cooldown."""
        with self._lock:
            return time.monotonic() >= self._down_until

    def note_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._down_until = 0.0

    def note_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= DOWN_AFTER_FAILURES:
                self._down_until = time.monotonic() + DOWN_COOLDOWN
                self._failures = 0

    # -- wire ---------------------------------------------------------

    def execute(self, jobs: Sequence[EvalJob]) -> dict[str, tuple]:
        """Ship a batch; return per-job result entries by job id.

        Raises :class:`PeerUnreachable` on transport failure, non-200
        status, or an undecodable envelope (and notes the failure for
        the down heuristic).  Entries are
        ``("ok", digest, payload_bytes)`` or ``("failed", detail)`` —
        payload digests are *not* verified here; the scheduler checks
        them before accepting a payload.
        """
        body = protocol.encode_jobs(jobs)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.execute_timeout
        )
        try:
            conn.request(
                "POST", "/jobs", body=body,
                headers={"Content-Type": "application/octet-stream"},
            )
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            self.note_failure()
            raise PeerUnreachable(
                f"POST {self.base_url}/jobs: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()
        if status != 200:
            self.note_failure()
            raise PeerUnreachable(
                f"POST {self.base_url}/jobs answered {status}: "
                f"{data[:200]!r}"
            )
        try:
            entries = protocol.decode_job_results(data)
        except ValueError as exc:
            self.note_failure()
            raise PeerUnreachable(
                f"POST {self.base_url}/jobs returned junk: {exc}"
            ) from exc
        self.note_success()
        return entries

    def healthy(self) -> bool:
        """Probe ``GET /healthz`` with the short connect timeout."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            return response.status == 200
        except (OSError, http.client.HTTPException):
            return False
        finally:
            conn.close()


class FleetDispatcher:
    """Rendezvous placement over a peer set (plus the local engine)."""

    def __init__(self, peer_urls: Sequence[str]) -> None:
        seen: dict[str, None] = {}
        for url in peer_urls:
            seen.setdefault(url.rstrip("/"), None)
        self.peers = [PeerClient(url) for url in seen]
        self._by_url = {peer.base_url: peer for peer in self.peers}

    @property
    def peer_urls(self) -> list[str]:
        return [peer.base_url for peer in self.peers]

    def peer(self, url: str) -> PeerClient:
        return self._by_url[url]

    def partition(
        self, jobs: Iterable[EvalJob]
    ) -> dict[str, list[EvalJob]]:
        """Split a batch by owning node.

        Keys are peer base URLs plus :data:`LOCAL_NODE`; a peer
        currently marked down is excluded from the node set for this
        batch, so its share degrades to local execution up front
        instead of timing out first.
        """
        nodes = [LOCAL_NODE] + [
            peer.base_url for peer in self.peers if peer.available()
        ]
        shares: dict[str, list[EvalJob]] = {}
        for job in jobs:
            owner = (
                rendezvous_owner(job.job_id, nodes)
                if len(nodes) > 1 else LOCAL_NODE
            )
            shares.setdefault(owner, []).append(job)
        return shares
