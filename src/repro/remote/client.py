"""Blocking HTTP client for the remote cache tier.

:class:`RemoteCacheClient` is what a :class:`~repro.engine.cache.
ResultCache` mounts as its third tier.  It is deliberately boring:
``http.client`` over one-shot connections (the servers close after
every response anyway), a lock around the failure bookkeeping, and a
cooldown that marks a flaky server *down* so a dead cache tier costs
one timeout — not one timeout per job.

Every ``get`` verifies the body's sha256 against the
``X-Repro-Sha256`` header before returning it; a mismatch counts as a
verification failure and reads as a miss.  Every ``put`` sends the
digest so the server can refuse a corrupted upload.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Iterable
from urllib.parse import urlsplit

from repro.remote import protocol

DEFAULT_TIMEOUT = 5.0
"""Per-request socket timeout (seconds)."""

DOWN_AFTER_FAILURES = 3
"""Consecutive transport failures before the server is marked down."""

DOWN_COOLDOWN = 30.0
"""Seconds to sit out before probing a down server again."""


class RemoteCacheError(Exception):
    """Transport-level failure talking to the cache server."""


class RemoteCacheVerificationError(RemoteCacheError):
    """A fetched object failed sha256 verification — never unpickled."""


class RemoteCacheClient:
    """Thread-safe client for one cache server.

    All methods are non-raising in the hot path: transport failures
    surface as ``None``/``False``/empty results and feed the
    down-marking heuristic; only a malformed ``base_url`` raises, at
    construction time, where argparse validation wants it.
    """

    def __init__(
        self, base_url: str, timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"remote cache URL must look like http://host:port, "
                f"got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self._lock = threading.Lock()
        self._failures = 0
        self._down_until = 0.0

    # -- availability -------------------------------------------------

    def available(self) -> bool:
        """False while the server is sitting out a cooldown."""
        with self._lock:
            return time.monotonic() >= self._down_until

    def _note_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._down_until = 0.0

    def _note_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= DOWN_AFTER_FAILURES:
                self._down_until = time.monotonic() + DOWN_COOLDOWN
                self._failures = 0

    # -- request core -------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; raises :class:`RemoteCacheError` on transport
        trouble (and notes it for the down heuristic)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            data = b"" if method == "HEAD" else response.read()
            out_headers = {
                name.lower(): value
                for name, value in response.getheaders()
            }
            self._note_success()
            return response.status, out_headers, data
        except (OSError, http.client.HTTPException) as exc:
            self._note_failure()
            raise RemoteCacheError(
                f"{method} {self.base_url}{path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()

    # -- cache operations ---------------------------------------------

    def get(self, job_id: str) -> bytes | None:
        """Fetch and digest-verify an object.

        ``None`` on a miss or transport failure; raises
        :class:`RemoteCacheVerificationError` when the body's sha256
        does not match the server's claim — the bytes never reach a
        ``pickle.loads``.
        """
        if not self.available():
            return None
        try:
            status, headers, data = self._request(
                "GET", f"/cache/{job_id}"
            )
        except RemoteCacheError:
            return None
        if status != 200:
            return None
        claimed = headers.get(protocol.DIGEST_HEADER)
        actual = protocol.payload_digest(data)
        if claimed is not None and claimed != actual:
            raise RemoteCacheVerificationError(
                f"digest mismatch fetching {job_id}: body hashes to "
                f"{actual}, server claims {claimed}"
            )
        return data

    def head(self, job_id: str) -> bool:
        if not self.available():
            return False
        try:
            status, _, _ = self._request("HEAD", f"/cache/{job_id}")
        except RemoteCacheError:
            return False
        return status == 200

    def put(self, job_id: str, data: bytes) -> bool:
        """Publish an object (digest attached); False on any failure."""
        if not self.available():
            return False
        try:
            status, _, _ = self._request(
                "PUT", f"/cache/{job_id}", body=data,
                headers={
                    protocol.DIGEST_HEADER:
                        protocol.payload_digest(data),
                    "Content-Type": "application/octet-stream",
                },
            )
        except RemoteCacheError:
            return False
        return status == 200

    def manifest(self, job_ids: Iterable[str]) -> set[str] | None:
        """Batched existence check; ``None`` when the server can't
        answer (callers fall back to per-job GET attempts)."""
        ids = list(job_ids)
        if not ids or not self.available():
            return None if not self.available() else set()
        body = json.dumps({"job_ids": ids}).encode("utf-8")
        try:
            status, _, data = self._request(
                "POST", "/cache/manifest", body=body,
                headers={"Content-Type": "application/json"},
            )
        except RemoteCacheError:
            return None
        if status != 200:
            return None
        try:
            present = json.loads(data)["present"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        return set(present)

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/healthz")
        except RemoteCacheError:
            return False
        return status == 200
