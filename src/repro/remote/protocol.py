"""Wire format shared by the remote cache tier and fleet dispatch.

Bit-identity across the fleet holds *by construction*: a cached object
is exactly ``pickle.dumps(payload, HIGHEST_PROTOCOL)`` — the same
canonical bytes the disk cache tier writes — stored under the job's
content address and carried with its sha256 digest.  Every fetch
recomputes the digest over the received bytes and rejects a mismatch
before unpickling, so a corrupted or tampered entry degrades to a
cache miss instead of poisoning a result.

Job batches for the ``POST /jobs`` execute endpoint are pickled too
(:func:`encode_jobs` / :func:`decode_jobs`): jobs may carry opaque
``payload`` attachments (e.g. a sim shard's traces) that have no JSON
form, and the trust model matches the process pool's — peers are our
own processes on a trusted network.  Per-job results come back as
``("ok", digest, payload_bytes)`` or ``("failed", detail)`` entries
keyed by job id (:func:`encode_job_results`), digests verified by the
coordinator before a payload is accepted.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Iterable, Mapping

from repro.engine.jobs import EvalJob

PROTOCOL_VERSION = 1
"""Bumped whenever the pickled wire envelopes change shape."""

DIGEST_HEADER = "x-repro-sha256"
"""HTTP header carrying an object's payload digest on GET/PUT."""

JOB_ID_HEX_LENGTH = 32
"""Length of a job's content address (hex chars); the cache server
rejects other ids before touching storage."""


def encode_payload(payload: Any) -> bytes:
    """A payload's canonical bytes — identical to the disk tier's."""
    return pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload` (callers verify digests first)."""
    return pickle.loads(data)


def payload_digest(data: bytes) -> str:
    """The sha256 hex digest carried alongside every stored object."""
    return hashlib.sha256(data).hexdigest()


def valid_job_id(job_id: str) -> bool:
    """Whether a string is a well-formed cache object id."""
    return (
        len(job_id) == JOB_ID_HEX_LENGTH
        and all(c in "0123456789abcdef" for c in job_id)
    )


# -- job-batch envelopes (the /jobs execute endpoint) -----------------


def encode_jobs(jobs: Iterable[EvalJob]) -> bytes:
    """Envelope a job batch for ``POST /jobs``."""
    return pickle.dumps(
        (PROTOCOL_VERSION, list(jobs)), pickle.HIGHEST_PROTOCOL
    )


def decode_jobs(body: bytes) -> list[EvalJob]:
    """Decode a ``POST /jobs`` body; raises ``ValueError`` on junk."""
    try:
        version, jobs = pickle.loads(body)
    except Exception as exc:
        raise ValueError(f"undecodable job batch: {exc}") from exc
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"job batch speaks protocol {version}, "
            f"this peer speaks {PROTOCOL_VERSION}"
        )
    if not isinstance(jobs, list) or not all(
        isinstance(job, EvalJob) for job in jobs
    ):
        raise ValueError("job batch must be a list of EvalJob")
    return jobs


def encode_job_results(entries: Mapping[str, tuple]) -> bytes:
    """Envelope per-job outcomes, keyed by job id.

    Each entry is ``("ok", digest, payload_bytes)`` for an executed
    (or cache-served) job, or ``("failed", detail)`` carrying the
    structured :meth:`~repro.engine.faults.JobFailure.as_detail`
    record for a permanently failed one.
    """
    return pickle.dumps(
        (PROTOCOL_VERSION, dict(entries)), pickle.HIGHEST_PROTOCOL
    )


def decode_job_results(body: bytes) -> dict[str, tuple]:
    """Inverse of :func:`encode_job_results`."""
    try:
        version, entries = pickle.loads(body)
    except Exception as exc:
        raise ValueError(f"undecodable job results: {exc}") from exc
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"job results speak protocol {version}, "
            f"this client speaks {PROTOCOL_VERSION}"
        )
    if not isinstance(entries, dict):
        raise ValueError("job results must map job_id -> entry")
    return entries
