"""Remote result-cache tier and fleet job dispatch.

This package turns N machines into one deduplicated engine:

* :mod:`repro.remote.protocol` — the canonical wire format: payload
  bytes are exactly the pickle bytes the disk cache tier stores,
  addressed by job id and verified by sha256 digest on every fetch.
* :mod:`repro.remote.cache_server` — ``repro cache-server``, a
  stdlib-asyncio content-addressed object store speaking
  ``GET/PUT/HEAD /cache/{job_id}`` plus a batched
  ``POST /cache/manifest`` existence check.
* :mod:`repro.remote.client` — the blocking HTTP client
  :class:`~repro.remote.client.RemoteCacheClient` the
  :class:`~repro.engine.cache.ResultCache` mounts as its third tier
  (memory → disk → remote) with asynchronous write-behind publish.
* :mod:`repro.remote.dispatch` — fleet execution: rendezvous hashing
  assigns each job to a ``repro serve`` peer (or the local engine) by
  job id, batches ship to peers' ``POST /jobs`` endpoint, and an
  unreachable peer degrades to local execution exactly like a crashed
  worker.

Everything here is stdlib-only and shares the experiment engine's
trust model: peers and cache servers exchange pickled job payloads,
so they must only ever face a trusted network — the same assumption
the process pool already makes about its workers.
"""

from repro.remote.client import RemoteCacheClient
from repro.remote.dispatch import (
    LOCAL_NODE,
    FleetDispatcher,
    PeerClient,
    rendezvous_owner,
)
from repro.remote.protocol import (
    DIGEST_HEADER,
    decode_payload,
    encode_payload,
    payload_digest,
)

__all__ = [
    "RemoteCacheClient",
    "LOCAL_NODE",
    "FleetDispatcher",
    "PeerClient",
    "rendezvous_owner",
    "DIGEST_HEADER",
    "decode_payload",
    "encode_payload",
    "payload_digest",
]
