"""Per-sample eval sharding: merge semantics, parity, and prefix reuse.

The harness locks in the tentpole guarantee: an ``eval`` cell split
into per-sample-span ``eval-shard`` jobs and re-folded by
:meth:`EvalResult.merge` is *bit-identical* to the serial
:func:`~repro.eval.runner.evaluate` cell for every worker count and
span size.  Property tests (hypothesis, seeded random results) pin
down the merge algebra — order-invariance, associativity, empty-list
identity, accumulate-vs-merge equivalence — while the parity matrix
exercises ``workers ∈ {1, 2, 4} × shard_size ∈ {1, 3, all}`` over a
focus arm, a dense baseline, and an INT8 arm, and the cache tests pin
the prefix-reuse contract: growing ``--samples`` executes only the new
suffix spans.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.trace import GemmTrace, ModelTrace
from repro.engine import EvalJob, ExperimentEngine, ResultCache
from repro.engine.sharding import plan_shards, shard_count_to_size
from repro.eval.eval_shards import (
    EVAL_SHARD_KIND,
    merge_eval_shards,
    plan_eval_shards,
    shard_span,
)
from repro.eval.metrics import EvalResult
from repro.eval.runner import ModelCache, QuantizedModelCache, evaluate

MODEL = "llava-video"
DATASET = "vqav2"  # smallest profile: keeps the parity matrix fast

ARMS = (("focus", False), ("dense", False), ("focus", True))
"""(method, quantized): a focus variant, a baseline, and an INT8 arm."""


def make_results(count: int, seed: int = 0) -> list[EvalResult]:
    """Deterministic pseudo-random span results (merge fixtures)."""
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(count):
        result = EvalResult(model="m", dataset="d", method="x")
        for _ in range(int(rng.integers(1, 4))):
            result.correct.append(bool(rng.random() < 0.7))
            result.sparsities.append(float(rng.random()))
            trace = ModelTrace(initial_tokens=int(rng.integers(8, 64)))
            trace.add(GemmTrace(
                name="qkv", layer=0, m=int(rng.integers(4, 32)),
                k=8, n=8,
            ))
            result.traces.append(trace)
            result.dense_macs.append(int(rng.integers(1, 10_000)))
        results.append(result)
    return results


def assert_merged_close(a: EvalResult, b: EvalResult) -> None:
    """Same cell and sample multiset; float means up to reordering."""
    assert (a.model, a.dataset, a.method) == (b.model, b.dataset, b.method)
    assert a.num_samples == b.num_samples
    assert sorted(a.correct) == sorted(b.correct)
    assert sorted(a.dense_macs) == sorted(b.dense_macs)
    # Accuracy is a mean of 0/1 flags: exact under any ordering.
    assert a.accuracy == b.accuracy
    assert a.sparsity == pytest.approx(b.sparsity, rel=1e-12)


class TestMergeProperties:
    """EvalResult.merge is an associative fold with an identity."""

    @given(seed=st.integers(0, 2**16), count=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_order_invariance(self, seed, count):
        results = make_results(count, seed)
        permuted = list(reversed(results))
        assert_merged_close(
            EvalResult.merge(results), EvalResult.merge(permuted)
        )

    @given(
        seed=st.integers(0, 2**16),
        split=st.integers(1, 5),
        count=st.integers(3, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_associativity(self, seed, split, count):
        results = make_results(count, seed)
        split = min(split, count - 1)
        left_first = EvalResult.merge([
            EvalResult.merge(results[:split]),
            EvalResult.merge(results[split:]),
        ])
        right_first = EvalResult.merge(
            [results[0], EvalResult.merge(results[1:])]
        )
        flat = EvalResult.merge(results)
        # Concatenation is exactly associative: full equality, not just
        # metric closeness.
        assert left_first == flat
        assert right_first == flat

    def test_empty_list_identity(self):
        identity = EvalResult.merge([], model="m", dataset="d", method="x")
        assert identity == EvalResult(model="m", dataset="d", method="x")
        results = make_results(3)
        assert EvalResult.merge([identity] + results) == EvalResult.merge(
            results
        )

    def test_empty_list_without_labels_raises(self):
        with pytest.raises(ValueError, match="model/dataset/method"):
            EvalResult.merge([])

    def test_merge_rejects_mixed_cells(self):
        a = make_results(1)[0]
        b = make_results(1, seed=1)[0]
        b.method = "other"
        with pytest.raises(ValueError, match="cells"):
            EvalResult.merge([a, b])

    @given(seed=st.integers(0, 2**16), count=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_accumulate_vs_merge_equivalence(self, seed, count):
        results = make_results(count, seed)
        accumulated = EvalResult.merge(results[:1])
        for result in results[1:]:
            accumulated.accumulate(result)
        # Span-wise merge in span order is bit-identical to the serial
        # accumulate loop — the invariant sharding rests on.
        assert accumulated == EvalResult.merge(results)


class TestShardPlanning:
    def _job(self, **overrides) -> EvalJob:
        defaults = dict(model=MODEL, dataset=DATASET, method="focus",
                        num_samples=6, seed=0)
        defaults.update(overrides)
        return EvalJob(**defaults)

    def test_spans_cover_every_sample_once(self):
        shards = plan_eval_shards(self._job(), shard_size=4)
        assert [shard_span(s) for s in shards] == [(0, 4), (4, 6)]
        assert [s.num_samples for s in shards] == [4, 2]
        assert all(s.kind == EVAL_SHARD_KIND for s in shards)

    def test_jobs_are_content_addressed(self):
        a = plan_eval_shards(self._job(), shard_size=2)
        b = plan_eval_shards(self._job(), shard_size=2)
        assert a == b
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert len({j.key for j in a}) == 3  # distinct spans

    def test_key_excludes_parent_total(self):
        # The tentpole cache property: a span is the *same job* no
        # matter how many samples its parent cell has, so a grown cell
        # reuses its prefix.
        small = plan_eval_shards(self._job(num_samples=4), shard_size=2)
        large = plan_eval_shards(self._job(num_samples=8), shard_size=2)
        assert list(large[:2]) == list(small)
        assert [j.job_id for j in large[:2]] == [j.job_id for j in small]

    def test_key_distinguishes_cell_fields_and_span(self):
        base = plan_eval_shards(self._job(), shard_size=3)[0]
        for overrides in (dict(method="dense"), dict(seed=1),
                          dict(quantized=True), dict(dataset="mme")):
            other = plan_eval_shards(
                self._job(**overrides), shard_size=3
            )[0]
            assert base != other

    def test_only_eval_jobs_shard(self):
        with pytest.raises(ValueError, match="eval"):
            plan_eval_shards(self._job(kind="sim"), shard_size=2)

    def test_engine_rejects_invalid_eval_shards(self):
        with pytest.raises(ValueError, match="eval_shards"):
            ExperimentEngine(eval_shards=0)
        with pytest.raises(ValueError, match="eval_shards"):
            ExperimentEngine(eval_shards=-2)

    def test_shard_count_to_size(self):
        assert shard_count_to_size(10, 4) == 3
        assert shard_count_to_size(2, 8) == 1
        with pytest.raises(ValueError, match="num_shards"):
            shard_count_to_size(10, 0)
        assert plan_shards(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_merge_eval_shards_labels_int8(self):
        parent = self._job(num_samples=0, quantized=True)
        merged = merge_eval_shards(parent, [])
        assert merged.method == "focus-int8"
        assert merged.num_samples == 0


@pytest.mark.slow
class TestShardedParity:
    """Sharded eval cells are bit-identical to serial, always."""

    SAMPLES = 5

    @pytest.fixture(scope="class")
    def serial(self):
        return {
            (method, quant): evaluate(
                MODEL, DATASET, method, self.SAMPLES, 0, quantized=quant
            )
            for method, quant in ARMS
        }

    def _jobs(self, num_samples=None):
        return {
            (method, quant): EvalJob(
                model=MODEL, dataset=DATASET, method=method,
                num_samples=num_samples or self.SAMPLES, seed=0,
                quantized=quant,
            )
            for method, quant in ARMS
        }

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shard_size", [1, 3, 5])
    def test_bit_identical_to_serial(self, serial, workers, shard_size):
        jobs = self._jobs()
        with ExperimentEngine(
            workers=workers, eval_shards=shard_size
        ) as engine:
            results = engine.run(list(jobs.values()))
        for arm, job in jobs.items():
            assert results[job] == serial[arm], arm  # every field exact
        expected = len(ARMS) * len(plan_shards(self.SAMPLES, shard_size))
        assert engine.stats.executed_by_kind[EVAL_SHARD_KIND] == expected

    def test_warm_rerun_serves_whole_cells(self, serial):
        engine = ExperimentEngine(eval_shards=2)
        jobs = list(self._jobs().values())
        engine.run(jobs)
        executed = engine.stats.executed
        rerun = engine.run(jobs)
        # The merged cell was stored under the whole-cell key, so the
        # re-run needs neither evaluation nor re-merging.
        assert engine.stats.executed == executed
        assert engine.stats.executed_by_kind.get("eval", 0) == 0
        for (method, quant), job in self._jobs().items():
            assert rerun[job] == serial[(method, quant)]

    def test_prefix_reuse_on_larger_samples(self):
        cache = ResultCache()
        small = ExperimentEngine(eval_shards=2, cache=cache)
        small.run(list(self._jobs(num_samples=4).values()))
        assert small.stats.executed_by_kind[EVAL_SHARD_KIND] == 3 * 2

        large = ExperimentEngine(eval_shards=2, cache=cache)
        jobs = self._jobs(num_samples=8)
        results = large.run(list(jobs.values()))
        # Spans (0,2) and (2,4) of every arm come from the cache; only
        # the new suffix spans (4,6) and (6,8) execute.
        assert large.stats.executed_by_kind[EVAL_SHARD_KIND] == 3 * 2
        assert cache.stats.hits_by_kind[EVAL_SHARD_KIND] == 3 * 2
        for (method, quant), job in jobs.items():
            assert results[job] == evaluate(
                MODEL, DATASET, method, 8, 0, quantized=quant
            ), (method, quant)

    def test_spans_dedupe_across_cells_with_different_totals(self):
        engine = ExperimentEngine(eval_shards=2)
        job4 = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                       num_samples=4, seed=0)
        job8 = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                       num_samples=8, seed=0)
        results = engine.run([job4, job8])
        # One schedule: the 4-sample cell's spans are a prefix of the
        # 8-sample cell's, so only 4 unique spans run for 12 samples.
        assert engine.stats.executed_by_kind[EVAL_SHARD_KIND] == 4
        assert results[job4] == evaluate(MODEL, DATASET, "focus", 4, 0)
        assert results[job8] == evaluate(MODEL, DATASET, "focus", 8, 0)

    def test_directly_submitted_spans_dedupe_against_plans(self):
        # A span job submitted alongside its parent cell (in either
        # order) must schedule once, not once per route.
        parent = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                         num_samples=4, seed=0)
        spans = plan_eval_shards(parent, shard_size=2)
        events = []
        engine = ExperimentEngine(eval_shards=2, progress=events.append)
        results = engine.run([spans[0], parent, spans[1]])
        assert engine.stats.executed_by_kind[EVAL_SHARD_KIND] == 2
        shard_done = [e for e in events if e.action == "eval-shard-done"]
        assert [e.detail["shards_done"] for e in shard_done] == [1, 2]
        assert shard_done[-1].detail["samples"] == 4
        assert results[parent] == evaluate(MODEL, DATASET, "focus", 4, 0)
        assert results[spans[0]].correct == results[parent].correct[:2]

    def test_span_results_persist_in_disk_cache(self, tmp_path):
        job = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                      num_samples=4, seed=0)
        cold = ExperimentEngine(
            eval_shards=2, cache=ResultCache(cache_dir=tmp_path)
        )
        first = cold.run([job])[job]
        # A fresh process growing the cell finds the spans on disk.
        warm = ExperimentEngine(
            eval_shards=2, cache=ResultCache(cache_dir=tmp_path)
        )
        grown = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                        num_samples=6, seed=0)
        result = warm.run([grown])[grown]
        assert warm.stats.executed_by_kind[EVAL_SHARD_KIND] == 1
        assert warm.cache.stats.disk_hits == 2
        assert result.correct[:4] == first.correct
        assert result == evaluate(MODEL, DATASET, "focus", 6, 0)


@pytest.mark.slow
class TestEvalShardProgress:
    """Sharded cells stream running partial results as spans land."""

    def _run(self, workers=1, eval_shards=2, num_samples=5):
        events = []
        engine = ExperimentEngine(
            workers=workers, eval_shards=eval_shards,
            progress=events.append,
        )
        job = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                      num_samples=num_samples, seed=0)
        merged = engine.run([job])[job]
        return events, merged, engine

    def test_eval_shard_done_stream(self):
        events, merged, _ = self._run()
        shard_done = [e for e in events if e.action == "eval-shard-done"]
        assert len(shard_done) == 3  # ceil(5 / 2) spans
        # Each span completes (started/completed) *and* streams its
        # parent's running partial result.
        assert [e.action for e in events].count("completed") == 3
        done = [e.detail["shards_done"] for e in shard_done]
        assert done == [1, 2, 3]
        samples = [e.detail["samples"] for e in shard_done]
        assert samples[-1] == 5
        assert samples == sorted(samples)
        assert all(
            e.detail["shards_total"] == 3 and "focus" in e.detail["parent"]
            for e in shard_done
        )
        # Once every span has landed the running stats *are* the cell.
        final = shard_done[-1].detail
        assert final["accuracy"] == pytest.approx(merged.accuracy)
        assert final["sparsity"] == pytest.approx(merged.sparsity)

    def test_partial_results_stream_from_pool(self):
        events, merged, _ = self._run(workers=2)
        shard_done = [e for e in events if e.action == "eval-shard-done"]
        assert [e.detail["shards_done"] for e in shard_done] == [1, 2, 3]
        assert shard_done[-1].detail["accuracy"] == pytest.approx(
            merged.accuracy
        )

    def test_cached_spans_also_stream(self):
        cache = ResultCache()
        self._run_with_cache(cache, num_samples=4)
        events, _, engine = self._run_with_cache(cache, num_samples=6)
        shard_done = [e for e in events if e.action == "eval-shard-done"]
        # Spans (0,2) and (2,4) stream as cache hits before the new
        # suffix span executes.
        assert len(shard_done) == 3
        assert [e.action for e in events] == [
            "cache-hit", "eval-shard-done",
            "cache-hit", "eval-shard-done",
            "started", "completed", "eval-shard-done",
        ]
        assert engine.stats.executed_by_kind[EVAL_SHARD_KIND] == 1

    def _run_with_cache(self, cache, num_samples):
        events = []
        engine = ExperimentEngine(
            eval_shards=2, cache=cache, progress=events.append
        )
        job = EvalJob(model=MODEL, dataset=DATASET, method="focus",
                      num_samples=num_samples, seed=0)
        merged = engine.run([job])[job]
        return events, merged, engine


class TestModelCacheKeying:
    """Model caches key on (name, config digest), not the bare name."""

    def test_config_change_is_not_served_stale(self):
        from repro.model.zoo import MODEL_CONFIGS

        original = MODEL_CONFIGS[MODEL]
        before = ModelCache.get(MODEL)
        try:
            MODEL_CONFIGS[MODEL] = dataclasses.replace(original, seed=999)
            patched = ModelCache.get(MODEL)
            assert patched is not before
            assert patched.config.seed == 999
            patched_quant = QuantizedModelCache.get(MODEL)
            assert patched_quant.config.seed == 999
        finally:
            MODEL_CONFIGS[MODEL] = original
        # Restoring the config restores the cached instance.
        assert ModelCache.get(MODEL) is before

    def test_same_config_still_cached_once(self):
        assert ModelCache.get(MODEL) is ModelCache.get(MODEL)
        assert QuantizedModelCache.get(MODEL) is QuantizedModelCache.get(
            MODEL
        )


@pytest.mark.slow
class TestDriverShardingParity:
    """A registered driver shards transparently through the engine."""

    def test_fig2c_sharded_equals_serial(self):
        from repro.engine.registry import run_plan
        from repro.eval.experiments import plan_fig2c

        plan = plan_fig2c(num_samples=2)
        serial = plan.assemble(ExperimentEngine(workers=1).run(plan.jobs))
        with ExperimentEngine(workers=2, eval_shards=1) as engine:
            sharded = run_plan(plan_fig2c(num_samples=2), engine)
        assert sharded == serial
        assert engine.stats.executed_by_kind[EVAL_SHARD_KIND] > 0
        assert engine.stats.executed_by_kind.get("eval", 0) == 0


class TestCli:
    def test_parses_eval_shards(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig13", "--eval-shards", "2"])
        assert args.eval_shards == 2
        assert build_parser().parse_args(["fig13"]).eval_shards is None

    @pytest.mark.slow
    def test_main_streams_shard_progress(self, capsys):
        from repro.cli import main

        assert main([
            "fig13", "--samples", "2", "--eval-shards", "1", "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "running acc" in captured.err
        assert "eval shards" in captured.out
