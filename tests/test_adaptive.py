"""Tests for the adaptive (top-p) semantic pruning extension."""

import numpy as np
import pytest

from repro.config import FocusConfig
from repro.core.adaptive import (
    AdaptiveFocusPlugin,
    AdaptiveSemanticConcentrator,
    TopPSchedule,
)
from repro.eval.metrics import computation_sparsity
from repro.eval.runner import evaluate_samples


def _concentrated_probs(s, text_count, hot, mass=0.95):
    """Probs whose last text row puts ``mass`` on the ``hot`` tokens."""
    probs = np.full((1, s, s), (1.0 - mass) / s, dtype=np.float32)
    probs[0, -1, :] = (1.0 - mass) / (s - len(hot))
    for token in hot:
        probs[0, -1, token] = mass / len(hot)
    return probs


class TestSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopPSchedule(mass=0.0)
        with pytest.raises(ValueError):
            TopPSchedule(floor_ratio=0.0)
        with pytest.raises(ValueError):
            TopPSchedule(floor_ratio=2.0, ceiling_ratio=1.0)


class TestAdaptiveConcentrator:
    def _sec(self, mass=0.9):
        config = FocusConfig(retention_schedule={1: 0.5}, schedule_depth=2)
        return AdaptiveSemanticConcentrator(
            config, 2, TopPSchedule(mass=mass, floor_ratio=0.1,
                                    ceiling_ratio=2.0)
        )

    def test_concentrated_attention_prunes_harder(self):
        sec = self._sec(mass=0.9)
        s, text = 22, 2
        is_text = np.zeros(s, dtype=bool)
        is_text[-text:] = True
        probs = _concentrated_probs(s, text, hot=[3, 7])
        decision = sec.prune(1, probs, is_text, 20, np.arange(s))
        assert decision is not None
        kept = int(decision.keep[:-text].sum())
        # Fixed schedule would keep 10; concentrated attention keeps
        # far fewer.
        assert kept < 10
        assert decision.keep[3] and decision.keep[7]

    def test_ceiling_bounds_diffuse_prompts(self):
        sec = self._sec(mass=0.99)
        s, text = 42, 2
        is_text = np.zeros(s, dtype=bool)
        is_text[-text:] = True
        probs = np.full((1, s, s), 1.0 / s, dtype=np.float32)
        decision = sec.prune(1, probs, is_text, 40, np.arange(s))
        assert decision is not None
        kept = int(decision.keep[:-text].sum())
        assert kept <= 2 * 20  # ceiling_ratio * budget

    def test_off_schedule_returns_none(self):
        sec = self._sec()
        s = 10
        probs = np.full((1, s, s), 1.0 / s, dtype=np.float32)
        is_text = np.zeros(s, dtype=bool)
        is_text[-1:] = True
        assert sec.prune(0, probs, is_text, 9, np.arange(s)) is None


class TestAdaptivePlugin:
    def test_end_to_end(self, tiny_model, tiny_samples):
        config = FocusConfig(m_tile=64)
        result = evaluate_samples(tiny_model, tiny_samples, "focus-topp",
                                  config)
        assert all(0.0 <= s < 1.0 for s in result.sparsities)
        assert result.sparsity > 10.0

    def test_sparsity_varies_per_sample(self, tiny_model, tiny_samples):
        """The paper's caveat: adaptation introduces runtime variation."""
        config = FocusConfig(m_tile=64)
        sparsities = []
        for sample in tiny_samples:
            plugin = AdaptiveFocusPlugin(tiny_model, config)
            outcome = tiny_model.forward(sample, plugin)
            sparsities.append(computation_sparsity(
                outcome.trace, tiny_model.config, sample
            ))
        assert len(set(round(s, 4) for s in sparsities)) > 1

    def test_accuracy_comparable_to_fixed(self, tiny_model, tiny_samples):
        config = FocusConfig(m_tile=64)
        fixed = evaluate_samples(tiny_model, tiny_samples, "focus", config)
        adaptive = evaluate_samples(tiny_model, tiny_samples, "focus-topp",
                                    config)
        assert adaptive.accuracy >= fixed.accuracy - 50.0
