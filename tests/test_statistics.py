"""Tests for paired bootstrap statistics."""

import numpy as np
import pytest

from repro.eval.metrics import EvalResult
from repro.eval.statistics import (
    PairedComparison,
    paired_bootstrap,
    sparsity_summary,
)


class TestPairedBootstrap:
    def test_identical_results_zero_delta(self):
        flags = [True, False, True, True]
        comparison = paired_bootstrap(flags, flags)
        assert comparison.mean_delta == 0.0
        assert not comparison.significant

    def test_clear_improvement_significant(self):
        candidate = [True] * 30
        reference = [False] * 15 + [True] * 15
        comparison = paired_bootstrap(candidate, reference)
        assert comparison.mean_delta == pytest.approx(50.0)
        assert comparison.significant
        assert comparison.low > 0

    def test_clear_regression_significant(self):
        candidate = [False] * 20 + [True] * 10
        reference = [True] * 30
        comparison = paired_bootstrap(candidate, reference)
        assert comparison.mean_delta < 0
        assert comparison.high < 0

    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        candidate = list(rng.random(40) < 0.8)
        reference = list(rng.random(40) < 0.75)
        comparison = paired_bootstrap(candidate, reference)
        assert comparison.low <= comparison.mean_delta <= comparison.high

    def test_deterministic(self):
        candidate = [True, False] * 10
        reference = [False, True] * 10
        a = paired_bootstrap(candidate, reference, seed=3)
        b = paired_bootstrap(candidate, reference, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_accepts_eval_results(self):
        a = EvalResult(model="m", dataset="d", method="focus",
                       correct=[True, True, False])
        b = EvalResult(model="m", dataset="d", method="dense",
                       correct=[True, False, False])
        comparison = paired_bootstrap(a, b)
        assert isinstance(comparison, PairedComparison)
        assert comparison.n_samples == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_bootstrap([True], [True, False])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            paired_bootstrap([True], [True], confidence=1.0)

    def test_str_format(self):
        comparison = paired_bootstrap([True] * 4, [False] * 4)
        text = str(comparison)
        assert "95% CI" in text
        assert "n=4" in text


class TestSparsitySummary:
    def test_summary_fields(self):
        result = EvalResult(model="m", dataset="d", method="focus",
                            sparsities=[0.7, 0.8, 0.75])
        summary = sparsity_summary(result)
        assert summary["mean"] == pytest.approx(75.0)
        assert summary["min"] == pytest.approx(70.0)
        assert summary["max"] == pytest.approx(80.0)

    def test_empty(self):
        result = EvalResult(model="m", dataset="d", method="focus")
        assert sparsity_summary(result)["mean"] == 0.0
