"""Tests for paper-style report formatting."""

import numpy as np

from repro.eval.experiments import (
    AblationBar,
    Fig2bResult,
    Fig2cBar,
    Fig12Row,
    Fig13Result,
    SweepPoint,
    Table2Result,
    Table3Row,
    Table4Row,
    Table5Row,
)
from repro.eval.reporting import (
    format_fig2b,
    format_fig2c,
    format_fig11,
    format_fig12,
    format_fig13,
    format_sweep,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
)


class TestTableFormatting:
    def test_table2(self):
        result = Table2Result(models=("llava-video",),
                              datasets=("videomme",),
                              methods=("dense", "focus"))
        result.cells[("llava-video", "videomme", "dense")] = (90.0, 0.0)
        result.cells[("llava-video", "videomme", "focus")] = (88.0, 80.0)
        text = format_table2(result)
        assert "Llava-Vid" in text
        assert "VMME" in text
        assert "88.00" in text
        assert "80.00" in text

    def test_table3(self):
        rows = [Table3Row(name="focus", pe_array="32x32", buffer_kb=734,
                          dram_bandwidth_gbs=64, area_mm2=3.21,
                          on_chip_power_mw=736)]
        text = format_table3(rows)
        assert "3.21" in text
        assert "736" in text

    def test_table4(self):
        rows = [Table4Row(model="llava-video", dataset="videomme",
                          dense_acc=90.0, dense_degrade=0.1,
                          ours_acc=88.0, ours_degrade=0.4,
                          ours_sparsity=78.0, sparsity_degrade=0.2)]
        text = format_table4(rows)
        assert "78.00" in text

    def test_table5(self):
        rows = [Table5Row(model="qwen25-vl", dataset="vqav2",
                          dense_acc=90.0, adaptiv_acc=85.0,
                          adaptiv_speedup=1.9, ours_acc=88.0,
                          ours_speedup=2.2)]
        text = format_table5(rows)
        assert "Qwen2.5-VL" in text
        assert "2.20" in text


class TestFigureFormatting:
    def test_fig2b(self):
        result = Fig2bResult(vector_sizes=(8, 32))
        result.fraction_above = {8: 0.64, 32: 0.5}
        result.cdfs = {8: np.zeros(101), 32: np.zeros(101)}
        text = format_fig2b(result)
        assert "64.0%" in text

    def test_fig2c(self):
        text = format_fig2c([Fig2cBar(method="focus", sparsity=80.0,
                                      accuracy=90.0)])
        assert "focus" in text

    def test_fig11(self):
        bars = [AblationBar("systolic-array", 1.0), AblationBar("cmc", 2.0),
                AblationBar("ours-sec", 3.15), AblationBar("ours", 4.53)]
        text = format_fig11(bars)
        assert "4.53x" in text
        assert "1.44x" in text  # SIC gain over SEC

    def test_fig12(self):
        row = Fig12Row(model="llava-video",
                       dram_ratio={"dense": 1.0, "focus": 0.21},
                       activation_ratio={"dense": 1.0, "focus": 0.18})
        text = format_fig12([row])
        assert "0.21" in text
        assert "0.18" in text

    def test_fig13(self):
        result = Fig13Result(
            tile_lengths=np.array([100, 200]),
            histogram=np.array([0.5, 0.5]),
            bin_edges=np.array([0.0, 100.0, 200.0]),
            utilization_curve=np.array([0.5, 0.8]),
            average_utilization=0.92,
        )
        text = format_fig13(result)
        assert "0.920" in text

    def test_sweep(self):
        points = [SweepPoint(label="32", latency=1.0, accuracy=90.0,
                             extra={"buffer_kb": 256.0})]
        text = format_sweep("SWEEP", points)
        assert "SWEEP" in text
        assert "buffer_kb" in text
        assert "256.00" in text
