"""Differential suite: wavefront matcher vs the serial reference oracle.

The wavefront (level-scheduled) matcher must be *bit-identical* to the
retained row-at-a-time reference for every tile, threshold, and block
shape — same representatives, same unique counts, same comparison
count, and trace-for-trace identical forward passes.  These tests lock
that contract in over a hypothesis grid of random DAG tables and over
end-to-end zoo-model forwards, plus the hot-path regressions that rode
along with the overhaul (float32 attention, causal-mask memo, lazy
attention summaries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.framefusion import FrameFusionPlugin
from repro.config import FocusConfig
from repro.core.blocks import build_neighbor_table
from repro.core.gather import SimilarityGather
from repro.core.matching import (
    MATCHER_MODES,
    SimilarityMatcher,
    level_schedule,
    partner_levels,
)
from repro.eval.runner import ModelCache, make_plugin
from repro.model.functional import causal_mask
from repro.model.plugins import DENSE_PLUGIN, InferencePlugin
from repro.quant.int8 import Int8ActivationPlugin
from repro.workloads.datasets import make_dataset_span


# ---------------------------------------------------------------------------
# Strategies: random DAG tables (a superset of what build_neighbor_table
# produces) and random value matrices with adversarial structure.
# ---------------------------------------------------------------------------

@st.composite
def random_tiles(draw):
    """A random (blocks, table, threshold) tile.

    Tables are arbitrary DAGs honouring only the matcher's contract
    (partners precede keys, -1 marks absent) — a strict superset of
    grid-derived neighbor tables.  Values include exact duplicates,
    exact zeros, and partner-less (text-like) rows.
    """
    n = draw(st.integers(1, 28))
    n_offsets = draw(st.integers(1, 7))
    k = draw(st.integers(1, 24))
    vector = draw(st.integers(0, k))
    threshold = draw(
        st.floats(0.05, 1.0, allow_nan=False, allow_infinity=False)
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    table = np.full((n, n_offsets), -1, dtype=np.int64)
    for i in range(1, n):
        if rng.random() < 0.25:  # text-like row: no partners
            continue
        count = int(rng.integers(0, n_offsets + 1))
        if count:
            partners = rng.choice(i, size=min(count, i), replace=False)
            table[i, :partners.size] = partners

    x = rng.standard_normal((n, k)).astype(np.float32)
    # Exact duplicates force chains; near-duplicates sit at the
    # threshold boundary; zero rows exercise the norm-floor branch.
    for i in range(1, n):
        roll = rng.random()
        if roll < 0.25:
            x[i] = x[int(rng.integers(0, i))]
        elif roll < 0.35:
            x[i] = 0.0
        elif roll < 0.45:
            x[i] = x[int(rng.integers(0, i))] * (
                1.0 + rng.standard_normal(k).astype(np.float32) * 0.01
            )
    blocks = SimilarityMatcher.split_blocks(x, vector)
    return blocks, table, threshold


class TestDifferential:
    @given(random_tiles())
    @settings(max_examples=120, deadline=None)
    def test_wavefront_bit_identical_to_reference(self, tile):
        blocks, table, threshold = tile
        matcher = SimilarityMatcher(threshold)
        ref = matcher.match_tile_reference(blocks, table)
        wav = matcher.match_tile_wavefront(blocks, table)
        np.testing.assert_array_equal(wav.reps, ref.reps)
        np.testing.assert_array_equal(
            wav.unique_counts(), ref.unique_counts()
        )
        assert wav.comparisons == ref.comparisons

    @given(
        st.integers(1, 4), st.integers(1, 5), st.integers(1, 5),
        st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
        st.floats(0.1, 1.0), st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_tables_with_pruning_holes(
        self, frames, height, width, bf, bh, bw, threshold, seed
    ):
        """Realistic tables: FHW grids with random pruning holes."""
        rng = np.random.default_rng(seed)
        full = np.array([
            [f, r, c]
            for f in range(frames)
            for r in range(height)
            for c in range(width)
        ])
        keep = rng.random(full.shape[0]) > 0.3
        keep[0] = True
        positions = full[keep]
        table = build_neighbor_table(
            positions, (frames, height, width), (bf, bh, bw)
        )
        x = rng.standard_normal((positions.shape[0], 16)).astype(np.float32)
        if positions.shape[0] > 2:
            x[-1] = x[0]
        matcher = SimilarityMatcher(threshold)
        blocks = matcher.split_blocks(x, 4)
        ref = matcher.match_tile_reference(blocks, table)
        wav = matcher.match_tile_wavefront(blocks, table)
        np.testing.assert_array_equal(wav.reps, ref.reps)
        assert wav.comparisons == ref.comparisons

    def test_gather_parity_across_modes(self, rng):
        """Whole-gather parity: tiles, text rows, caching, x_approx."""
        grid = (3, 4, 4)
        positions = np.array([
            [f, r, c]
            for f in range(grid[0])
            for r in range(grid[1])
            for c in range(grid[2])
        ])
        n_image = positions.shape[0]
        n_text = 5
        positions = np.concatenate(
            [positions, np.full((n_text, 3), -1)], axis=0
        )
        is_text = np.array([False] * n_image + [True] * n_text)
        x = rng.standard_normal((n_image + n_text, 24)).astype(np.float32)
        x[8:16] = x[0:8]  # duplicate rows so matching happens

        results = {}
        for mode in MATCHER_MODES:
            config = FocusConfig(vector_size=8, m_tile=16, matcher=mode)
            engine = SimilarityGather(config)
            results[mode] = engine.gather(
                x, positions, is_text, grid, cache_token="tok"
            )
        ref, wav = results["reference"], results["wavefront"]
        np.testing.assert_array_equal(wav.reps, ref.reps)
        np.testing.assert_array_equal(wav.x_approx, ref.x_approx)
        assert wav.tile_lengths == ref.tile_lengths
        assert wav.tile_rows == ref.tile_rows
        assert wav.comparisons == ref.comparisons
        assert wav.unique_total == ref.unique_total
        assert wav.map_bits == ref.map_bits


class TestLevels:
    @given(random_tiles())
    @settings(max_examples=60, deadline=None)
    def test_levels_are_one_plus_max_partner_level(self, tile):
        _, table, _ = tile
        levels = partner_levels(table)
        for i in range(table.shape[0]):
            partners = table[i][table[i] >= 0]
            if partners.size == 0:
                assert levels[i] == 0
            else:
                assert levels[i] == levels[partners].max() + 1

    @given(random_tiles())
    @settings(max_examples=60, deadline=None)
    def test_schedule_partitions_rows_with_partners(self, tile):
        _, table, _ = tile
        levels = partner_levels(table)
        schedule = level_schedule(levels)
        scheduled = np.concatenate([np.asarray(g) for g in schedule]) \
            if schedule else np.array([], dtype=np.int64)
        expected = np.nonzero((table >= 0).any(axis=1))[0]
        assert sorted(scheduled.tolist()) == expected.tolist()
        # Every row in a group sits exactly at that group's level.
        for depth, rows in enumerate(schedule, start=1):
            assert (levels[rows] == depth).all()

    def test_empty_inputs(self):
        assert partner_levels(np.empty((0, 3), dtype=np.int64)).size == 0
        assert level_schedule(np.array([], dtype=np.int64)) == ()
        matcher = SimilarityMatcher(0.9)
        outcome = matcher.match_tile_wavefront(
            np.empty((0, 1, 4), dtype=np.float32),
            np.empty((0, 3), dtype=np.int64),
        )
        assert outcome.reps.shape == (1, 0)
        assert outcome.comparisons == 0


class TestValidation:
    def test_precedence_precheck_both_modes(self):
        blocks = SimilarityMatcher.split_blocks(
            np.ones((3, 8), dtype=np.float32), 4
        )
        bad = np.array([[-1], [2], [-1]], dtype=np.int64)  # 2 >= 1
        for mode in MATCHER_MODES:
            matcher = SimilarityMatcher(0.9, mode=mode)
            with pytest.raises(ValueError, match="precede"):
                matcher.match_tile(blocks, bad)

    def test_tile_coverage_check(self):
        blocks = SimilarityMatcher.split_blocks(
            np.ones((3, 8), dtype=np.float32), 4
        )
        short = np.full((2, 1), -1, dtype=np.int64)
        for mode in MATCHER_MODES:
            matcher = SimilarityMatcher(0.9, mode=mode)
            with pytest.raises(ValueError, match="cover"):
                matcher.match_tile(blocks, short)

    def test_gather_validates_coverage_once(self, rng):
        config = FocusConfig(vector_size=4)
        engine = SimilarityGather(config)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        with pytest.raises(ValueError, match="cover every row"):
            engine.gather(
                x, np.zeros((3, 3), dtype=np.int64),
                np.zeros(4, dtype=bool), (1, 2, 2),
            )

    def test_partner_levels_rejects_cyclic_tables(self):
        # A self-reference or a partner cycle must raise, not spin the
        # level fixpoint forever.  (Acyclic forward references are
        # caught by the matcher's precedence pre-check instead.)
        with pytest.raises(ValueError, match="precede"):
            partner_levels(np.array([[0]], dtype=np.int64))
        with pytest.raises(ValueError, match="precede"):
            partner_levels(np.array([[1], [0]], dtype=np.int64))

    def test_unknown_matcher_mode_rejected(self):
        with pytest.raises(ValueError, match="matcher"):
            FocusConfig(matcher="bogus")
        with pytest.raises(ValueError, match="mode"):
            SimilarityMatcher(0.9, mode="bogus")


ZOO_PARITY = (
    ("llava-video", "videomme"),
    ("minicpm", "mlvu"),
    ("qwen25-vl", "vqav2"),
)
PARITY_ARMS = ("focus", "focus-token", "dense")


class TestForwardParity:
    """End-to-end: a full forward pass is trace-for-trace identical
    under either matcher implementation."""

    @pytest.mark.parametrize("model_name,dataset", ZOO_PARITY)
    @pytest.mark.parametrize("method", PARITY_ARMS)
    def test_zoo_forward_trace_parity(self, model_name, dataset, method):
        model = ModelCache.get(model_name)
        sample, = make_dataset_span(
            dataset, model.config.layout, 0, 1, seed=0
        )
        outcomes = {}
        for mode in MATCHER_MODES:
            plugin = make_plugin(
                method, model, FocusConfig(matcher=mode)
            )
            outcomes[mode] = model.forward(sample, plugin)
        ref = outcomes["reference"]
        wav = outcomes["wavefront"]
        assert wav.predicted_index == ref.predicted_index
        assert wav.correct == ref.correct
        assert wav.final_tokens == ref.final_tokens
        assert wav.trace == ref.trace  # trace-for-trace, every GEMM


class _DtypeProbe(InferencePlugin):
    """Captures the dtypes flowing through the attention path."""

    def __init__(self):
        self.probs_dtypes = set()
        self.gemm_dtypes = set()

    def after_attention_probs(self, layer_index, probs, state):
        self.probs_dtypes.add(probs.dtype)
        return None

    def gemm_input(self, layer_index, site, x, state, producer, n):
        self.gemm_dtypes.add(x.dtype)
        return x, None


class TestAttentionDtype:
    """Regression: the attention path stays float32 end to end (a bare
    ``np.sqrt(head_dim)`` would silently promote scores to float64)."""

    def test_forward_stays_float32(self, tiny_model, tiny_sample):
        probe = _DtypeProbe()
        tiny_model.forward(tiny_sample, probe)
        assert probe.probs_dtypes == {np.dtype(np.float32)}
        assert probe.gemm_dtypes == {np.dtype(np.float32)}

    def test_float64_scale_is_the_hazard(self):
        # Documents what the regression guards against: dividing a
        # float32 array by np.sqrt(int) promotes under NEP 50.
        scores = np.ones((2, 2), dtype=np.float32)
        assert (scores / np.sqrt(16)).dtype == np.float64
        assert (scores / np.float32(np.sqrt(16))).dtype == np.float32


class TestCausalMaskMemo:
    def test_same_object_returned(self):
        assert causal_mask(17) is causal_mask(17)

    def test_read_only(self):
        mask = causal_mask(9)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = 1.0

    def test_contents_unchanged(self):
        mask = causal_mask(4)
        assert mask.dtype == np.float32
        assert (mask[np.tril_indices(4)] == 0.0).all()
        assert np.isneginf(mask[np.triu_indices(4, k=1)]).all()

    def test_lru_bounded(self):
        from repro.model.functional import MASK_CACHE_MAX_ENTRIES

        for s in range(1, MASK_CACHE_MAX_ENTRIES + 20):
            causal_mask(s)
        assert causal_mask.cache_info().currsize <= MASK_CACHE_MAX_ENTRIES


class TestLazyAttentionSummary:
    def test_dense_forward_skips_summary(self, tiny_model, tiny_sample):
        class Probe(InferencePlugin):
            saw = None

            def finish(self, state):
                Probe.saw = "attn_received" in state.scratch

        tiny_model.forward(tiny_sample, Probe())
        assert Probe.saw is False

    def test_framefusion_gets_summary(self, tiny_model, tiny_sample):
        plugin = FrameFusionPlugin(tiny_model.config)

        class Probe(FrameFusionPlugin):
            saw = None

            def finish(self, state):
                Probe.saw = "attn_received" in state.scratch

        probe = Probe(tiny_model.config)
        tiny_model.forward(tiny_sample, probe)
        assert Probe.saw is True
        assert plugin.needs_attention_summary is True

    def test_int8_wrapper_delegates_flag(self, tiny_model):
        assert Int8ActivationPlugin(
            FrameFusionPlugin(tiny_model.config)
        ).needs_attention_summary is True
        assert Int8ActivationPlugin(DENSE_PLUGIN) \
            .needs_attention_summary is False
