"""Sharded trace simulation: merge semantics, parity, and scheduling.

The harness locks in the tentpole guarantee: sharded ``simulate_many``
is *bit-identical* to the serial fold for every worker count and shard
size.  Property tests (hypothesis, seeded random traces) pin down
:meth:`SimResult.merge`'s algebra — order-invariance, associativity,
empty-list identity, and accumulate-vs-merge equivalence — while the
parity matrix exercises ``workers ∈ {1, 2, 4} × shard_size ∈ {1, 3,
all}`` through real process pools, and the scheduler tests assert the
``sim`` job kind's progress-event stream, dedupe, and caching.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.arch import FOCUS, SYSTOLIC
from repro.accel.dram import DramModel
from repro.accel.sim_jobs import (
    make_sim_jobs,
    resolve_shard_size,
    simulate_many_sharded,
    traces_digest,
)
from repro.accel.simulator import (
    SimResult,
    canonical_dram,
    dram_config,
    plan_shards,
    simulate,
    simulate_many,
)
from repro.accel.trace import GemmTrace, ModelTrace
from repro.engine import ExperimentEngine, ResultCache

GEMM_SITES = ("qkv", "qk", "pv", "o_proj", "fc1", "fc2")

INT_FIELDS = (
    "cycles", "compute_cycles", "dram_cycles", "macs",
    "dram_bytes", "activation_dram_bytes", "sram_bytes", "samples",
)


def make_traces(count: int, seed: int = 0) -> list[ModelTrace]:
    """Deterministic pseudo-random traces (the parity fixtures)."""
    rng = np.random.default_rng(seed)
    traces = []
    for _ in range(count):
        trace = ModelTrace(initial_tokens=int(rng.integers(32, 256)))
        for layer in range(int(rng.integers(1, 4))):
            for name in GEMM_SITES[: int(rng.integers(2, 7))]:
                m = int(rng.integers(8, 128))
                k = int(rng.integers(8, 128))
                n = int(rng.integers(8, 128))
                gemm = GemmTrace(name=name, layer=layer, m=m, k=k, n=n)
                if rng.random() < 0.5:
                    blocks = gemm.k_blocks
                    gemm.input_unique = int(rng.integers(1, m * blocks + 1))
                    gemm.input_map_bits = int(rng.integers(0, 4096))
                    gemm.scatter_ops = int(rng.integers(0, m * n))
                trace.add(gemm)
        trace.tile_lengths = [int(v) for v in rng.integers(1, 64, size=4)]
        trace.tile_rows = [64] * 4
        trace.preprocess_macs = int(rng.integers(0, 10_000))
        trace.sic_comparisons = int(rng.integers(0, 10_000))
        traces.append(trace)
    return traces


def sim_results(count: int, seed: int = 0) -> list[SimResult]:
    return [simulate(t, SYSTOLIC) for t in make_traces(count, seed)]


def assert_merged_close(a: SimResult, b: SimResult) -> None:
    """Integer fields exact; float energy up to summation rounding."""
    assert a.arch == b.arch
    for name in INT_FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.energy.core_j == pytest.approx(b.energy.core_j, rel=1e-12)
    assert a.energy.buffer_j == pytest.approx(b.energy.buffer_j, rel=1e-12)
    assert a.energy.dram_j == pytest.approx(b.energy.dram_j, rel=1e-12)


class TestMergeProperties:
    """SimResult.merge is an associative fold with an identity."""

    @given(seed=st.integers(0, 2**16), count=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_order_invariance(self, seed, count):
        results = sim_results(count, seed)
        permuted = list(reversed(results))
        assert_merged_close(
            SimResult.merge(results), SimResult.merge(permuted)
        )

    @given(
        seed=st.integers(0, 2**16),
        split=st.integers(1, 5),
        count=st.integers(3, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_associativity(self, seed, split, count):
        results = sim_results(count, seed)
        split = min(split, count - 1)
        left_first = SimResult.merge([
            SimResult.merge(results[:split]),
            SimResult.merge(results[split:]),
        ])
        right_first = SimResult.merge(
            [results[0], SimResult.merge(results[1:])]
        )
        flat = SimResult.merge(results)
        assert_merged_close(left_first, flat)
        assert_merged_close(right_first, flat)

    def test_empty_list_identity(self):
        identity = SimResult.merge([], arch=SYSTOLIC.name)
        assert identity == SimResult(arch=SYSTOLIC.name)
        results = sim_results(3)
        with_identity = SimResult.merge([identity] + results)
        # Prepending the identity is *exact*: 0 + x == x in IEEE too.
        assert with_identity == SimResult.merge(results)

    def test_empty_list_without_arch_raises(self):
        with pytest.raises(ValueError, match="arch"):
            SimResult.merge([])

    def test_merge_rejects_mixed_arch(self):
        focus = simulate(make_traces(1)[0], FOCUS)
        dense = simulate(make_traces(1)[0], SYSTOLIC)
        with pytest.raises(ValueError, match="architectures"):
            SimResult.merge([focus, dense])

    @given(seed=st.integers(0, 2**16), count=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_accumulate_vs_merge_equivalence(self, seed, count):
        traces = make_traces(count, seed)
        accumulated = simulate(traces[0], SYSTOLIC)
        for trace in traces[1:]:
            accumulated.accumulate(simulate(trace, SYSTOLIC))
        merged = SimResult.merge([simulate(t, SYSTOLIC) for t in traces])
        # Per-trace merge in trace order is bit-identical to the
        # serial accumulate loop — the invariant sharding rests on.
        assert merged == accumulated


class TestShardPlanner:
    def test_covers_every_index_once(self):
        shards = plan_shards(10, 3)
        assert shards == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_shard(self):
        assert plan_shards(4, 99) == [(0, 4)]

    def test_empty(self):
        assert plan_shards(0, 3) == []

    def test_rejects_nonpositive_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards(5, 0)

    def test_resolve_defaults_to_one_shard_per_worker(self):
        engine = ExperimentEngine(workers=4)
        assert resolve_shard_size(10, engine) == 3  # ceil(10/4)
        engine.sim_shards = 5
        assert resolve_shard_size(10, engine) == 2

    def test_resolve_explicit_wins(self):
        engine = ExperimentEngine(workers=4, sim_shards=5)
        assert resolve_shard_size(10, engine, shard_size=7) == 7
        with pytest.raises(ValueError, match="shard_size"):
            resolve_shard_size(10, engine, shard_size=0)

    def test_invalid_sim_shards_rejected(self):
        with pytest.raises(ValueError, match="sim_shards"):
            ExperimentEngine(sim_shards=0)
        with pytest.raises(ValueError, match="sim_shards"):
            ExperimentEngine(sim_shards=-4)
        engine = ExperimentEngine(workers=2)
        engine.sim_shards = -1  # bypasses the constructor check
        with pytest.raises(ValueError, match="sim_shards"):
            resolve_shard_size(10, engine)


class TestSimJobs:
    def test_jobs_are_content_addressed(self):
        traces = make_traces(4)
        a = make_sim_jobs(traces, FOCUS, shard_size=2)
        b = make_sim_jobs(make_traces(4), FOCUS, shard_size=2)
        assert a == b
        assert [j.job_id for j in a] == [j.job_id for j in b]

    def test_key_distinguishes_traces_arch_dram_and_shard(self):
        traces = make_traces(4)
        base = make_sim_jobs(traces, FOCUS, shard_size=2)
        assert len({j.key for j in base}) == 2  # distinct shard spans
        other_traces = make_sim_jobs(make_traces(4, seed=9), FOCUS,
                                     shard_size=2)
        other_arch = make_sim_jobs(traces, SYSTOLIC, shard_size=2)
        other_dram = make_sim_jobs(
            traces, FOCUS, DramModel(efficiency=0.5), shard_size=2
        )
        for variant in (other_traces, other_arch, other_dram):
            assert base[0] != variant[0]

    def test_payload_not_part_of_identity(self):
        traces = make_traces(2)
        job, = make_sim_jobs(traces, FOCUS, shard_size=2)
        stripped = job.__class__(**{
            **{f: getattr(job, f) for f in (
                "model", "dataset", "method", "num_samples", "seed",
                "config", "quantized", "kind", "extra", "provider",
            )},
            "payload": None,
        })
        assert stripped == job
        assert stripped.job_id == job.job_id

    def test_digest_deterministic_and_sensitive(self):
        assert traces_digest(make_traces(3)) == traces_digest(make_traces(3))
        assert traces_digest(make_traces(3)) != traces_digest(
            make_traces(3, seed=1)
        )


@pytest.mark.slow
class TestShardedParity:
    """Sharded simulate_many is bit-identical to serial, always."""

    @pytest.fixture(scope="class")
    def traces(self):
        return make_traces(7, seed=3)

    @pytest.fixture(scope="class")
    def serial(self, traces):
        return simulate_many(traces, FOCUS)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shard_size", [1, 3, 7])
    def test_bit_identical_to_serial(self, traces, serial, workers,
                                     shard_size):
        engine = ExperimentEngine(workers=workers)
        sharded = simulate_many(
            traces, FOCUS, engine=engine, shard_size=shard_size
        )
        assert sharded == serial  # dataclass equality: every field exact

    def test_auto_shard_size_parity(self, traces, serial):
        engine = ExperimentEngine(workers=4)
        assert simulate_many(traces, FOCUS, engine=engine) == serial

    def test_repeat_run_served_from_cache(self, traces):
        engine = ExperimentEngine(workers=2)
        first = simulate_many(traces, FOCUS, engine=engine, shard_size=2)
        executed = engine.stats.executed
        second = simulate_many(traces, FOCUS, engine=engine, shard_size=2)
        assert second == first
        assert engine.stats.executed == executed
        assert engine.stats.executed_by_kind["sim"] == executed

    def test_shards_shared_across_shard_free_reruns(self, traces):
        # Same digest + same shard span dedupe even across batch sizes
        # that happen to produce an identical shard plan.
        engine = ExperimentEngine()
        simulate_many(traces, FOCUS, engine=engine, shard_size=7)
        hits_before = engine.cache.stats.hits
        simulate_many(traces, FOCUS, engine=engine, shard_size=7)
        assert engine.cache.stats.hits == hits_before + 1

    def test_worker_pool_persists_across_batches(self, traces):
        with ExperimentEngine(workers=2) as engine:
            simulate_many(traces, FOCUS, engine=engine, shard_size=1)
            pool = engine._pool
            assert pool is not None
            simulate_many(traces, SYSTOLIC, engine=engine, shard_size=1)
            assert engine._pool is pool  # reused, not respawned
        assert engine._pool is None  # context exit released the workers
        # A closed engine lazily recreates the pool on next use.
        result = simulate_many(traces, FOCUS, engine=engine, shard_size=1)
        assert result == simulate_many(traces, FOCUS)
        engine.close()

    def test_sim_results_persist_in_disk_cache(self, traces, tmp_path):
        first = ExperimentEngine(cache=ResultCache(cache_dir=tmp_path))
        cold = simulate_many(traces, FOCUS, engine=first, shard_size=3)
        second = ExperimentEngine(cache=ResultCache(cache_dir=tmp_path))
        warm = simulate_many(traces, FOCUS, engine=second, shard_size=3)
        assert warm == cold
        assert second.stats.executed == 0
        assert second.cache.stats.disk_hits == 3


@pytest.mark.slow
class TestSimProgressEvents:
    """The sim job kind streams ordered progress like any other kind."""

    def test_event_counts_and_ordering(self):
        traces = make_traces(7, seed=5)
        events = []
        engine = ExperimentEngine(workers=2, progress=events.append)
        simulate_many(traces, FOCUS, engine=engine, shard_size=2)

        sim_events = [e for e in events if e.job.kind == "sim"]
        assert len(sim_events) == 8  # 4 shards x (started + completed)
        actions = [e.action for e in sim_events]
        assert actions.count("started") == 4
        assert actions.count("completed") == 4
        # Every shard starts before it completes.
        for job in {e.job for e in sim_events}:
            per_job = [e.action for e in sim_events if e.job == job]
            assert per_job.index("started") < per_job.index("completed")
        # Completion counters tick 1..4 and agree with the totals.
        completed = [e.completed for e in sim_events
                     if e.action == "completed"]
        assert sorted(completed) == [1, 2, 3, 4]
        assert all(e.total == 4 for e in sim_events)

    def test_warm_rerun_streams_cache_hits(self):
        traces = make_traces(5, seed=6)
        events = []
        engine = ExperimentEngine(progress=events.append)
        simulate_many(traces, FOCUS, engine=engine, shard_size=2)
        events.clear()
        simulate_many(traces, FOCUS, engine=engine, shard_size=2)
        assert [e.action for e in events] == ["cache-hit"] * 3
        assert events[-1].completed == events[-1].total == 3

    def test_describe_names_the_kind(self):
        job, = make_sim_jobs(make_traces(1), FOCUS, shard_size=1)
        assert job.describe().startswith("[sim] focus on trace/")


class TestDramNormalization:
    """A shared, possibly mutated DramModel cannot skew any path."""

    def test_mutated_frozen_instance_normalized(self):
        traces = make_traces(3, seed=8)
        shared = DramModel()
        object.__setattr__(shared, "efficiency", 0.5)  # defeats frozen=True
        serial = simulate_many(traces, FOCUS, shared)
        explicit = simulate_many(traces, FOCUS, DramModel(efficiency=0.5))
        assert serial == explicit
        engine = ExperimentEngine(workers=2)
        sharded = simulate_many(
            traces, FOCUS, shared, engine=engine, shard_size=1
        )
        assert sharded == serial

    def test_subclass_rejected(self):
        class TamperedDram(DramModel):
            def transfer_cycles(self, num_bytes, frequency_hz):
                return 0

        with pytest.raises(TypeError, match="DramModel"):
            simulate_many(make_traces(1), FOCUS, TamperedDram())
        with pytest.raises(TypeError, match="DramModel"):
            dram_config(TamperedDram())

    def test_canonical_dram_defaults_to_arch_bandwidth(self):
        dram = canonical_dram(None, FOCUS)
        assert dram == DramModel(bandwidth_gbs=FOCUS.dram_bandwidth_gbs)

    def test_config_roundtrip(self):
        dram = DramModel(bandwidth_gbs=32.0, efficiency=0.7)
        assert DramModel(**dict(dram_config(dram))) == dram


@pytest.mark.slow
class TestDriverShardingParity:
    """A driver's sharded simulation phase matches the serial default."""

    def test_fig11_sharded_equals_serial(self):
        from repro.engine.registry import run_plan
        from repro.eval.experiments import plan_fig11

        # Genuine serial baseline: assemble with no engine, so its
        # simulations use the in-process fold rather than sim jobs.
        plan = plan_fig11(num_samples=1)
        serial = plan.assemble(ExperimentEngine(workers=1).run(plan.jobs))

        sharded_engine = ExperimentEngine(workers=2, sim_shards=2)
        sharded = run_plan(plan_fig11(num_samples=1), sharded_engine)
        assert sharded == serial
        assert sharded_engine.stats.executed_by_kind.get("sim", 0) > 0
