"""Tests for repro.model.embedding (layout, codebooks, positions)."""

import numpy as np
import pytest

from repro.model.embedding import (
    COLOR_NAMES,
    KIND_NAMES,
    MOTION_NAMES,
    Codebooks,
    SubspaceLayout,
    positional_code,
)


class TestLayout:
    def test_slices_partition_hidden(self):
        layout = SubspaceLayout(64)
        slices = [layout.object_slice, layout.attribute_slice,
                  layout.texture_slice, layout.position_slice]
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert sorted(covered) == list(range(64))

    def test_attribute_halves(self):
        layout = SubspaceLayout(64)
        color, motion = layout.color_slice, layout.motion_slice
        assert color.stop == motion.start
        assert (color.start, motion.stop) == (
            layout.attribute_slice.start, layout.attribute_slice.stop
        )

    def test_rejects_bad_hidden(self):
        with pytest.raises(ValueError):
            SubspaceLayout(60)


class TestCodebooks:
    def test_code_shapes(self, tiny_codebooks, tiny_layout):
        quarter = tiny_layout.quarter
        assert tiny_codebooks.kind_codes.shape == (len(KIND_NAMES), quarter)
        assert tiny_codebooks.kind_probe_codes.shape == (
            len(KIND_NAMES), quarter
        )
        assert tiny_codebooks.color_codes.shape == (
            len(COLOR_NAMES), quarter // 2
        )
        assert tiny_codebooks.motion_codes.shape == (
            len(MOTION_NAMES), quarter // 2
        )

    def test_codes_unit_norm(self, tiny_codebooks):
        for codes in (tiny_codebooks.kind_codes, tiny_codebooks.color_codes,
                      tiny_codebooks.motion_codes):
            np.testing.assert_allclose(
                np.linalg.norm(codes, axis=1), 1.0, rtol=1e-5
            )

    def test_confusable_pairs(self, tiny_codebooks):
        # Odd codes are near their even predecessor; cross-pair cosines
        # stay much lower.
        colors = tiny_codebooks.color_codes
        paired = float(colors[0] @ colors[1])
        unpaired = float(colors[0] @ colors[2])
        assert paired > 0.8
        assert abs(unpaired) < paired

    def test_association_matrix_maps_content_to_probe(self):
        # Use a production-sized layout: 12 kinds need enough object
        # dims to be near-orthogonal for clean associative recall.
        codebooks = Codebooks(SubspaceLayout(192), seed=0)
        matrix = codebooks.association_matrix()
        for k in range(len(KIND_NAMES)):
            mapped = codebooks.kind_codes[k] @ matrix
            probe = codebooks.kind_probe_codes[k]
            sim = mapped @ probe / np.linalg.norm(mapped)
            assert sim > 0.6, f"kind {k} maps poorly ({sim:.2f})"

    def test_decode_slot_roundtrip(self, tiny_codebooks):
        for slot, names in (("color", COLOR_NAMES), ("motion", MOTION_NAMES)):
            for index in range(len(names)):
                code = tiny_codebooks.slot_codes(slot)[index]
                assert tiny_codebooks.decode_slot(code, slot) == index

    def test_decode_zero_vector(self, tiny_codebooks):
        zero = np.zeros(tiny_codebooks.color_codes.shape[1])
        assert tiny_codebooks.decode_slot(zero, "color") == 0

    def test_unknown_slot_raises(self, tiny_codebooks):
        with pytest.raises(ValueError):
            tiny_codebooks.slot_codes("size")
        with pytest.raises(ValueError):
            tiny_codebooks.slot_names("size")

    def test_seeded_reproducibility(self, tiny_layout):
        a = Codebooks(tiny_layout, seed=3)
        b = Codebooks(tiny_layout, seed=3)
        np.testing.assert_array_equal(a.kind_codes, b.kind_codes)


class TestPositionalCode:
    def test_unit_norm(self):
        code = positional_code(1, 2, 3, 48)
        assert np.linalg.norm(code) == pytest.approx(1.0, rel=1e-5)

    def test_distinct_positions_distinct_codes(self):
        a = positional_code(0, 1, 1, 48)
        b = positional_code(0, 1, 2, 48)
        assert not np.allclose(a, b)

    def test_same_position_same_code(self):
        np.testing.assert_array_equal(
            positional_code(2, 3, 1, 48), positional_code(2, 3, 1, 48)
        )

    def test_neighbours_more_similar_than_distant(self):
        base = positional_code(0, 2, 2, 48)
        near = positional_code(0, 2, 3, 48)
        far = positional_code(0, 2, 9, 48)
        assert base @ near > base @ far
