"""Tests for the durable run store (:mod:`repro.store`).

Covers the SQLite store itself (run/event/report round-trips, restart
recovery, schema guards), the serving log's write-through bridging
(``Last-Event-ID`` resume stays lossless past ring eviction), a
hypothesis property suite pinning byte-identical SSE/JSON-lines replay
— including mid-replay resume — for arbitrary stored runs, the HTTP
frontend recording through the store and serving stored runs after a
restart, and the ``repro replay`` / ``repro runs`` CLI entry points.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.engine import ExperimentEngine
from repro.engine.jobs import EvalJob, register_job_kind
from repro.engine.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentPlan,
    register,
)
from repro.serve import AsyncExperimentEngine, events as codec
from repro.serve.server import RunLog, ServeApp
from repro.store import (
    DEFAULT_STORE_PATH,
    RunStore,
    StoreError,
    iter_frames,
    replay_run,
)

TEST_KIND = "store-test"
TINY_NAME = "_store_tiny"


@register_job_kind(TEST_KIND)
def _execute_store_test(job: EvalJob) -> dict:
    return {"method": job.method, "samples": job.num_samples}


@pytest.fixture
def tiny_experiment():
    """Register a fast throwaway experiment; clean the registry after."""

    def plan(num_samples: int = 2, seed: int = 0, **_ignored):
        jobs = tuple(
            EvalJob(
                model="tiny", dataset="synthetic", method=f"job{i}",
                num_samples=num_samples, seed=seed, kind=TEST_KIND,
            )
            for i in range(3)
        )
        return ExperimentPlan(
            jobs=jobs,
            assemble=lambda results: sorted(
                results[job]["method"] for job in jobs
            ),
        )

    register(TINY_NAME, "store-layer test experiment")(plan)
    yield TINY_NAME
    EXPERIMENT_REGISTRY.pop(TINY_NAME, None)


def _progress(seq: int, **detail) -> dict:
    """A minimal progress-shaped wire event (unstamped)."""
    return {
        "schema": codec.EVENT_SCHEMA_VERSION, "event": "progress",
        "seq": seq, "detail": detail,
    }


def _stamp(event: dict, event_id: int) -> dict:
    stamped = dict(event)
    stamped["id"] = event_id
    return stamped


def _fill(store: RunStore, run_id: str, count: int) -> list[dict]:
    """Create a run and append ``count`` stamped events directly."""
    store.create_run(run_id, ["x"], {"seed": 0}, created_at=1000.0)
    stamped = [_stamp(_progress(i), i) for i in range(1, count + 1)]
    for event in stamped:
        store.append_event(run_id, event)
    return stamped


class TestRunStore:
    """The SQLite tier on its own: rows in, rows out, guards."""

    def test_run_round_trip_and_listing_order(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.create_run(
                "old", ["fig9"], {"seed": 1}, created_at=100.0
            )
            store.create_run(
                "new", ["table2", "fig13"], {"seed": 2}, created_at=200.0
            )
            run = store.get_run("old")
            assert run["experiments"] == ["fig9"]
            assert run["params"] == {"seed": 1}
            assert run["status"] == "running"
            assert run["error"] is None
            assert run["event_schema"] == codec.EVENT_SCHEMA_VERSION
            assert run["last_event_id"] == 0
            assert store.get_run("missing") is None
            # newest first
            assert [r["run_id"] for r in store.list_runs()] == (
                ["new", "old"]
            )
            assert [r["run_id"] for r in store.list_runs(limit=1)] == (
                ["new"]
            )

    def test_events_round_trip_verbatim(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            stamped = _fill(store, "r", 5)
            assert store.last_event_id("r") == 5
            assert store.events_since("r") == stamped
            assert store.events_since("r", last_id=3) == stamped[3:]
            assert store.events_since("r", last_id=1, limit=2) == (
                stamped[1:3]
            )
            # the stored payload is the canonical JSON line, byte-exact
            for (event_id, name, payload), event in zip(
                store.raw_events_since("r"), stamped
            ):
                assert event_id == event["id"]
                assert name == "progress"
                assert payload == codec.to_json(event)
            # chunked iteration covers the same rows in order
            assert list(store.iter_raw_events("r", chunk=2)) == (
                store.raw_events_since("r")
            )

    def test_append_requires_a_stamped_id(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.create_run("r", ["x"], {})
            with pytest.raises(StoreError, match="integer 'id'"):
                store.append_event("r", _progress(1))

    def test_finish_records_status_and_reports(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            _fill(store, "r", 2)
            store.finish_run(
                "r", "done", elapsed_s=1.25,
                reports={"fig9": "REPORT\n", "table2": "TABLE\n"},
            )
            run = store.get_run("r")
            assert run["status"] == "done"
            assert run["elapsed_s"] == 1.25
            assert store.reports("r") == {
                "fig9": "REPORT\n", "table2": "TABLE\n",
            }
            assert store.report_digests("r") == {
                "fig9": {"sha256": codec.report_digest("REPORT\n"),
                         "chars": 7},
                "table2": {"sha256": codec.report_digest("TABLE\n"),
                           "chars": 6},
            }

    def test_finish_guards(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.create_run("r", ["x"], {})
            with pytest.raises(StoreError, match="terminal"):
                store.finish_run("r", "running", elapsed_s=0.0)
            with pytest.raises(StoreError, match="no such run"):
                store.finish_run("ghost", "done", elapsed_s=0.0)

    def test_recover_interrupted_fails_stale_running_rows(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.create_run("a", ["x"], {}, created_at=1.0)
            store.create_run("b", ["x"], {}, created_at=2.0)
            store.create_run("c", ["x"], {}, created_at=3.0)
            store.finish_run("b", "done", elapsed_s=0.5)
            assert sorted(store.recover_interrupted()) == ["a", "c"]
            assert store.get_run("a")["status"] == "failed"
            assert "interrupted" in store.get_run("a")["error"]
            assert store.get_run("b")["status"] == "done"
            # idempotent: a second sweep finds nothing
            assert store.recover_interrupted() == []

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with RunStore(path) as store:
            stamped = _fill(store, "r", 3)
            store.finish_run("r", "done", elapsed_s=0.1,
                            reports={"x": "text"})
        with RunStore(path) as store:
            assert store.events_since("r") == stamped
            assert store.get_run("r")["status"] == "done"
            assert store.reports("r") == {"x": "text"}

    def test_newer_store_schema_rejected(self, tmp_path):
        path = tmp_path / "s.sqlite"
        RunStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE store_meta SET value='999' "
            "WHERE key='schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer than supported"):
            RunStore(path)


class TestWriteThroughRunLog:
    """The serving log as a cache over the store: lossless resume."""

    def test_evicted_prefix_is_bridged_from_the_store(self, tmp_path):
        async def scenario():
            with RunStore(tmp_path / "s.sqlite") as store:
                store.create_run("r", ["x"], {})
                log = RunLog(capacity=2, store=store, run_id="r")
                stamped = [
                    await log.append(_progress(i)) for i in range(1, 7)
                ]
                # the ring alone retains only the last 2 ...
                assert log._ring_since(0)[1] == 4
                # ... but resume sees everything, with no gap
                assert log.events_since(0) == (stamped, 0)
                assert log.events_since(3) == (stamped[3:], 0)
                # ids the store already served don't repeat
                assert log.events_since(6) == ([], 0)

        asyncio.run(scenario())

    def test_partial_bridge_advances_without_gaps(self, tmp_path):
        async def scenario():
            with RunStore(tmp_path / "s.sqlite") as store:
                store.create_run("r", ["x"], {})
                log = RunLog(capacity=1, store=store, run_id="r")
                log.STORE_CHUNK = 2  # force several bridging queries
                stamped = [
                    await log.append(_progress(i)) for i in range(1, 9)
                ]
                collected, last_id = [], 0
                while last_id < log.last_id:
                    batch, dropped = log.events_since(last_id)
                    assert dropped == 0
                    assert batch, "resume stalled before the tail"
                    collected.extend(batch)
                    last_id = batch[-1]["id"]
                assert collected == stamped

        asyncio.run(scenario())

    def test_without_a_store_overflow_still_reports_the_gap(self):
        async def scenario():
            log = RunLog(capacity=2)
            for i in range(1, 6):
                await log.append(_progress(i))
            retained, dropped = log.events_since(0)
            assert dropped == 3
            assert [e["id"] for e in retained] == [4, 5]

        asyncio.run(scenario())

    def test_sick_store_is_shed_and_the_stream_survives(
        self, tmp_path, capsys
    ):
        async def scenario():
            store = RunStore(tmp_path / "s.sqlite")
            store.create_run("r", ["x"], {})
            store.close()  # writes now raise ProgrammingError
            log = RunLog(capacity=4, store=store, run_id="r")
            stamped = [
                await log.append(_progress(i)) for i in range(1, 4)
            ]
            assert log.store is None  # durable tier shed on failure
            assert log.events_since(0) == (stamped, 0)

        asyncio.run(scenario())
        assert "run-store write failed" in capsys.readouterr().err


# -- hypothesis: replay parity for arbitrary stored runs --------------

_SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_DETAILS = st.dictionaries(
    st.text(min_size=1, max_size=8), _SCALARS, max_size=3
)


@st.composite
def _recorded_runs(draw):
    """(wire events, ring capacity, resume cut) for one stored run."""
    count = draw(st.integers(min_value=1, max_value=25))
    events = [
        {
            "schema": codec.EVENT_SCHEMA_VERSION, "event": "progress",
            "seq": seq, "detail": draw(_DETAILS),
        }
        for seq in range(1, count + 1)
    ]
    capacity = draw(st.integers(min_value=1, max_value=count + 2))
    cut = draw(st.integers(min_value=0, max_value=count))
    return events, capacity, cut


class TestReplayParity:
    """For any stored run, replay is byte-identical to the live stream
    — full, resumed mid-stream, and at every framing."""

    @given(_recorded_runs())
    @settings(max_examples=25, deadline=None)
    def test_replay_is_byte_identical_including_resume(self, case):
        events, capacity, cut = case
        with tempfile.TemporaryDirectory() as tmp:
            with RunStore(Path(tmp) / "s.sqlite") as store:
                store.create_run("r", ["x"], {})

                async def record():
                    log = RunLog(capacity, store=store, run_id="r")
                    return [await log.append(e) for e in events], log

                stamped, log = asyncio.run(record())

                # what a live subscriber received, byte for byte
                live_sse = codec.SSE_RETRY_PREAMBLE + "".join(
                    codec.format_sse(e) for e in stamped
                )
                live_jsonl = "".join(
                    codec.to_json(e) + "\n" for e in stamped
                )
                assert replay_run(store, "r") == live_sse
                assert replay_run(store, "r", jsonl=True) == live_jsonl

                # mid-replay resume emits exactly the recorded suffix
                suffix = stamped[cut:]
                assert replay_run(store, "r", last_event_id=cut) == (
                    codec.SSE_RETRY_PREAMBLE
                    + "".join(codec.format_sse(e) for e in suffix)
                )
                assert replay_run(
                    store, "r", jsonl=True, last_event_id=cut
                ) == "".join(codec.to_json(e) + "\n" for e in suffix)

                # chunk size is invisible in the output
                assert "".join(
                    iter_frames(store, "r", chunk=3)
                ) == live_sse

                # and live resume through the write-through log is
                # lossless regardless of ring capacity
                assert log.events_since(cut) == (suffix, 0)


async def _start(app: ServeApp):
    await app.engine.warm_up()
    server = await asyncio.start_server(
        app.handle_client, "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


async def _request(
    port: int, method: str, path: str,
    body: dict | None = None, headers: dict | None = None,
) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write((head + "\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, response_body


async def _json_request(port, method, path, body=None, headers=None):
    status, payload = await _request(port, method, path, body, headers)
    return status, json.loads(payload)


@pytest.mark.slow
class TestStoreBackedServer:
    """The HTTP frontend recording through (and serving from) a store."""

    def test_record_replay_and_restart_resume(
        self, tiny_experiment, tmp_path
    ):
        store_path = tmp_path / "runs.sqlite"

        async def record():
            store = RunStore(store_path)
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()),
                ring_size=2, store=store,
            )
            server, port = await _start(app)
            try:
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment], "samples": 2},
                )
                run_id = run["run_id"]
                _, sse = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                _, jsonl = await _request(
                    port, "GET", f"/runs/{run_id}/events?format=jsonl"
                )
                status, result = await _json_request(
                    port, "GET", f"/runs/{run_id}/result"
                )
                assert status == 200
                return run_id, sse, jsonl, result
            finally:
                server.close()
                await server.wait_closed()
                await app.shutdown()
                store.close()

        run_id, live_sse, live_jsonl, live_result = asyncio.run(record())

        # Despite a 2-slot ring, the store keeps resume-from-0 gapless.
        stream = codec.parse_sse(live_sse.decode())
        assert [e["id"] for e in stream] == (
            list(range(1, len(stream) + 1))
        )
        assert all(e["event"] != "gap" for e in stream)
        assert stream[-1]["event"] == "run-done"

        # Offline replay reproduces the live bytes exactly.
        with RunStore(store_path) as store:
            assert replay_run(store, run_id).encode() == live_sse
            assert replay_run(
                store, run_id, jsonl=True
            ).encode() == live_jsonl
            assert store.recover_interrupted() == []  # finished cleanly

        cut = len(stream) // 2

        async def restarted():
            store = RunStore(store_path)
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()), store=store
            )
            server, port = await _start(app)
            try:
                status, sse = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                assert status == 200
                _, suffix = await _request(
                    port, "GET", f"/runs/{run_id}/events",
                    headers={"Last-Event-ID": str(cut)},
                )
                _, info = await _json_request(
                    port, "GET", f"/runs/{run_id}"
                )
                _, result = await _json_request(
                    port, "GET", f"/runs/{run_id}/result"
                )
                _, listing = await _json_request(port, "GET", "/runs")
                cancel_status, _ = await _json_request(
                    port, "DELETE", f"/runs/{run_id}"
                )
                return sse, suffix, info, result, listing, cancel_status
            finally:
                server.close()
                await server.wait_closed()
                await app.shutdown()
                store.close()

        sse, suffix, info, result, listing, cancel_status = (
            asyncio.run(restarted())
        )
        # A fresh process on the same store streams the same bytes ...
        assert sse == live_sse
        # ... and Last-Event-ID resume survives the restart lossless.
        assert suffix == codec.SSE_RETRY_PREAMBLE.encode() + b"".join(
            codec.format_sse(e).encode() for e in stream[cut:]
        )
        assert info["stored"] is True and info["status"] == "done"
        assert result["experiments"] == live_result["experiments"]
        assert result["reports"] == live_result["reports"]
        stored_ids = [r["run_id"] for r in listing["stored_runs"]]
        assert run_id in stored_ids
        assert cancel_status == 409  # stored runs cannot be cancelled

    def test_interrupted_run_prefix_stays_replayable(self, tmp_path):
        # Simulate a crash mid-run: events recorded, no terminal row.
        store_path = tmp_path / "runs.sqlite"
        with RunStore(store_path) as store:
            stamped = _fill(store, "dead", 4)

        async def restarted():
            store = RunStore(store_path)
            assert store.recover_interrupted() == ["dead"]
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()), store=store
            )
            server, port = await _start(app)
            try:
                status, sse = await _request(
                    port, "GET", "/runs/dead/events"
                )
                result_status, body = await _json_request(
                    port, "GET", "/runs/dead/result"
                )
                return status, sse, result_status, body
            finally:
                server.close()
                await server.wait_closed()
                await app.shutdown()
                store.close()

        status, sse, result_status, body = asyncio.run(restarted())
        assert status == 200
        assert codec.parse_sse(sse.decode()) == stamped
        assert result_status == 500
        assert "interrupted" in body["error"]


class TestCliEntryPoints:
    """``repro replay`` / ``repro runs`` and serve-flag validation."""

    @pytest.fixture
    def recorded(self, tmp_path):
        """A finished run recorded straight into a store file."""
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            stamped = _fill(store, "run-a", 3)
            store.finish_run(
                "run-a", "done", elapsed_s=0.2,
                reports={"fig9": "REPORT\n"},
            )
            store.create_run(
                "run-b", ["table2"], {}, created_at=2000.0
            )
            store.finish_run("run-b", "failed", elapsed_s=0.1,
                            error="boom")
        return path, stamped

    def test_replay_emits_recorded_frames(self, recorded, capsys):
        path, stamped = recorded
        assert cli_main(
            ["replay", "run-a", "--store-path", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert out == codec.SSE_RETRY_PREAMBLE + "".join(
            codec.format_sse(e) for e in stamped
        )

    def test_replay_jsonl_resume_and_output_file(
        self, recorded, tmp_path, capsys
    ):
        path, stamped = recorded
        target = tmp_path / "replayed.jsonl"
        assert cli_main([
            "replay", "run-a", "--store-path", str(path),
            "--format", "jsonl", "--last-event-id", "1",
            "--output", str(target),
        ]) == 0
        assert capsys.readouterr().out == ""
        assert target.read_text() == "".join(
            codec.to_json(e) + "\n" for e in stamped[1:]
        )

    def test_replay_unknown_run_lists_recent(self, recorded, capsys):
        path, _ = recorded
        assert cli_main(
            ["replay", "ghost", "--store-path", str(path)]
        ) == 2
        err = capsys.readouterr().err
        assert "no run 'ghost'" in err and "run-a" in err

    def test_replay_missing_store_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no run store"):
            cli_main([
                "replay", "x",
                "--store-path", str(tmp_path / "absent.sqlite"),
            ])

    def test_runs_listing_inspection_and_latest(self, recorded, capsys):
        path, _ = recorded
        assert cli_main(["runs", "--store-path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run-a" in out and "run-b" in out

        assert cli_main(
            ["runs", "--store-path", str(path), "--latest"]
        ) == 0
        assert capsys.readouterr().out.strip() == "run-b"  # newest

        assert cli_main(
            ["runs", "run-a", "--store-path", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert codec.report_digest("REPORT\n") in out

        assert cli_main(
            ["runs", "--store-path", str(path), "--json"]
        ) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in listed] == ["run-b", "run-a"]
        assert listed[1]["last_event_id"] == 3

        assert cli_main(
            ["runs", "ghost", "--store-path", str(path)]
        ) == 2

    def test_runs_empty_store(self, tmp_path, capsys):
        path = tmp_path / "empty.sqlite"
        RunStore(path).close()
        assert cli_main(["runs", "--store-path", str(path)]) == 1
        assert "empty" in capsys.readouterr().err

    def test_serve_flag_validation(self):
        from repro.serve.server import build_parser, main as serve_main

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--ring-size", "0"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--ring-size", "-3"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--ring-size", "many"])
        assert parser.parse_args(
            ["--ring-size", "5"]
        ).ring_size == 5
        # --no-store and --store-path are mutually exclusive
        with pytest.raises(SystemExit):
            serve_main(["--no-store", "--store-path", "x.sqlite"])
