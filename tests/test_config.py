"""Tests for repro.config.FocusConfig."""

import pytest

from repro.config import DEFAULT_CONFIG, FocusConfig


class TestValidation:
    def test_default_is_table1(self):
        assert DEFAULT_CONFIG.block_frames == 2
        assert DEFAULT_CONFIG.block_height == 2
        assert DEFAULT_CONFIG.block_width == 2
        assert DEFAULT_CONFIG.vector_size == 32
        assert DEFAULT_CONFIG.similarity_threshold == 0.9
        assert DEFAULT_CONFIG.m_tile == 1024
        assert DEFAULT_CONFIG.n_tile == 32
        assert DEFAULT_CONFIG.scatter_accumulators == 64

    def test_block_size(self):
        assert DEFAULT_CONFIG.block_size == 8
        assert FocusConfig(block_frames=1, block_height=3,
                           block_width=3).block_size == 9

    def test_rejects_bad_vector_size(self):
        with pytest.raises(ValueError):
            FocusConfig(vector_size=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FocusConfig(similarity_threshold=0.0)
        with pytest.raises(ValueError):
            FocusConfig(similarity_threshold=1.5)

    def test_rejects_bad_tiles(self):
        with pytest.raises(ValueError):
            FocusConfig(m_tile=0)
        with pytest.raises(ValueError):
            FocusConfig(n_tile=-1)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            FocusConfig(block_frames=0)

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            FocusConfig(retention_schedule={-1: 0.5})
        with pytest.raises(ValueError):
            FocusConfig(retention_schedule={3: 0.0})
        with pytest.raises(ValueError):
            FocusConfig(retention_schedule={3: 1.5})


class TestSchedule:
    def test_default_schedule_is_paper(self):
        assert DEFAULT_CONFIG.retention_schedule == {
            3: 0.40, 6: 0.30, 9: 0.20, 18: 0.15, 26: 0.10,
        }

    def test_identity_scale(self):
        scaled = DEFAULT_CONFIG.scaled_schedule(28)
        assert scaled == DEFAULT_CONFIG.retention_schedule

    def test_scaled_to_half_depth(self):
        scaled = DEFAULT_CONFIG.scaled_schedule(14)
        # Indices remapped proportionally; ratios preserved.
        assert set(scaled.values()) <= {0.40, 0.30, 0.20, 0.15, 0.10}
        assert all(0 <= layer < 14 for layer in scaled)

    def test_scaled_monotone_ratios(self):
        scaled = DEFAULT_CONFIG.scaled_schedule(12)
        layers = sorted(scaled)
        ratios = [scaled[layer] for layer in layers]
        assert ratios == sorted(ratios, reverse=True)

    def test_collision_keeps_smaller_ratio(self):
        config = FocusConfig(retention_schedule={4: 0.4, 5: 0.2},
                             schedule_depth=28)
        scaled = config.scaled_schedule(6)
        # Both entries land on layer 1; pruning is monotone.
        assert scaled == {1: 0.2}

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.scaled_schedule(0)


class TestOverrides:
    def test_with_overrides(self):
        other = DEFAULT_CONFIG.with_overrides(vector_size=16)
        assert other.vector_size == 16
        assert other.m_tile == DEFAULT_CONFIG.m_tile
        assert DEFAULT_CONFIG.vector_size == 32

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.vector_size = 8  # type: ignore[misc]
