"""Tests for repro.utils (rng and fp16 helpers)."""

import numpy as np

from repro.utils.fp import quantize_fp16, to_fp16
from repro.utils.rng import rng_for


class TestRng:
    def test_deterministic(self):
        a = rng_for(0, "x").standard_normal(8)
        b = rng_for(0, "x").standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_label_independence(self):
        a = rng_for(0, "x").standard_normal(8)
        b = rng_for(0, "y").standard_normal(8)
        assert not np.array_equal(a, b)

    def test_seed_independence(self):
        a = rng_for(0, "x").standard_normal(8)
        b = rng_for(1, "x").standard_normal(8)
        assert not np.array_equal(a, b)

    def test_multiple_labels(self):
        a = rng_for(0, "x", 1).standard_normal(4)
        b = rng_for(0, "x", 2).standard_normal(4)
        assert not np.array_equal(a, b)


class TestFp16:
    def test_returns_float32(self):
        out = to_fp16(np.array([1.0, 2.0], dtype=np.float64))
        assert out.dtype == np.float32

    def test_rounding_visible(self):
        # 1 + 2^-12 is not representable in fp16 (10 mantissa bits).
        value = np.array([1.0 + 2.0**-12], dtype=np.float32)
        assert to_fp16(value)[0] == 1.0

    def test_exact_values_preserved(self):
        values = np.array([0.5, -2.0, 0.0, 1024.0], dtype=np.float32)
        np.testing.assert_array_equal(to_fp16(values), values)

    def test_quantize_disabled(self):
        value = np.array([1.0 + 2.0**-12], dtype=np.float32)
        out = quantize_fp16(value, enabled=False)
        assert out[0] != 1.0

    def test_idempotent(self):
        x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        once = to_fp16(x)
        np.testing.assert_array_equal(to_fp16(once), once)
