"""Tests for repro.model.functional (numeric primitives)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.model.functional import (
    causal_mask,
    cosine_similarity,
    cosine_similarity_matrix,
    gelu,
    rms_norm,
    softmax,
)

finite_rows = hnp.arrays(
    np.float32, (4, 8),
    elements=st.floats(-10, 10, width=32, allow_nan=False),
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32)
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    def test_handles_large_logits(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_neg_inf_mask(self):
        out = softmax(np.array([[0.0, -np.inf]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    @given(finite_rows)
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance(self, x):
        shifted = softmax(x + 3.0)
        np.testing.assert_allclose(softmax(x), shifted, atol=1e-5)


class TestRmsNorm:
    def test_output_rms_is_one(self):
        x = np.random.default_rng(1).standard_normal((6, 32)).astype(np.float32)
        out = rms_norm(x)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-4)

    def test_direction_preserved(self):
        x = np.array([[3.0, 4.0]], dtype=np.float32)
        out = rms_norm(x)
        np.testing.assert_allclose(out[0] / np.linalg.norm(out[0]),
                                   x[0] / np.linalg.norm(x[0]), rtol=1e-5)

    def test_scale_invariant_direction(self):
        x = np.random.default_rng(2).standard_normal((1, 16)).astype(np.float32)
        np.testing.assert_allclose(rms_norm(x), rms_norm(5 * x), rtol=1e-4)

    def test_zero_input_safe(self):
        out = rms_norm(np.zeros((2, 8), dtype=np.float32))
        assert np.isfinite(out).all()


class TestGelu:
    def test_zero_at_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_monotone_on_positive(self):
        x = np.linspace(0, 5, 50)
        out = gelu(x)
        assert (np.diff(out) > 0).all()

    def test_asymptotes(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


class TestCausalMask:
    def test_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert (np.tril(np.ones((4, 4))) == (mask == 0)).all()
        assert np.isneginf(mask[0, 1])

    def test_single_token(self):
        assert causal_mask(1).item() == 0.0


class TestCosine:
    def test_self_similarity(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_antiparallel(self):
        assert cosine_similarity([1.0, 1.0], [-1.0, -1.0]) == pytest.approx(-1.0)

    def test_matrix_matches_scalar(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((3, 5)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        mat = cosine_similarity_matrix(a, b)
        assert mat.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert mat[i, j] == pytest.approx(
                    cosine_similarity(a[i], b[j]), abs=1e-5
                )

    @given(hnp.arrays(np.float32, (5,),
                      elements=st.floats(-100, 100, width=32)),
           hnp.arrays(np.float32, (5,),
                      elements=st.floats(-100, 100, width=32)))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, a, b):
        sim = cosine_similarity(a, b)
        assert -1.0001 <= sim <= 1.0001
