"""Tests for the evaluation harness (metrics, runner)."""

import numpy as np
import pytest

from repro.accel.trace import GemmTrace, ModelTrace
from repro.config import FocusConfig
from repro.eval.metrics import (
    EvalResult,
    computation_sparsity,
    dense_macs_for,
)
from repro.eval.runner import (
    METHOD_REGISTRY,
    ModelCache,
    evaluate_samples,
    make_plugin,
)


class TestMetrics:
    def test_dense_sparsity_is_zero(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample)
        sparsity = computation_sparsity(result.trace, tiny_model.config,
                                        tiny_sample)
        assert sparsity == pytest.approx(0.0, abs=1e-9)

    def test_dense_macs_for(self, tiny_model_config, tiny_sample):
        expected = tiny_model_config.dense_macs(
            tiny_sample.num_visual_tokens, tiny_sample.num_text_tokens
        )
        assert dense_macs_for(tiny_model_config, tiny_sample) == expected

    def test_eval_result_percentages(self):
        result = EvalResult(model="m", dataset="d", method="x",
                            correct=[True, False],
                            sparsities=[0.5, 0.7])
        assert result.accuracy == 50.0
        assert result.sparsity == pytest.approx(60.0)

    def test_empty_result(self):
        result = EvalResult(model="m", dataset="d", method="x")
        assert result.accuracy == 0.0
        assert result.sparsity == 0.0

    def test_merged_trace(self):
        result = EvalResult(model="m", dataset="d", method="x")
        for _ in range(2):
            trace = ModelTrace(initial_tokens=4)
            trace.add(GemmTrace(name="fc1", layer=0, m=2, k=2, n=2))
            result.traces.append(trace)
        merged = result.merged_trace
        assert len(merged.gemms) == 2
        assert merged.initial_tokens == 8


class TestRunner:
    def test_registry_covers_paper_methods(self):
        expected = {"dense", "framefusion", "adaptiv", "cmc", "focus",
                    "focus-sec", "focus-sic", "focus-token", "focus-topp"}
        assert expected == set(METHOD_REGISTRY)

    def test_make_plugin_unknown(self, tiny_model):
        with pytest.raises(KeyError):
            make_plugin("tome", tiny_model)

    def test_make_plugin_each(self, tiny_model):
        for name in METHOD_REGISTRY:
            plugin = make_plugin(name, tiny_model, FocusConfig(m_tile=64))
            assert plugin is not None

    def test_evaluate_samples_paired(self, tiny_model, tiny_samples):
        config = FocusConfig(m_tile=64)
        a = evaluate_samples(tiny_model, tiny_samples, "focus", config)
        b = evaluate_samples(tiny_model, tiny_samples, "focus", config)
        assert a.correct == b.correct
        np.testing.assert_allclose(a.sparsities, b.sparsities)

    def test_evaluate_samples_counts(self, tiny_model, tiny_samples):
        result = evaluate_samples(tiny_model, tiny_samples, "dense")
        assert len(result.correct) == len(tiny_samples)
        assert len(result.traces) == len(tiny_samples)

    def test_model_cache_identity(self):
        a = ModelCache.get("llava-video")
        b = ModelCache.get("llava-video")
        assert a is b
