"""Tests for the generative scenario families (:mod:`repro.workloads.
scenarios`).

Covers the spec grammar (canonicalization, digests, validation), the
prefix-stability contract of every family (hypothesis: span ``(0, n)``
is a byte-identical prefix of span ``(0, m)`` for random seeds and
params), and the engine-level consequence: growing ``--samples`` on a
warm cache re-executes only the suffix shards, zero prefix jobs —
mirroring ``test_eval_sharding.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ExperimentEngine, ResultCache
from repro.engine import registry
from repro.eval import reporting  # noqa: F401  (attaches formatters)
from repro.eval.eval_shards import EVAL_SHARD_KIND
from repro.workloads import (
    Sample,
    is_scenario_name,
    make_dataset_span,
    parse_scenario,
    scenario_names,
)

FAMILIES = ("mtconv", "stream", "tenantmix")


def assert_sample_prefix(shorter: list[Sample], longer: list[Sample]):
    """Every sample of ``shorter`` is byte-identical in ``longer``."""
    assert len(shorter) <= len(longer)
    for i, (a, b) in enumerate(zip(shorter, longer)):
        assert a.visual_tokens.tobytes() == b.visual_tokens.tobytes(), i
        assert a.text_tokens.tobytes() == b.text_tokens.tobytes(), i
        assert a.positions.tobytes() == b.positions.tobytes(), i
        assert a.scene == b.scene, i
        assert a.question == b.question, i


class TestSpecGrammar:
    def test_families_registered(self):
        assert scenario_names() == sorted(FAMILIES)

    def test_canonical_name_fills_defaults_and_sorts(self):
        spec = parse_scenario("mtconv:turns=2,seed=3")
        assert spec.name == \
            "mtconv:seed=3,history=4,profile=videomme,turns=2"
        assert spec.family == "mtconv"
        assert spec.seed == 3
        assert spec.param_map["turns"] == 2

    def test_spellings_share_one_content_address(self):
        variants = [
            "mtconv:turns=2,seed=3",
            "mtconv:seed=3,turns=2",
            "mtconv: seed=3 , turns=2,",
            "mtconv:seed=3,turns=2,history=4,profile=videomme",
        ]
        specs = [parse_scenario(v) for v in variants]
        assert len({s.name for s in specs}) == 1
        assert len({s.digest for s in specs}) == 1
        # Round trip: the canonical name parses back to itself.
        assert parse_scenario(specs[0].name).name == specs[0].name

    def test_digest_is_hex_and_param_sensitive(self):
        a, b = parse_scenario("mtconv"), parse_scenario("mtconv:turns=9")
        assert a.digest != b.digest
        assert len(a.digest) == 16
        int(a.digest, 16)

    @pytest.mark.parametrize("bad", [
        "",
        "nope",
        "nope:seed=1",
        "mtconv:bogus=1",
        "mtconv:turns",
        "mtconv:turns=",
        "mtconv:turns=x",
        "mtconv:seed=x",
        "mtconv:turns=0",
        "mtconv:history=0",
        "mtconv:profile=unknown",
        "stream:churn=0",
        "stream:churn=1.5",
        "stream:churn=nan",
        "stream:frames=0",
        "tenantmix:tenants=0",
        "tenantmix:tenants=99",
        "tenantmix:burst=0",
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_scenario(bad)

    def test_is_scenario_name(self):
        assert is_scenario_name("mtconv")
        assert is_scenario_name("stream:churn=0.5")
        assert not is_scenario_name("videomme")
        assert not is_scenario_name(42)


SPEC_STRATEGY = st.one_of(
    st.builds(
        "mtconv:seed={},turns={},history={},profile={}".format,
        st.integers(0, 3), st.integers(1, 3), st.integers(1, 4),
        st.sampled_from(["vqav2", "videomme"]),
    ),
    st.builds(
        "stream:seed={},frames={},churn={}".format,
        st.integers(0, 3), st.integers(2, 8),
        st.sampled_from([0.1, 0.5, 1.0]),
    ),
    st.builds(
        "tenantmix:seed={},tenants={},burst={}".format,
        st.integers(0, 3), st.integers(1, 4), st.integers(1, 3),
    ),
)


class TestPrefixStability:
    @settings(max_examples=12, deadline=None)
    @given(
        spec=SPEC_STRATEGY,
        seed=st.integers(0, 2),
        n=st.integers(1, 4),
        extra=st.integers(1, 4),
    )
    def test_shorter_span_is_byte_identical_prefix(
        self, tiny_layout, spec, seed, n, extra
    ):
        short = make_dataset_span(spec, tiny_layout, 0, n, seed=seed)
        long = make_dataset_span(spec, tiny_layout, 0, n + extra,
                                 seed=seed)
        assert_sample_prefix(short, long)

    def test_mid_span_matches_full_generation(self, tiny_layout):
        for spec in ("mtconv:turns=2", "stream:frames=4", "tenantmix"):
            full = make_dataset_span(spec, tiny_layout, 0, 6)
            mid = make_dataset_span(spec, tiny_layout, 2, 5)
            assert_sample_prefix(mid, full[2:5])

    def test_mtconv_kv_history_grows_within_a_conversation(
        self, tiny_layout
    ):
        turns = make_dataset_span("mtconv:turns=3,history=4",
                                  tiny_layout, 0, 3)
        lengths = [s.num_text_tokens for s in turns]
        assert lengths[0] < lengths[1] < lengths[2]
        # All turns share the conversation's video.
        assert turns[0].visual_tokens.tobytes() == \
            turns[2].visual_tokens.tobytes()

    def test_stream_churn_preserves_token_budget(self, tiny_layout):
        samples = make_dataset_span("stream:frames=6,churn=0.9",
                                    tiny_layout, 0, 3)
        for sample in samples:
            assert sample.num_visual_tokens == \
                6 * sample.scene.grid_height * sample.scene.grid_width
            assert sample.positions.shape == (sample.num_visual_tokens, 3)

    def test_tenantmix_mixes_shapes(self, tiny_layout):
        samples = make_dataset_span("tenantmix:tenants=4,burst=1",
                                    tiny_layout, 0, 10)
        assert len({s.visual_tokens.shape for s in samples}) > 1

    def test_experiment_seed_and_spec_seed_both_matter(self, tiny_layout):
        base, = make_dataset_span("mtconv", tiny_layout, 0, 1, seed=0)
        reseeded, = make_dataset_span("mtconv", tiny_layout, 0, 1, seed=1)
        respecced, = make_dataset_span("mtconv:seed=1", tiny_layout,
                                       0, 1, seed=0)
        assert base.visual_tokens.tobytes() != \
            reseeded.visual_tokens.tobytes()
        assert base.visual_tokens.tobytes() != \
            respecced.visual_tokens.tobytes()


@pytest.mark.slow
class TestEngineSuffixOnlyReruns:
    """Grown --samples over a warm cache re-executes zero prefix jobs."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_grown_samples_execute_only_the_suffix(self, family):
        cache = ResultCache()
        small = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            registry.run_experiments(
                ["scenario"], small, scenario=family, num_samples=2,
                methods=("dense",),
            )
            assert small.stats.executed_by_kind[EVAL_SHARD_KIND] == 2
        finally:
            small.close()

        large = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            results = registry.run_experiments(
                ["scenario"], large, scenario=family, num_samples=4,
                methods=("dense",),
            )
            # Zero prefix jobs re-run: only the 2 new suffix shards.
            assert large.stats.executed_by_kind[EVAL_SHARD_KIND] == 2
            assert cache.stats.hits_by_kind[EVAL_SHARD_KIND] == 2
        finally:
            large.close()
        report = registry.format_result("scenario", results["scenario"])
        assert family in report

    def test_spelling_variants_hit_the_same_cache(self):
        cache = ResultCache()
        first = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            registry.run_experiments(
                ["scenario"], first, scenario="mtconv:turns=2,seed=1",
                num_samples=2, methods=("dense",),
            )
        finally:
            first.close()
        second = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            registry.run_experiments(
                ["scenario"], second, scenario="mtconv:seed=1,turns=2",
                num_samples=2, methods=("dense",),
            )
            assert second.stats.executed == 0
        finally:
            second.close()

    def test_result_reports_digest_and_canonical_name(self):
        engine = ExperimentEngine(eval_shards=1)
        try:
            results = registry.run_experiments(
                ["scenario"], engine, scenario="tenantmix:burst=2",
                num_samples=2, methods=("dense",),
            )
        finally:
            engine.close()
        result = results["scenario"]
        spec = parse_scenario("tenantmix:burst=2")
        assert result.scenario == spec.name
        assert result.digest == spec.digest
        assert result.cells["dense"][0] >= 0.0
        assert np.isfinite(result.cells["dense"][2])
