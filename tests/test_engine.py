"""Tests for the experiment engine: jobs, cache, scheduler, registry.

The heavier scenarios pin the PR's acceptance criteria:

* running ``table2`` + ``fig9`` together dedupes their shared
  evaluations (verified via cache-hit / executed counters);
* a warm-cache re-run of any experiment performs zero new
  ``evaluate()`` calls;
* ``workers=4`` output is bit-identical to ``workers=1`` output, which
  matches a direct (pre-refactor style) serial ``evaluate`` loop.
"""

import pickle

import pytest

from repro.config import DEFAULT_CONFIG
from repro.engine import (
    MISS,
    EvalJob,
    ExperimentEngine,
    ResultCache,
    config_digest,
    derive_seed,
    execute_job,
)
from repro.engine.registry import (
    EXPERIMENT_REGISTRY,
    experiment_names,
    get_spec,
    run_plan,
)
from repro.eval.experiments import plan_fig2b, plan_fig9, plan_table2
from repro.eval.runner import evaluate


def _job(**overrides) -> EvalJob:
    defaults = dict(model="llava-video", dataset="videomme",
                    method="dense", num_samples=1, seed=0)
    defaults.update(overrides)
    return EvalJob(**defaults)


class TestEvalJob:
    def test_equal_keys_equal_jobs(self):
        assert _job() == _job()
        assert hash(_job()) == hash(_job())

    def test_key_distinguishes_every_field(self):
        base = _job()
        assert base != _job(method="focus")
        assert base != _job(num_samples=2)
        assert base != _job(seed=1)
        assert base != _job(quantized=True)
        assert base != _job(config=DEFAULT_CONFIG.with_overrides(
            vector_size=16
        ))

    def test_config_digest_stable_and_sensitive(self):
        assert config_digest(DEFAULT_CONFIG) == config_digest(
            DEFAULT_CONFIG.with_overrides()
        )
        assert config_digest(DEFAULT_CONFIG) != config_digest(
            DEFAULT_CONFIG.with_overrides(m_tile=64)
        )

    def test_job_id_is_content_address(self):
        assert _job().job_id == _job().job_id
        assert _job().job_id != _job(seed=3).job_id

    def test_jobs_pickle(self):
        job = _job(config=DEFAULT_CONFIG.with_overrides(vector_size=8))
        assert pickle.loads(pickle.dumps(job)) == job


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)

    def test_decorrelated_by_label_and_seed(self):
        seeds = {derive_seed(s, label) for s in range(4)
                 for label in ("x", "y")}
        assert len(seeds) == 8


class TestResultCache:
    def test_memory_roundtrip(self):
        cache = ResultCache()
        job = _job()
        assert cache.get(job) is MISS
        cache.put(job, {"payload": 1})
        assert cache.get(job) == {"payload": 1}
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_disk_persists_across_instances(self, tmp_path):
        job = _job()
        first = ResultCache(cache_dir=tmp_path)
        first.put(job, [1, 2, 3])
        second = ResultCache(cache_dir=tmp_path)
        assert second.get(job) == [1, 2, 3]
        assert second.stats.disk_hits == 1
        # Loaded entries are promoted to the memory tier.
        assert second.get(job) == [1, 2, 3]
        assert second.stats.memory_hits == 1

    def test_disabled_cache_never_hits(self):
        cache = ResultCache(enabled=False)
        job = _job()
        cache.put(job, "x")
        assert cache.get(job) is MISS
        assert len(cache) == 0

    def test_corrupt_disk_entry_recomputed(self, tmp_path):
        job = _job()
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(job, "ok")
        path = tmp_path / f"{job.job_id}.pkl"
        path.write_bytes(b"not a pickle")
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(job) is MISS
        assert not path.exists()

    def test_hit_rate(self):
        cache = ResultCache()
        job = _job()
        cache.get(job)
        cache.put(job, 1)
        cache.get(job)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestDiskCacheLru:
    """Size-capped LRU pruning of the disk tier, keyed on last_used."""

    def _fill(self, tmp_path, jobs, payload_bytes=2000):
        """Write entries uncapped with deterministic last_used stamps."""
        import os
        import time

        writer = ResultCache(cache_dir=tmp_path)
        base = time.time() - 1000
        for index, job in enumerate(jobs):
            writer.put(job, b"x" * payload_bytes)
            # Deterministic last_used ordering: job i used at base + i.
            os.utime(writer._path(job), (base + index, base + index))
        return writer

    def test_put_prunes_oldest_entries(self, tmp_path):
        jobs = [_job(seed=s) for s in range(4)]
        self._fill(tmp_path, jobs)
        cache = ResultCache(cache_dir=tmp_path, max_disk_bytes=5000)
        new_job = _job(seed=99)
        cache.put(new_job, b"x" * 2000)
        # ~2KB each under a 5KB cap: only the most recent two survive.
        assert cache._path(new_job).exists()
        assert cache._path(jobs[0]).exists() is False
        assert cache._path(jobs[1]).exists() is False
        assert cache.stats.disk_evictions >= 2
        assert cache.disk_usage_bytes() <= 5000

    def test_disk_hit_refreshes_last_used(self, tmp_path):
        jobs = [_job(seed=s) for s in range(3)]
        self._fill(tmp_path, jobs)
        # Touch the oldest entry through a fresh instance (disk hit).
        fresh = ResultCache(cache_dir=tmp_path, max_disk_bytes=7000)
        assert fresh.get(jobs[0]) is not MISS
        fresh.put(_job(seed=99), b"x" * 2000)
        # jobs[0] was just used, so jobs[1] is now the LRU victim.
        assert fresh._path(jobs[0]).exists()
        assert fresh._path(jobs[1]).exists() is False

    def test_memory_tier_survives_disk_eviction(self, tmp_path):
        jobs = [_job(seed=s) for s in range(3)]
        cache = self._fill(tmp_path, jobs)
        cache.max_disk_bytes = 2500
        assert cache.prune_disk() >= 1
        assert cache._path(jobs[0]).exists() is False
        # Evicted from disk, but this session already paid for them.
        assert cache.get(jobs[0]) is not MISS
        assert cache.stats.memory_hits == 1

    def test_concurrent_prune_mid_hit_is_a_miss(
        self, tmp_path, monkeypatch
    ):
        # A sibling process sharing the directory can prune an entry
        # between the disk read and the last_used touch.  The lookup
        # must honor the eviction — count a miss and recompute — not
        # resurrect a deliberately dropped entry as a hit.
        import os

        job = _job()
        ResultCache(cache_dir=tmp_path).put(job, "payload")
        cache = ResultCache(cache_dir=tmp_path)
        cache.disk_usage_bytes()  # materialize the running byte total
        real_utime = os.utime

        def racing_utime(path, *args, **kwargs):
            os.unlink(path)  # the concurrent pruner wins the race
            return real_utime(path, *args, **kwargs)

        monkeypatch.setattr("os.utime", racing_utime)
        assert cache.get(job) is MISS
        assert cache.stats.misses == 1
        assert cache.stats.misses_by_kind == {job.kind: 1}
        assert cache.stats.disk_hits == 0
        # The vanished entry was not promoted to the memory tier.
        assert len(cache) == 0
        monkeypatch.undo()
        # The cache stays fully usable after the race ...
        cache.put(job, "payload")
        assert cache.get(job) == "payload"
        # ... and the byte total was invalidated, not left stale.
        assert cache.disk_usage_bytes() == (
            cache._entry_size(cache._path(job))
        )

    def test_uncapped_cache_never_prunes(self, tmp_path):
        jobs = [_job(seed=s) for s in range(4)]
        cache = self._fill(tmp_path, jobs)
        assert cache.prune_disk() == 0
        assert all(cache._path(j).exists() for j in jobs)

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_disk_bytes"):
            ResultCache(cache_dir=tmp_path, max_disk_bytes=-1)


@pytest.mark.slow
class TestEngineScheduling:
    def test_duplicates_executed_once(self):
        engine = ExperimentEngine()
        results = engine.run([_job(), _job(), _job()])
        assert engine.stats.jobs_submitted == 3
        assert engine.stats.jobs_unique == 1
        assert engine.stats.jobs_deduped == 2
        assert engine.stats.executed == 1
        assert results[_job()].accuracy >= 0.0

    def test_warm_cache_rerun_zero_evaluations(self):
        engine = ExperimentEngine()
        plan = plan_table2(models=("llava-video",),
                           datasets=("videomme",),
                           methods=("dense", "focus"), num_samples=1)
        cold = run_plan(plan, engine)
        executed_cold = engine.stats.executed
        warm = run_plan(plan, engine)
        assert engine.stats.executed == executed_cold
        assert engine.cache.stats.hits >= len(plan.jobs)
        assert warm.cells == cold.cells

    def test_cross_experiment_dedupe_table2_fig9(self):
        engine = ExperimentEngine()
        t2 = plan_table2(models=("llava-video",), datasets=("videomme",),
                         num_samples=1)
        f9 = plan_fig9(models=("llava-video",), datasets=("videomme",),
                       num_samples=1)
        # Table II's five methods are exactly Fig. 9's five methods, and
        # Fig. 9's power-breakdown job duplicates its own focus cell.
        results = engine.run(list(t2.jobs) + list(f9.jobs))
        assert engine.stats.jobs_submitted == 11
        assert engine.stats.jobs_unique == 5
        assert engine.stats.executed == 5
        table2 = t2.assemble(results)
        fig9 = f9.assemble(results)
        assert len(table2.cells) == 5
        assert fig9.geomean_speedup["focus"] > 1.0

    def test_progress_events_stream(self):
        events = []
        engine = ExperimentEngine(progress=events.append)
        engine.run([_job(), _job(method="focus")])
        actions = [e.action for e in events]
        assert actions.count("completed") == 2
        assert events[-1].completed == 2
        assert events[-1].total == 2
        engine.run([_job()])
        assert events[-1].action == "cache-hit"

    def test_failed_batch_quiesces_and_pool_recovers(self):
        engine = ExperimentEngine(workers=2)
        bad = [_job(seed=s, kind="nope") for s in range(3)]
        with pytest.raises(KeyError, match="job kind"):
            engine.run(bad)
        # The persistent pool is quiesced, not poisoned: the next batch
        # runs normally and close() returns promptly.
        results = engine.run([_job(), _job(method="focus")])
        assert len(results) == 2
        engine.close()

    def test_disk_cache_warm_start_across_engines(self, tmp_path):
        job = _job()
        first = ExperimentEngine(cache=ResultCache(cache_dir=tmp_path))
        cold = first.run([job])[job]
        second = ExperimentEngine(cache=ResultCache(cache_dir=tmp_path))
        warm = second.run([job])[job]
        assert second.stats.executed == 0
        assert second.cache.stats.disk_hits == 1
        assert warm.correct == cold.correct
        assert warm.sparsities == cold.sparsities


@pytest.mark.slow
class TestParallelParity:
    """--workers N must be bit-identical to serial and pre-refactor runs."""

    def _plan(self):
        return plan_table2(models=("llava-video",), datasets=("videomme",),
                           methods=("dense", "cmc", "focus"), num_samples=2)

    def test_workers_bit_identical_to_serial(self):
        serial = run_plan(self._plan(), ExperimentEngine(workers=1))
        parallel = run_plan(self._plan(), ExperimentEngine(workers=4))
        assert serial.cells == parallel.cells

    def test_engine_matches_direct_evaluate(self):
        # The pre-refactor drivers looped over evaluate() directly;
        # the engine must reproduce that bit-for-bit.
        engine_result = run_plan(self._plan(), ExperimentEngine(workers=4))
        for method in ("dense", "cmc", "focus"):
            cell = evaluate("llava-video", "videomme", method, 2, 0)
            assert engine_result.cells[
                ("llava-video", "videomme", method)
            ] == (cell.accuracy, cell.sparsity)

    def test_parallel_execution_order_irrelevant(self):
        jobs = [_job(method=m, num_samples=2)
                for m in ("dense", "cmc", "adaptiv", "focus")]
        forward = ExperimentEngine(workers=2).run(jobs)
        backward = ExperimentEngine(workers=2).run(list(reversed(jobs)))
        for job in jobs:
            assert forward[job].sparsities == backward[job].sparsities


@pytest.mark.slow
class TestJobKinds:
    def test_quantized_job_runs_int8_arm(self):
        result = execute_job(_job(method="focus", quantized=True))
        assert result.method == "focus-int8"
        assert 0.0 < result.sparsity < 100.0

    def test_fig2b_kind_cached_like_any_cell(self):
        engine = ExperimentEngine()
        plan = plan_fig2b(num_samples=1, vector_sizes=(8, 32))
        first = run_plan(plan, engine)
        assert engine.stats.executed == 1
        second = run_plan(plan, engine)
        assert engine.stats.executed == 1
        assert first.fraction_above == second.fraction_above
        assert first.fraction_above[8] > first.fraction_above[32]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="job kind"):
            execute_job(_job(kind="nope"))

    def test_eval_payload_pickles(self):
        payload = execute_job(_job())
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.accuracy == payload.accuracy


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig2b", "fig2c", "fig9", "fig10a", "fig10b", "fig10c",
            "fig10d", "fig11", "fig12", "fig13", "scenario",
        }
        assert expected == set(experiment_names())

    def test_formatters_attached_by_reporting(self):
        import repro.eval.reporting  # noqa: F401

        for name in experiment_names():
            assert EXPERIMENT_REGISTRY[name].formatter is not None

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("table99")

    def test_plans_declare_jobs_and_assemble(self):
        plan = plan_table2(models=("llava-video",),
                           datasets=("videomme",), num_samples=1)
        assert len(plan.jobs) == len(set(plan.jobs)) == 5
        assert callable(plan.assemble)
