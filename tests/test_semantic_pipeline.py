"""Tests for the Semantic Concentrator and the full Focus plugin."""

import numpy as np
import pytest

from repro.config import FocusConfig
from repro.core.pipeline import GATHER_SITES, FocusPlugin
from repro.core.semantic import SemanticConcentrator
from repro.eval.metrics import computation_sparsity


def _uniform_probs(heads, s):
    return np.full((heads, s, s), 1.0 / s, dtype=np.float32)


class TestSemanticConcentrator:
    def _sec(self, num_layers=4):
        config = FocusConfig(retention_schedule={1: 0.5, 3: 0.25},
                             schedule_depth=4)
        return SemanticConcentrator(config, num_layers)

    def test_target_tokens(self):
        sec = self._sec()
        assert sec.target_tokens(1, 100) == 50
        assert sec.target_tokens(3, 100) == 25
        assert sec.target_tokens(0, 100) is None

    def test_prune_selects_most_attended(self):
        sec = self._sec()
        s, text = 10, 2
        probs = _uniform_probs(1, s)
        is_text = np.zeros(s, dtype=bool)
        is_text[-text:] = True
        # Text row 8 attends strongly to image tokens 1 and 5.
        probs[0, 8, 1] = 0.9
        probs[0, 8, 5] = 0.8
        linear = np.arange(s)
        decision = sec.prune(3, probs, is_text, 8, linear)
        assert decision is not None
        kept_images = np.nonzero(decision.keep[:8])[0]
        assert set(kept_images) == {1, 5}
        assert decision.keep[8:].all()

    def test_no_prune_when_budget_met(self):
        sec = self._sec()
        s = 6
        probs = _uniform_probs(1, s)
        is_text = np.zeros(s, dtype=bool)
        is_text[-2:] = True
        # Only 4 image tokens remain but the original count was 20:
        # budget at layer 3 is 5 >= 4 -> no pruning.
        assert sec.prune(3, probs, is_text, 20, np.arange(s)) is None

    def test_no_prune_off_schedule(self):
        sec = self._sec()
        s = 8
        probs = _uniform_probs(1, s)
        is_text = np.zeros(s, dtype=bool)
        is_text[-1:] = True
        assert sec.prune(2, probs, is_text, 7, np.arange(s)) is None

    def test_event_and_metadata(self):
        sec = self._sec()
        s = 12
        probs = _uniform_probs(2, s)
        is_text = np.zeros(s, dtype=bool)
        is_text[-2:] = True
        decision = sec.prune(1, probs, is_text, 10, np.arange(s))
        assert decision is not None
        assert decision.event.candidates == 10
        assert decision.event.selected == 5
        assert decision.metadata_bits > 0
        assert sec.sorter_cycles_for(decision.event) > 0


class TestFocusPlugin:
    def test_end_to_end_sparsity(self, tiny_model, tiny_sample,
                                 tiny_focus_config):
        plugin = FocusPlugin(tiny_model, tiny_focus_config)
        result = tiny_model.forward(tiny_sample, plugin)
        sparsity = computation_sparsity(result.trace, tiny_model.config,
                                        tiny_sample)
        assert 0.1 < sparsity < 0.95

    def test_sec_only_prunes_tokens(self, tiny_model, tiny_sample,
                                    tiny_focus_config):
        plugin = FocusPlugin(tiny_model, tiny_focus_config,
                             enable_sic=False)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.final_tokens < (tiny_sample.num_visual_tokens
                                      + tiny_sample.num_text_tokens)
        assert result.trace.sec_events
        assert all(g.input_unique is None for g in result.trace.gemms)

    def test_sic_only_keeps_tokens(self, tiny_model, tiny_sample,
                                   tiny_focus_config):
        plugin = FocusPlugin(tiny_model, tiny_focus_config,
                             enable_sec=False)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.final_tokens == (tiny_sample.num_visual_tokens
                                       + tiny_sample.num_text_tokens)
        assert not result.trace.sec_events
        gathered = [g for g in result.trace.gemms
                    if g.input_unique is not None]
        assert gathered

    def test_gather_sites(self, tiny_model, tiny_sample, tiny_focus_config):
        plugin = FocusPlugin(tiny_model, tiny_focus_config)
        result = tiny_model.forward(tiny_sample, plugin)
        gathered_names = {g.name for g in result.trace.gemms
                          if g.input_unique is not None}
        assert gathered_names == set(GATHER_SITES)

    def test_combined_sparser_than_parts(self, tiny_model, tiny_samples,
                                         tiny_focus_config):
        def mean_sparsity(**kwargs):
            values = []
            for sample in tiny_samples:
                plugin = FocusPlugin(tiny_model, tiny_focus_config, **kwargs)
                result = tiny_model.forward(sample, plugin)
                values.append(computation_sparsity(
                    result.trace, tiny_model.config, sample
                ))
            return float(np.mean(values))

        sec_only = mean_sparsity(enable_sic=False)
        sic_only = mean_sparsity(enable_sec=False)
        both = mean_sparsity()
        assert both > sec_only
        assert both > sic_only

    def test_token_wise_coarser_than_vector_wise(self, tiny_model,
                                                 tiny_samples,
                                                 tiny_focus_config):
        vector, token = [], []
        for sample in tiny_samples:
            r_vec = tiny_model.forward(
                sample, FocusPlugin(tiny_model, tiny_focus_config)
            )
            r_tok = tiny_model.forward(
                sample,
                FocusPlugin(tiny_model, tiny_focus_config, token_wise=True),
            )
            vector.append(computation_sparsity(
                r_vec.trace, tiny_model.config, sample))
            token.append(computation_sparsity(
                r_tok.trace, tiny_model.config, sample))
        assert np.mean(vector) >= np.mean(token)

    def test_accuracy_preserved(self, tiny_model, tiny_samples,
                                tiny_focus_config):
        # On this deliberately harsh 3-layer model the scaled schedule
        # prunes to 40% at layer 0; tolerate a larger drop than the
        # production 12-layer models show (Table II: ~1-2%).
        dense = [tiny_model.forward(s).correct for s in tiny_samples]
        focus = [
            tiny_model.forward(
                s, FocusPlugin(tiny_model, tiny_focus_config)
            ).correct
            for s in tiny_samples
        ]
        assert sum(focus) >= sum(dense) - 2

    def test_metadata_recorded(self, tiny_model, tiny_sample,
                               tiny_focus_config):
        plugin = FocusPlugin(tiny_model, tiny_focus_config)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.trace.metadata_bits > 0
        assert result.trace.sic_comparisons > 0
        assert result.trace.tile_lengths

    def test_constructor_accepts_int_config_model(self, tiny_model,
                                                  tiny_model_config):
        for arg in (tiny_model, tiny_model_config,
                    tiny_model_config.num_layers):
            plugin = FocusPlugin(arg, FocusConfig())
            assert plugin.sec.num_layers == tiny_model_config.num_layers
