"""Tests for INT8 quantization emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.pipeline import FocusPlugin
from repro.quant.int8 import (
    INT8_LEVELS,
    Int8ActivationPlugin,
    fake_quant_int8,
    quantize_model,
)


class TestFakeQuant:
    def test_zero_preserved(self):
        np.testing.assert_array_equal(
            fake_quant_int8(np.zeros((2, 4))), np.zeros((2, 4))
        )

    def test_extremes_preserved(self):
        x = np.array([[1.0, -1.0, 0.5]], dtype=np.float32)
        out = fake_quant_int8(x)
        assert out[0, 0] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(-1.0)

    @given(hnp.arrays(np.float32, (3, 16),
                      elements=st.floats(-10, 10, width=32)))
    @settings(max_examples=40, deadline=None)
    def test_bounded_error(self, x):
        out = fake_quant_int8(x, axis=-1)
        scale = np.max(np.abs(x), axis=-1, keepdims=True) / INT8_LEVELS
        assert (np.abs(out - x) <= scale / 2 + 1e-7).all()

    @given(hnp.arrays(np.float32, (2, 8),
                      elements=st.floats(-10, 10, width=32)))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, x):
        once = fake_quant_int8(x)
        np.testing.assert_allclose(fake_quant_int8(once), once, atol=1e-6)

    def test_per_channel_axis(self):
        x = np.array([[100.0, 0.01], [100.0, 0.01]], dtype=np.float32)
        per_row = fake_quant_int8(x, axis=-1)
        per_col = fake_quant_int8(x, axis=0)
        # Per-row: the small value is crushed by the row's big scale.
        assert per_row[0, 1] == 0.0
        # Per-column: the small column keeps its own scale.
        assert per_col[0, 1] == pytest.approx(0.01, rel=0.02)


class TestQuantizeModel:
    def test_weights_differ_but_close(self, tiny_model):
        quantized = quantize_model(tiny_model)
        original = tiny_model.layers[0].wq
        rounded = quantized.layers[0].wq
        assert not np.array_equal(original, rounded)
        assert np.abs(original - rounded).max() < 0.05

    def test_original_untouched(self, tiny_model):
        before = tiny_model.layers[0].wq.copy()
        quantize_model(tiny_model)
        np.testing.assert_array_equal(tiny_model.layers[0].wq, before)

    def test_accuracy_survives_int8(self, tiny_model, tiny_samples):
        quantized = quantize_model(tiny_model)
        fp16 = [tiny_model.forward(s).correct for s in tiny_samples]
        int8 = [
            quantized.forward(s, Int8ActivationPlugin()).correct
            for s in tiny_samples
        ]
        assert sum(int8) >= sum(fp16) - 1


class TestInt8Plugin:
    def test_wraps_focus(self, tiny_model, tiny_sample, tiny_focus_config):
        inner = FocusPlugin(tiny_model, tiny_focus_config)
        plugin = Int8ActivationPlugin(inner)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.trace.sec_events
        gathered = [g for g in result.trace.gemms
                    if g.input_unique is not None]
        assert gathered

    def test_default_inner_is_dense(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample, Int8ActivationPlugin())
        assert not result.trace.sec_events

    def test_quantization_changes_gather_slightly(self, tiny_model,
                                                  tiny_sample,
                                                  tiny_focus_config):
        fp = tiny_model.forward(
            tiny_sample, FocusPlugin(tiny_model, tiny_focus_config)
        )
        q8 = tiny_model.forward(
            tiny_sample,
            Int8ActivationPlugin(FocusPlugin(tiny_model, tiny_focus_config)),
        )
        fp_unique = sum(g.input_unique or 0 for g in fp.trace.gemms)
        q8_unique = sum(g.input_unique or 0 for g in q8.trace.gemms)
        # Table IV: sparsity changes only marginally under INT8.
        assert abs(fp_unique - q8_unique) / max(fp_unique, 1) < 0.2
