"""Smoke tests for the experiment drivers and reporting.

Each driver runs at minimal sample counts; these tests pin the shape
properties the paper's tables/figures claim, not absolute numbers.
"""

import numpy as np
import pytest

from repro.eval import experiments as exp
from repro.eval import reporting as rep


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def small_table2():
    return exp.table2(models=("llava-video",), datasets=("videomme",),
                      num_samples=4)


class TestTable2:
    def test_cells_complete(self, small_table2):
        assert len(small_table2.cells) == len(small_table2.methods)

    def test_focus_highest_sparsity(self, small_table2):
        sparsities = {
            method: small_table2.cells[("llava-video", "videomme", method)][1]
            for method in small_table2.methods
        }
        assert sparsities["focus"] == max(sparsities.values())

    def test_formatting(self, small_table2):
        text = rep.format_table2(small_table2)
        assert "TABLE II" in text
        assert "Ours" in text


class TestTable3:
    def test_rows_and_area(self):
        rows = exp.table3(num_samples=1)
        assert [r.name for r in rows] == [
            "systolic-array", "adaptiv", "cmc", "focus",
        ]
        focus = rows[-1]
        assert focus.area_mm2 == pytest.approx(3.21, abs=0.02)
        assert 300 < focus.on_chip_power_mw < 1500
        assert "TABLE III" in rep.format_table3(rows)


class TestFig2:
    def test_fig2b_monotone_trend(self):
        result = exp.fig2b(num_samples=1, vector_sizes=(8, 32, 192))
        assert result.fraction_above[8] > result.fraction_above[192]
        assert "FIG 2(b)" in rep.format_fig2b(result)

    def test_fig2c_vector_beats_token(self):
        bars = {b.method: b for b in exp.fig2c(num_samples=3)}
        assert bars["focus"].sparsity > bars["focus-token"].sparsity
        assert bars["focus"].sparsity > bars["cmc"].sparsity


class TestFig10:
    def test_fig10a_small_tiles_slower(self):
        points = exp.fig10a(m_tiles=(0, 32), num_samples=2)
        assert points[1].latency >= points[0].latency

    def test_fig10b_accumulator_grows_with_small_vectors(self):
        points = exp.fig10b(vector_sizes=(8, 32), num_samples=2)
        by_label = {p.label: p for p in points}
        assert (by_label["8"].extra["accumulator_gops"]
                > by_label["32"].extra["accumulator_gops"])

    def test_fig10c_larger_blocks_faster(self):
        points = exp.fig10c(blocks=((1, 1, 1), (2, 2, 2)), num_samples=2)
        by_label = {p.label: p for p in points}
        assert by_label["222"].latency <= by_label["111"].latency

    def test_fig10d_more_accumulators_not_slower(self):
        points = exp.fig10d(accumulators=(8, 64), num_samples=2)
        assert points[1].latency <= points[0].latency


class TestFig11:
    def test_ablation_ordering(self):
        bars = {b.label: b.speedup for b in exp.fig11(num_samples=2)}
        assert bars["systolic-array"] == 1.0
        assert bars["ours-sec"] > bars["cmc"]
        assert bars["ours"] > bars["ours-sec"]


class TestFig12:
    def test_focus_lowest_traffic(self):
        rows = exp.fig12(models=("llava-video",), num_samples=2)
        mean = rows[-1]
        assert mean.model == "mean"
        assert mean.dram_ratio["focus"] < mean.dram_ratio["cmc"]
        assert mean.dram_ratio["focus"] < mean.dram_ratio["dense"]
        assert mean.activation_ratio["focus"] < 0.7
        assert "FIG 12" in rep.format_fig12(rows)


class TestFig13:
    def test_distribution_and_utilization(self):
        result = exp.fig13(num_samples=2)
        assert result.tile_lengths.size > 0
        assert 0.5 < result.average_utilization <= 1.0
        assert result.histogram.size == result.utilization_curve.size
        assert "FIG 13" in rep.format_fig13(result)


class TestTable4:
    def test_int8_degradation_small(self):
        rows = exp.table4(models=("llava-video",), datasets=("videomme",),
                          num_samples=4)
        row = rows[0]
        assert abs(row.sparsity_degrade) < 10.0
        assert row.ours_acc > 25.0
        assert "TABLE IV" in rep.format_table4(rows)


class TestTable5:
    def test_image_vlms_speed_up(self):
        rows = exp.table5(models=("llava-onevision",), datasets=("vqav2",),
                          num_samples=3)
        row = rows[0]
        assert row.ours_speedup > 1.0
        assert row.adaptiv_speedup > 1.0
        assert "TABLE V" in rep.format_table5(rows)
