"""Shared fixtures: tiny models and samples sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FocusConfig
from repro.model.embedding import Codebooks, SubspaceLayout
from repro.model.spec import ModelConfig
from repro.model.vlm import SyntheticVLM
from repro.workloads.datasets import DatasetProfile, make_sample
from repro.workloads.video import RenderParams


TINY_HIDDEN = 64


@pytest.fixture(scope="session")
def tiny_model_config() -> ModelConfig:
    return ModelConfig(
        name="tiny", hidden=TINY_HIDDEN, num_layers=3, num_heads=2, seed=7
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_model_config) -> SyntheticVLM:
    return SyntheticVLM(tiny_model_config)


@pytest.fixture(scope="session")
def tiny_layout(tiny_model_config) -> SubspaceLayout:
    return tiny_model_config.layout


@pytest.fixture(scope="session")
def tiny_codebooks(tiny_layout) -> Codebooks:
    return Codebooks(tiny_layout, seed=0)


@pytest.fixture(scope="session")
def tiny_profile() -> DatasetProfile:
    return DatasetProfile(
        name="tiny-video", num_frames=3, grid_height=4, grid_width=4,
        num_objects=2, num_text_tokens=5, motion_scale=0.4,
        render=RenderParams(),
    )


@pytest.fixture(scope="session")
def tiny_sample(tiny_profile, tiny_codebooks):
    return make_sample(tiny_profile, tiny_codebooks, seed=0, sample_index=0)


@pytest.fixture(scope="session")
def tiny_samples(tiny_profile, tiny_codebooks):
    return [
        make_sample(tiny_profile, tiny_codebooks, seed=0, sample_index=i)
        for i in range(4)
    ]


@pytest.fixture()
def tiny_focus_config() -> FocusConfig:
    return FocusConfig(m_tile=64)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
