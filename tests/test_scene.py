"""Tests for repro.workloads.scene."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.embedding import KIND_NAMES
from repro.workloads.scene import (
    Scene,
    SceneObject,
    coverage_map,
    random_scene,
)


class TestSceneObject:
    def test_static_object_stays_put(self):
        obj = SceneObject(kind_index=0, color_index=0, motion_index=0,
                          row=1.0, col=2.0, height=2.0, width=2.0)
        assert obj.rect_at(0) == obj.rect_at(5)

    def test_rightward_motion(self):
        obj = SceneObject(kind_index=0, color_index=0, motion_index=2,
                          row=1.0, col=1.0, height=1.0, width=1.0, speed=0.5)
        top0, left0, _, _ = obj.rect_at(0)
        top3, left3, _, _ = obj.rect_at(3)
        assert top3 == top0
        assert left3 == pytest.approx(left0 + 1.5)

    def test_names(self):
        obj = SceneObject(kind_index=1, color_index=2, motion_index=3,
                          row=0, col=0, height=1, width=1)
        assert obj.kind == KIND_NAMES[1]


class TestRandomScene:
    @given(st.integers(1, 6), st.integers(4, 8), st.integers(4, 8),
           st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_objects_stay_in_bounds(self, frames, height, width, objects):
        scene = random_scene(frames, height, width, objects, seed=1)
        for obj in scene.objects:
            for frame in (0, frames - 1):
                top, left, bottom, right = obj.rect_at(frame)
                assert top >= -1e-5
                assert left >= -1e-5
                assert bottom <= height + 1e-5
                assert right <= width + 1e-5

    def test_unique_kinds(self):
        scene = random_scene(4, 6, 6, 4, seed=2)
        kinds = [obj.kind_index for obj in scene.objects]
        assert len(set(kinds)) == len(kinds)

    def test_deterministic(self):
        a = random_scene(4, 6, 6, 3, seed=5)
        b = random_scene(4, 6, 6, 3, seed=5)
        assert a == b

    def test_rejects_too_many_objects(self):
        with pytest.raises(ValueError):
            random_scene(2, 6, 6, len(KIND_NAMES) + 1, seed=0)

    def test_rejects_zero_objects(self):
        with pytest.raises(ValueError):
            random_scene(2, 6, 6, 0, seed=0)

    def test_token_counts(self):
        scene = random_scene(3, 4, 5, 2, seed=0)
        assert scene.tokens_per_frame == 20
        assert scene.num_visual_tokens == 60


class TestCoverageMap:
    def test_shape(self):
        scene = random_scene(2, 5, 5, 2, seed=1)
        cover = coverage_map(scene, 0)
        assert cover.shape == (2, 5, 5)

    def test_values_in_unit_interval(self):
        scene = random_scene(2, 6, 6, 3, seed=3)
        for frame in range(2):
            cover = coverage_map(scene, frame)
            assert (cover >= 0).all()
            assert (cover <= 1.0 + 1e-6).all()

    def test_total_area_matches_object(self):
        obj = SceneObject(kind_index=0, color_index=0, motion_index=0,
                          row=1.25, col=1.5, height=2.0, width=1.5)
        scene = Scene(num_frames=1, grid_height=6, grid_width=6,
                      objects=(obj,))
        cover = coverage_map(scene, 0)
        assert cover[0].sum() == pytest.approx(3.0, rel=1e-5)

    def test_fractional_coverage_at_boundary(self):
        obj = SceneObject(kind_index=0, color_index=0, motion_index=0,
                          row=0.5, col=0.5, height=1.0, width=1.0)
        scene = Scene(num_frames=1, grid_height=3, grid_width=3,
                      objects=(obj,))
        cover = coverage_map(scene, 0)[0]
        assert cover[0, 0] == pytest.approx(0.25)
        assert cover[1, 1] == pytest.approx(0.25)
