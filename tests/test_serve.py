"""Tests for the streaming serving layer (:mod:`repro.serve`).

Covers the JSON event codec (round-trips for every event kind), the
async engine bridge (event-stream parity with a synchronous callback,
backpressure, clean cancellation releasing pool workers), and the
HTTP frontend over real sockets (SSE framing, ``Last-Event-ID``
resume mid-run, identical streams for concurrent subscribers, the
result endpoint's bit-identity with offline runs, and run
cancellation over HTTP).
"""

from __future__ import annotations

import asyncio
import json
import time
from contextlib import asynccontextmanager

import numpy as np
import pytest

from repro.engine import ExperimentEngine, ResultCache
from repro.engine.jobs import EvalJob, register_job_kind
from repro.engine.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentPlan,
    format_result,
    register,
)
from repro.engine.scheduler import ProgressEvent
from repro.serve import (
    AsyncExperimentEngine,
    RunCancelled,
    events as codec,
)
from repro.serve.server import RunLog, ServeApp

TEST_KIND = "serve-test"
TINY_NAME = "_serve_tiny"


@register_job_kind(TEST_KIND)
def _execute_serve_test(job: EvalJob) -> dict:
    delay = float(job.extra_map.get("sleep", 0.0))
    if delay:
        time.sleep(delay)
    return {"method": job.method, "samples": job.num_samples,
            "seed": job.seed}


def _tiny_plan_factory(jobs_count: int = 3, sleep: float = 0.0):
    def plan(num_samples: int = 2, seed: int = 0, **_ignored):
        jobs = tuple(
            EvalJob(
                model="tiny", dataset="synthetic", method=f"job{i}",
                num_samples=num_samples, seed=seed, kind=TEST_KIND,
                extra=(("sleep", sleep),),
            )
            for i in range(jobs_count)
        )
        return ExperimentPlan(
            jobs=jobs,
            assemble=lambda results: sorted(
                results[job]["method"] for job in jobs
            ),
        )

    return plan


@pytest.fixture
def tiny_experiment():
    """Register a fast throwaway experiment; clean the registry after."""
    register(TINY_NAME, "serve-layer test experiment")(
        _tiny_plan_factory()
    )
    yield TINY_NAME
    EXPERIMENT_REGISTRY.pop(TINY_NAME, None)


@pytest.fixture
def slow_experiment():
    """Like tiny, but each job sleeps so runs stay observably live."""
    name = "_serve_slow"
    register(name, "slow serve-layer test experiment")(
        _tiny_plan_factory(jobs_count=4, sleep=0.25)
    )
    yield name
    EXPERIMENT_REGISTRY.pop(name, None)


def make_job(**overrides) -> EvalJob:
    fields = dict(
        model="llava-video", dataset="videomme", method="focus",
        num_samples=4, seed=0,
    )
    fields.update(overrides)
    return EvalJob(**fields)


class TestEventCodec:
    """Round-trip every event kind through the canonical JSON codec."""

    def progress_events(self) -> list[ProgressEvent]:
        shard = make_job(
            kind="eval-shard", num_samples=2,
            extra=(("span", (2, 4)),),
        )
        sim = make_job(
            kind="sim", model="focus", dataset="trace/0f3a",
            method="focus",
            extra=(("arch", "focus"), ("span", (0, 3))),
        )
        detail = {
            "parent": make_job().describe(), "shards_done": 1,
            "shards_total": 2, "samples": 2,
            "accuracy": np.float64(50.0), "sparsity": np.float64(81.5),
        }
        retry_detail = {
            "attempt": 1, "max_attempts": 3, "delay_s": 0.05,
            "reason": "KeyError: 'x'",
        }
        failure_detail = {
            "job_id": sim.job_id, "label": "sim", "kind": "error",
            "attempts": 3, "error": "KeyError: 'x'", "tracebacks": [],
        }
        return [
            ProgressEvent("cache-hit", make_job(), 1, 4, 0.1, seq=1),
            ProgressEvent("started", sim, 1, 4, 0.2, seq=2),
            ProgressEvent("completed", sim, 2, 4, 0.3, seq=3),
            ProgressEvent("eval-shard-done", shard, 3, 4, 0.4,
                          detail=detail, seq=4),
            ProgressEvent("retrying", sim, 3, 4, 0.5,
                          detail=retry_detail, seq=5),
            ProgressEvent("gave-up", sim, 4, 4, 0.6,
                          detail=failure_detail, seq=6),
            ProgressEvent("quarantined", sim, 4, 4, 0.7,
                          detail=dict(failure_detail, kind="poisoned"),
                          seq=7),
        ]

    def test_progress_round_trip_all_actions(self):
        for event in self.progress_events():
            encoded = codec.encode_progress(event)
            decoded = codec.parse_event(codec.to_json(encoded))
            assert decoded == json.loads(json.dumps(encoded))
            assert decoded["event"] == "progress"
            assert decoded["action"] == event.action
            assert decoded["seq"] == event.seq
            assert decoded["job"]["job_id"] == event.job.job_id
            assert decoded["job"]["kind"] == event.job.kind
            assert not codec.is_terminal(decoded)
        # the fixture covers every action the scheduler can emit
        actions = {e.action for e in self.progress_events()}
        assert actions == set(codec.PROGRESS_ACTIONS)

    def test_shard_detail_survives_with_native_types(self):
        event, = [
            e for e in self.progress_events()
            if e.action == "eval-shard-done"
        ]
        decoded = codec.parse_event(
            codec.to_json(codec.encode_progress(event))
        )
        detail = decoded["detail"]
        assert detail["accuracy"] == 50.0
        assert isinstance(detail["accuracy"], float)
        assert detail["shards_done"] == 1
        # tuples in job extras become lists, losslessly
        assert decoded["job"]["extra"] == [["span", [2, 4]]]

    def test_terminal_round_trips(self):
        done = codec.encode_run_done(
            "r1", {"fig13": "REPORT\n"}, elapsed_s=1.5
        )
        failed = codec.encode_run_failed("r2", "KeyError: 'x'", 0.2)
        cancelled = codec.encode_run_cancelled("r3", 0.1)
        partial = codec.encode_run_partial(
            "r4", {"fig13": "FAILURE\n"},
            {"fig13": {"name": "fig13", "failures": []}}, 0.3,
        )
        for event in (done, failed, cancelled, partial):
            decoded = codec.parse_event(codec.to_json(event))
            assert decoded == event
            assert codec.is_terminal(decoded)
            assert decoded["event"] in codec.TERMINAL_EVENTS
        assert done["reports"]["fig13"]["sha256"] == (
            codec.report_digest("REPORT\n")
        )
        assert partial["reports"]["fig13"]["sha256"] == (
            codec.report_digest("FAILURE\n")
        )
        assert partial["failures"]["fig13"]["name"] == "fig13"
        assert {done["event"], failed["event"], cancelled["event"],
                partial["event"]} == set(codec.TERMINAL_EVENTS)

    def test_run_started_round_trips(self):
        started = codec.encode_run_started(
            "r1", ["table2", "fig9"], {"num_samples": 2, "seed": 0}
        )
        decoded = codec.parse_event(codec.to_json(started))
        assert decoded == started
        assert not codec.is_terminal(decoded)

    def test_newer_schema_rejected(self):
        event = codec.encode_run_cancelled("r", 0.0)
        event["schema"] = codec.EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            codec.parse_event(codec.to_json(event))
        with pytest.raises(ValueError, match="schema"):
            codec.parse_event("{}")
        with pytest.raises(ValueError, match="object"):
            codec.parse_event("[1, 2]")

    def test_jsonify_flattens_numpy(self):
        flat = codec.jsonify({
            "a": np.int64(3), "b": np.float32(1.5),
            "c": np.arange(3), "d": (1, (2, 3)),
        })
        assert flat == {"a": 3, "b": 1.5, "c": [0, 1, 2],
                        "d": [1, [2, 3]]}
        assert json.loads(json.dumps(flat)) == flat

    def test_sse_framing_round_trips(self):
        events = [codec.encode_progress(e)
                  for e in self.progress_events()]
        for i, event in enumerate(events, start=1):
            event["id"] = i
        stream = "retry: 2000\n\n" + "".join(
            codec.format_sse(e) for e in events
        )
        assert codec.parse_sse(stream) == events
        frame = codec.format_sse(events[0])
        assert frame.startswith("id: 1\nevent: progress\ndata: ")
        assert frame.endswith("\n\n")


class TestAsyncEngineStream:
    """The async bridge yields exactly the synchronous event stream."""

    @staticmethod
    def fingerprint(events):
        return [
            (e.action, e.job.key, e.completed, e.total, e.detail)
            for e in events
        ]

    def test_stream_matches_sync_callback(self, tiny_experiment):
        from repro.engine import registry

        sync_events = []
        registry.run_experiments(
            [tiny_experiment], ExperimentEngine(),
            progress=sync_events.append,
        )

        async def collect():
            engine = AsyncExperimentEngine(ExperimentEngine())
            return [e async for e in engine.run([tiny_experiment])]

        async_events = asyncio.run(collect())
        assert self.fingerprint(async_events) == (
            self.fingerprint(sync_events)
        )
        assert [e.action for e in async_events] == (
            ["started", "completed"] * 3
        )
        # engine-wide sequence numbers are strictly increasing
        seqs = [e.seq for e in async_events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_backpressure_queue_of_one_loses_nothing(
        self, tiny_experiment
    ):
        async def collect():
            engine = AsyncExperimentEngine(
                ExperimentEngine(), queue_size=1
            )
            events = []
            async for event in engine.run([tiny_experiment]):
                await asyncio.sleep(0.01)  # slow consumer
                events.append(event)
            return events

        events = asyncio.run(collect())
        assert [e.action for e in events] == ["started", "completed"] * 3

    def test_result_matches_offline_assembly(self, tiny_experiment):
        from repro.engine import registry

        offline = registry.run_experiments(
            [tiny_experiment], ExperimentEngine()
        )

        async def run():
            engine = AsyncExperimentEngine(ExperimentEngine())
            handle = engine.launch([tiny_experiment])
            async for _ in handle.events():
                pass
            return await handle.result()

        assert asyncio.run(run()) == offline

    def test_unknown_experiment_fails_at_launch(self):
        async def attempt():
            engine = AsyncExperimentEngine(ExperimentEngine())
            engine.launch(["definitely-not-registered"])

        with pytest.raises(KeyError):
            asyncio.run(attempt())

    def test_failed_run_raises_from_result_and_run(self):
        # A plan factory that raises fails inside the engine thread;
        # the async stream must re-raise it at the end.
        name = "_serve_broken"

        def broken_plan(**_ignored):
            raise ValueError("broken plan factory")

        register(name, "always fails")(broken_plan)
        try:
            async def stream():
                engine = AsyncExperimentEngine(ExperimentEngine())
                async for _ in engine.run([name]):
                    pass

            with pytest.raises(ValueError, match="broken plan"):
                asyncio.run(stream())
        finally:
            EXPERIMENT_REGISTRY.pop(name, None)


@pytest.mark.slow
class TestCancellation:
    """Cancelling a run aborts its batch and releases pool workers."""

    def test_cancel_releases_workers_engine_reusable(
        self, slow_experiment, tiny_experiment
    ):
        async def scenario():
            shared = ExperimentEngine(workers=2)
            engine = AsyncExperimentEngine(shared)
            handle = engine.launch([slow_experiment])
            async for event in handle.events():
                if event.action == "completed":
                    handle.cancel()
            with pytest.raises(RunCancelled):
                await handle.result()
            # The shared engine (and its pool) must still be usable.
            follow_up = engine.launch([tiny_experiment])
            events = [e async for e in follow_up.events()]
            result = await follow_up.result()
            await engine.close()
            return events, result

        events, result = asyncio.run(scenario())
        assert result == {tiny_experiment: ["job0", "job1", "job2"]}
        assert [e.action for e in events].count("completed") == 3

    def test_closing_the_stream_cancels(self, slow_experiment):
        async def scenario():
            engine = AsyncExperimentEngine(ExperimentEngine(workers=2))
            handle = engine.launch([slow_experiment])
            stream = handle.events()
            await anext(stream)
            await stream.aclose()  # abandon mid-run
            assert handle.cancelled
            with pytest.raises(RunCancelled):
                await handle.result()
            await engine.close()

        asyncio.run(scenario())


class TestRunLog:
    """Ring-buffer retention and resume arithmetic."""

    def test_ids_are_contiguous_and_resume_is_exact(self):
        async def scenario():
            log = RunLog(capacity=100)
            for i in range(5):
                await log.append(
                    {"schema": 1, "event": "progress", "n": i}
                )
            all_events, dropped = log.events_since(0)
            assert dropped == 0
            assert [e["id"] for e in all_events] == [1, 2, 3, 4, 5]
            tail, dropped = log.events_since(3)
            assert dropped == 0
            assert [e["id"] for e in tail] == [4, 5]
            assert log.events_since(5) == ([], 0)

        asyncio.run(scenario())

    def test_overflow_reports_dropped_count(self):
        async def scenario():
            log = RunLog(capacity=2)
            for i in range(5):
                await log.append({"schema": 1, "event": "progress"})
            retained, dropped = log.events_since(0)
            assert [e["id"] for e in retained] == [4, 5]
            assert dropped == 3

        asyncio.run(scenario())


async def _start(app: ServeApp):
    # Mirror serve(): fork pool workers before any socket exists, so
    # children can't inherit (and pin open) client connections.
    await app.engine.warm_up()
    server = await asyncio.start_server(
        app.handle_client, "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


@asynccontextmanager
async def serving(app: ServeApp):
    """Start ``app`` on an ephemeral port; always close-and-join.

    Tears down the listening socket (close + ``wait_closed``) and the
    app's engine even when the test body raises, so a failing test
    can't leak a bound socket or a worker pool into later tests.
    """
    server, port = await _start(app)
    try:
        yield server, port
    finally:
        server.close()
        await server.wait_closed()
        await app.shutdown()


async def _request(
    port: int, method: str, path: str,
    body: dict | None = None, headers: dict | None = None,
) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write((head + "\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, response_body


async def _json_request(port, method, path, body=None, headers=None):
    status, payload = await _request(port, method, path, body, headers)
    return status, json.loads(payload)


@pytest.mark.slow
class TestHttpFrontend:
    """The SSE/JSON-lines server over real sockets."""

    def test_validation_errors(self, tiny_experiment):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                status, body = await _json_request(
                    port, "POST", "/runs", {"experiments": []}
                )
                assert status == 400
                status, body = await _json_request(
                    port, "POST", "/runs", {"experiments": ["nope"]}
                )
                assert status == 400 and "nope" in body["error"]
                status, _ = await _request(
                    port, "GET", "/runs/missing/events"
                )
                assert status == 404
                status, _ = await _request(port, "PUT", "/runs")
                assert status == 404
                status, body = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": ["table2"], "scenario": "mtconv"},
                )
                assert status == 400 and "only applies" in body["error"]
                status, body = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": ["scenario"],
                     "scenario": "mtconv:bogus=1"},
                )
                assert status == 400
                assert "bad scenario spec" in body["error"]
                status, body = await _json_request(port, "GET", "/healthz")
                assert status == 200 and body["ok"]
                status, body = await _json_request(
                    port, "GET", "/experiments"
                )
                assert status == 200
                names = [e["name"] for e in body["experiments"]]
                assert tiny_experiment in names and "table2" in names

        asyncio.run(scenario())

    def test_sse_stream_subscribers_and_resume(self, tiny_experiment):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                status, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment], "samples": 2},
                )
                assert status == 201
                run_id = run["run_id"]
                events_path = f"/runs/{run_id}/events"

                # Two concurrent subscribers see identical sequences.
                (s1, raw1), (s2, raw2) = await asyncio.gather(
                    _request(port, "GET", events_path),
                    _request(port, "GET", events_path),
                )
                assert s1 == s2 == 200
                stream1 = codec.parse_sse(raw1.decode())
                stream2 = codec.parse_sse(raw2.decode())
                assert stream1 == stream2
                assert [e["id"] for e in stream1] == (
                    list(range(1, len(stream1) + 1))
                )
                assert stream1[0]["event"] == "run-started"
                assert stream1[-1]["event"] == "run-done"
                actions = [e.get("action") for e in stream1
                           if e["event"] == "progress"]
                assert actions == ["started", "completed"] * 3

                # Resume via Last-Event-ID replays the exact suffix.
                cut = len(stream1) // 2
                _, raw = await _request(
                    port, "GET", events_path,
                    headers={"Last-Event-ID": str(cut)},
                )
                assert codec.parse_sse(raw.decode()) == stream1[cut:]
                # ... and via the query parameter for curl users.
                _, raw = await _request(
                    port, "GET",
                    f"{events_path}?last_event_id={cut}",
                )
                assert codec.parse_sse(raw.decode()) == stream1[cut:]

                # JSON-lines carries the same stream.
                _, raw = await _request(
                    port, "GET", f"{events_path}?format=jsonl"
                )
                jsonl = [codec.parse_event(line)
                         for line in raw.decode().splitlines()]
                assert jsonl == stream1

                # Fan-out accounting: five subscribers streamed this
                # run (2 concurrent + 2 resumes + 1 jsonl), none left.
                status, described = await _json_request(
                    port, "GET", f"/runs/{run_id}"
                )
                assert status == 200
                assert described["subscribers"]["total"] == 5
                assert described["subscribers"]["peak"] >= 1
                assert described["subscribers"]["active"] == 0
                _, health = await _json_request(port, "GET", "/healthz")
                assert health["subscribers_active"] == 0

        asyncio.run(scenario())

    def test_resume_mid_run_loses_no_events(self, slow_experiment):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [slow_experiment]},
                )
                events_path = f"/runs/{run['run_id']}/events"

                # First connection: read a few frames, then drop it.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET {events_path} HTTP/1.1\r\n"
                    "Host: test\r\n\r\n".encode()
                )
                await writer.drain()
                seen = b""
                while seen.count(b"\n\n") < 4:  # headers + >=2 events
                    chunk = await reader.read(256)
                    assert chunk, "stream ended before enough events"
                    seen += chunk
                writer.close()
                # The drop may cut mid-frame: parse only the complete
                # frames (up to the final blank line).
                partial = seen.partition(b"\r\n\r\n")[2].decode()
                head = codec.parse_sse(
                    partial.rsplit("\n\n", 1)[0] + "\n\n"
                )
                assert head, "no complete events before the drop"
                last_id = head[-1]["id"]

                # Reconnect with Last-Event-ID: the rest, gap-free.
                _, raw = await _request(
                    port, "GET", events_path,
                    headers={"Last-Event-ID": str(last_id)},
                )
                tail = codec.parse_sse(raw.decode())
                ids = [e["id"] for e in head + tail]
                assert ids == list(range(1, ids[-1] + 1))
                assert (head + tail)[-1]["event"] == "run-done"

        asyncio.run(scenario())

    def test_result_bit_identical_to_offline(self, tiny_experiment):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment],
                     "samples": 2, "seed": 3},
                )
                run_id = run["run_id"]
                result_path = f"/runs/{run_id}/result"
                # Drain the stream so the run is surely finished.
                _, raw = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                terminal = codec.parse_sse(raw.decode())[-1]
                status, result = await _json_request(
                    port, "GET", result_path
                )
                assert status == 200
                return terminal, result


        terminal, result = asyncio.run(scenario())
        from repro.engine import registry

        offline = registry.run_experiments(
            [TINY_NAME], ExperimentEngine(), num_samples=2, seed=3
        )
        expected = format_result(TINY_NAME, offline[TINY_NAME])
        assert result["experiments"][TINY_NAME] == expected
        assert terminal["reports"][TINY_NAME]["sha256"] == (
            codec.report_digest(expected)
        )

    def test_result_conflicts_while_running_and_cancel(
        self, slow_experiment
    ):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(
                ExperimentEngine(workers=2)
            ))
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [slow_experiment]},
                )
                run_id = run["run_id"]
                status, _ = await _json_request(
                    port, "GET", f"/runs/{run_id}/result"
                )
                assert status == 409  # still running
                status, body = await _json_request(
                    port, "DELETE", f"/runs/{run_id}"
                )
                assert status == 202
                # Stream drains to the cancellation terminal.
                _, raw = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                assert codec.parse_sse(raw.decode())[-1]["event"] == (
                    "run-cancelled"
                )
                status, _ = await _json_request(
                    port, "GET", f"/runs/{run_id}/result"
                )
                assert status == 410
                status, body = await _json_request(
                    port, "GET", f"/runs/{run_id}"
                )
                assert body["status"] == "cancelled"

        asyncio.run(scenario())

    def test_bad_samples_is_a_client_error(self, tiny_experiment):
        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                status, body = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment],
                     "samples": "two"},
                )
                assert status == 400 and "samples" in body["error"]

        asyncio.run(scenario())

    def test_partial_run_streams_failures_and_persists(
        self, tiny_experiment, tmp_path
    ):
        from repro.engine import install_fault_plan
        from repro.store import RunStore

        # poison one of the tiny experiment's three jobs on every
        # attempt; collect mode must finish the other two and end the
        # stream with run-partial instead of run-failed
        install_fault_plan(f"{TEST_KIND}:job1:*@*:raise")

        async def scenario():
            store = RunStore(tmp_path / "runs.sqlite")
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()), store=store,
            )
            try:
                async with serving(app) as (server, port):
                    _, run = await _json_request(
                        port, "POST", "/runs",
                        {"experiments": [tiny_experiment],
                         "on_error": "collect"},
                    )
                    run_id = run["run_id"]
                    _, raw = await _request(
                        port, "GET", f"/runs/{run_id}/events"
                    )
                    stream = codec.parse_sse(raw.decode())
                    status, result = await _json_request(
                        port, "GET", f"/runs/{run_id}/result"
                    )
                    while status == 409:
                        await asyncio.sleep(0.02)
                        status, result = await _json_request(
                            port, "GET", f"/runs/{run_id}/result"
                        )
                    stored = store.get_run(run_id)
                    return stream, status, result, stored
            finally:
                install_fault_plan(None)
                store.close()

        stream, status, result, stored = asyncio.run(scenario())
        terminal = stream[-1]
        assert terminal["event"] == "run-partial"
        assert tiny_experiment in terminal["failures"]
        assert any(e.get("action") == "gave-up" for e in stream)
        assert status == 200
        assert result["status"] == "partial"
        assert tiny_experiment in result["failures"]
        assert "1 job(s) failed" in result["experiments"][tiny_experiment]
        assert stored["status"] == "partial"
        assert stored["failures"][tiny_experiment][0]["kind"] == "error"

    def test_finished_runs_are_evicted_beyond_cap(self, tiny_experiment):
        async def scenario():
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()),
                max_finished_runs=2,
            )
            async with serving(app) as (server, port):
                ids = []
                for _ in range(4):
                    _, run = await _json_request(
                        port, "POST", "/runs",
                        {"experiments": [tiny_experiment]},
                    )
                    ids.append(run["run_id"])
                    # drain so the run is terminal before the next POST
                    await _request(
                        port, "GET", f"/runs/{run['run_id']}/events"
                    )
                assert len(app.runs) <= 3  # 2 retained + the newest
                status, _ = await _request(
                    port, "GET", f"/runs/{ids[0]}/events"
                )
                assert status == 404  # oldest evicted
                status, _ = await _json_request(
                    port, "GET", f"/runs/{ids[-1]}/result"
                )
                assert status == 200  # newest retained

        asyncio.run(scenario())

    def test_ring_overflow_sends_gap_marker(self, tiny_experiment):
        async def scenario():
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()), ring_size=2
            )
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment]},
                )
                run_id = run["run_id"]
                status, _ = await _json_request(
                    port, "GET", f"/runs/{run_id}/result"
                )
                while status == 409:
                    await asyncio.sleep(0.02)
                    status, _ = await _json_request(
                        port, "GET", f"/runs/{run_id}/result"
                    )
                _, raw = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                stream = codec.parse_sse(raw.decode())
                assert stream[0]["event"] == "gap"
                assert stream[0]["dropped"] > 0
                assert stream[-1]["event"] == "run-done"

        asyncio.run(scenario())

    def test_gap_carries_first_retained_seq_and_reconnect(
        self, tiny_experiment
    ):
        # Regression: the gap marker used to hard-code ``"seq": 0``,
        # so a client tracking its cursor by seq regressed to the
        # start of the run after every overflow.  The gap must carry
        # the first *retained* event's seq, and resuming from the
        # gap's id must replay exactly the retained suffix.
        async def scenario():
            app = ServeApp(
                AsyncExperimentEngine(ExperimentEngine()), ring_size=2
            )
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": [tiny_experiment]},
                )
                run_id = run["run_id"]
                status = 409
                while status == 409:
                    await asyncio.sleep(0.02)
                    status, _ = await _json_request(
                        port, "GET", f"/runs/{run_id}/result"
                    )
                _, raw = await _request(
                    port, "GET", f"/runs/{run_id}/events"
                )
                stream = codec.parse_sse(raw.decode())
                gap, retained = stream[0], stream[1:]
                assert gap["event"] == "gap"
                # stamped with the first retained seq, never 0: the
                # retained suffix of this run starts at a progress
                # event whose engine seq is well past the hole
                assert gap["seq"] == retained[0]["seq"] > 0
                # the gap's id is the last dropped id, so id cursors
                # continue exactly at the first retained event
                assert gap["id"] == retained[0]["id"] - 1

                # Reconnect-after-gap: a client that saw the gap
                # resumes from its id and gets only the retained
                # suffix — no second gap, no replay from the start.
                _, raw = await _request(
                    port, "GET", f"/runs/{run_id}/events",
                    headers={"Last-Event-ID": str(gap["id"])},
                )
                resumed = codec.parse_sse(raw.decode())
                assert resumed == retained

        asyncio.run(scenario())


@pytest.mark.slow
class TestServedRealExperiment:
    """Acceptance: served fig13 matches the offline run exactly."""

    def test_sse_sequence_and_result_match_offline(self):
        sync_events = []
        offline = ExperimentEngine(progress=sync_events.append)
        from repro.cli import run_experiments

        offline_reports = run_experiments(
            ["fig13"], samples=1, seed=0, engine=offline
        )

        async def scenario():
            app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
            async with serving(app) as (server, port):
                _, run = await _json_request(
                    port, "POST", "/runs",
                    {"experiments": ["fig13"], "samples": 1,
                     "seed": 0},
                )
                _, raw = await _request(
                    port, "GET", f"/runs/{run['run_id']}/events"
                )
                stream = codec.parse_sse(raw.decode())
                _, result = await _json_request(
                    port, "GET", f"/runs/{run['run_id']}/result"
                )
                return stream, result

        stream, result = asyncio.run(scenario())
        served = [e for e in stream if e["event"] == "progress"]
        expected = [codec.encode_progress(e) for e in sync_events]
        for event in served + expected:
            # timing and engine-global counters differ by design
            event.pop("elapsed_s"), event.pop("seq"), event.pop("id", 0)
        assert served == expected
        assert result["experiments"]["fig13"] == (
            offline_reports["fig13"]
        )
