"""Tests for the SEC building blocks: importance, top-k, offsets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.importance import (
    StreamingImportanceAnalyzer,
    importance_buffer_bytes,
    importance_scores,
)
from repro.core.offsets import (
    decode_offsets,
    encode_offsets,
    encoded_bits,
    offsets_to_positions,
)
from repro.core.topk import (
    StreamingBubbleSorter,
    sorter_cycles,
    top_k_indices,
    top_k_mask,
)


def _random_probs(rng, heads, s):
    logits = rng.standard_normal((heads, s, s)).astype(np.float32)
    e = np.exp(logits)
    return e / e.sum(-1, keepdims=True)


class TestImportance:
    def test_matches_manual_max(self, rng):
        probs = _random_probs(rng, 2, 10)
        is_text = np.zeros(10, dtype=bool)
        is_text[7:] = True
        scores = importance_scores(probs, is_text)
        manual = probs[:, 7:, :7].max(axis=(0, 1))
        np.testing.assert_allclose(scores, manual)

    def test_requires_text(self, rng):
        probs = _random_probs(rng, 1, 4)
        with pytest.raises(ValueError):
            importance_scores(probs, np.zeros(4, dtype=bool))

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            importance_scores(np.zeros((4, 4)), np.zeros(4, dtype=bool))

    def test_streaming_parallel_equals_closed_form(self, rng):
        probs = _random_probs(rng, 3, 12)
        is_text = np.zeros(12, dtype=bool)
        is_text[9:] = True
        closed = importance_scores(probs, is_text)
        analyzer = StreamingImportanceAnalyzer(9, lanes=4)
        streamed = analyzer.analyze(probs[:, 9:, :9])
        np.testing.assert_allclose(streamed, closed)
        assert analyzer.cycles > 0

    def test_streaming_orthogonal_equals_closed_form(self, rng):
        probs = _random_probs(rng, 1, 10)
        is_text = np.zeros(10, dtype=bool)
        is_text[8:] = True
        block = probs[0, 8:, :8]
        analyzer = StreamingImportanceAnalyzer(8, lanes=4)
        for start in range(0, 8, 4):
            analyzer.consume_columns(block[:, start:start + 4])
        closed = importance_scores(probs, is_text)
        np.testing.assert_allclose(analyzer.result(), closed)

    def test_row_length_check(self):
        analyzer = StreamingImportanceAnalyzer(8)
        with pytest.raises(ValueError):
            analyzer.consume_row(np.zeros(5))

    def test_buffer_bytes(self):
        # 12.8k tokens (paper worst case) fits the 25 KB buffer.
        assert importance_buffer_bytes(12800) <= 25 * 1024


class TestTopK:
    @given(hnp.arrays(np.float32, st.integers(1, 40),
                      elements=st.floats(-5, 5, width=32)),
           st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_streaming_sorter_equals_vectorized(self, scores, k):
        sorter = StreamingBubbleSorter(lanes=4)
        np.testing.assert_array_equal(
            sorter.top_k(scores, k), top_k_indices(scores, k)
        )

    def test_ties_break_to_lower_index(self):
        scores = np.array([1.0, 2.0, 2.0, 0.5], dtype=np.float32)
        assert list(top_k_indices(scores, 2)) == [1, 2]
        assert list(top_k_indices(scores, 1)) == [1]

    def test_selects_correct_values(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7], dtype=np.float32)
        assert list(top_k_indices(scores, 2)) == [1, 3]

    def test_mask_form(self):
        scores = np.array([3.0, 1.0, 2.0], dtype=np.float32)
        mask = top_k_mask(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_k_larger_than_n(self):
        scores = np.array([1.0, 2.0], dtype=np.float32)
        assert list(top_k_indices(scores, 10)) == [0, 1]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.array([1.0]), -1)

    def test_sorter_cycle_model(self):
        # M * ceil(k/a) cycles (Sec. V-B).
        assert sorter_cycles(100, 8, 4) == 200
        assert sorter_cycles(100, 9, 4) == 300
        assert sorter_cycles(100, 0, 4) == 0

    def test_streaming_sorter_counts_cycles(self):
        sorter = StreamingBubbleSorter(lanes=4)
        sorter.top_k(np.arange(20, dtype=np.float32), 8)
        # Two passes over a shrinking candidate pool.
        assert sorter.cycles == 20 + 16


class TestOffsets:
    @given(st.lists(st.integers(0, 500), min_size=0, max_size=50,
                    unique=True))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, indices):
        indices = np.array(sorted(indices), dtype=np.int64)
        np.testing.assert_array_equal(
            decode_offsets(encode_offsets(indices)), indices
        )

    def test_identity_permutation_encodes_as_ones(self):
        deltas = encode_offsets(np.arange(5))
        np.testing.assert_array_equal(deltas, np.ones(5))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            encode_offsets(np.array([3, 1]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_offsets(np.array([-1, 2]))

    def test_positions_roundtrip(self):
        grid = (3, 4, 5)
        indices = np.array([0, 7, 23, 59])
        positions = offsets_to_positions(indices, grid)
        frames, height, width = grid
        linear = (positions[:, 0] * height * width
                  + positions[:, 1] * width + positions[:, 2])
        np.testing.assert_array_equal(linear, indices)

    def test_positions_bounds_check(self):
        with pytest.raises(ValueError):
            offsets_to_positions(np.array([60]), (3, 4, 5))

    def test_encoded_bits_small_gaps(self):
        deltas = encode_offsets(np.arange(10))
        assert encoded_bits(deltas, field_bits=8) == 80

    def test_encoded_bits_escape_words(self):
        # A gap of 300 does not fit one 8-bit word.
        deltas = np.array([300], dtype=np.int64)
        assert encoded_bits(deltas, field_bits=8) == 16

    def test_encoded_bits_rejects_tiny_field(self):
        with pytest.raises(ValueError):
            encoded_bits(np.array([1]), field_bits=1)
