"""Fault-tolerance tests: retries, timeouts, crash recovery, injection.

Every scheduler recovery path is driven by the deterministic
:class:`~repro.engine.faults.FaultPlan` harness, so these are ordinary
unit tests — no "hope a worker dies" flakiness.  The heavier scenarios
(real pool crashes, wall-clock timeouts) carry ``slow`` marks.
"""

import asyncio
import logging

import pytest

from repro.engine import (
    DEFAULT_RETRY_POLICY,
    EvalJob,
    ExperimentEngine,
    ExperimentFailure,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    JobFailure,
    PoisonedJob,
    ResultCache,
    RetryPolicy,
    active_fault_plan,
    execute_job,
    fault_label,
    install_fault_plan,
    run_job_attempt,
)
from repro.engine import registry
from repro.engine.faults import FAULT_PLAN_ENV, shard_failure
from repro.eval.experiments import plan_table2
from repro.serve.async_engine import AsyncExperimentEngine
from repro.store.runstore import RunStore


def _job(**overrides) -> EvalJob:
    defaults = dict(model="llava-video", dataset="videomme",
                    method="dense", num_samples=1, seed=0)
    defaults.update(overrides)
    return EvalJob(**defaults)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    yield
    install_fault_plan(None)


class TestRetryPolicy:
    def test_defaults_disable_exception_retries(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 1
        assert DEFAULT_RETRY_POLICY.max_crash_attempts == 2

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(backoff_s=-0.1),
        dict(backoff_multiplier=0.5),
        dict(max_backoff_s=-1),
        dict(jitter=-0.01),
        dict(max_crash_attempts=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_should_retry_respects_budget_and_classes(self):
        policy = RetryPolicy(
            max_attempts=3, retryable=(RuntimeError,),
            non_retryable=(KeyError,),
        )
        assert policy.should_retry(RuntimeError("x"), attempts=1)
        assert policy.should_retry(RuntimeError("x"), attempts=2)
        assert not policy.should_retry(RuntimeError("x"), attempts=3)
        assert not policy.should_retry(ValueError("x"), attempts=1)
        assert not policy.is_retryable(KeyError("x"))

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.1, backoff_multiplier=2.0,
            max_backoff_s=0.3, jitter=0.1,
        )
        job = _job()
        first = policy.delay_s(job, 1)
        assert first == policy.delay_s(job, 1)  # pure function
        assert 0.1 <= first <= 0.1 * 1.1
        # exponential growth, then the ceiling (jitter on top)
        assert 0.2 <= policy.delay_s(job, 2) <= 0.2 * 1.1
        assert 0.3 <= policy.delay_s(job, 4) <= 0.3 * 1.1
        # different (job, attempt) pairs jitter differently
        assert policy.delay_s(job, 1) != policy.delay_s(_job(seed=1), 1)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=0.2, jitter=0.0)
        assert policy.delay_s(_job(), 1) == 0.2


class TestJobFailure:
    def test_describe_and_detail(self):
        failure = JobFailure(
            job=_job(), kind="error", attempts=2,
            tracebacks=("Traceback ...\nKeyError: 'x'",),
        )
        assert failure.error == "KeyError: 'x'"
        assert "error after 2 attempt(s)" in failure.describe()
        detail = failure.as_detail()
        assert detail["job_id"] == _job().job_id
        assert detail["kind"] == "error"
        assert detail["attempts"] == 2
        assert detail["tracebacks"]

    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            JobFailure(job=_job(), kind="meltdown", attempts=1)

    def test_shard_failure_aggregates_spans(self):
        span = JobFailure(job=_job(), kind="error", attempts=1,
                          tracebacks=("boom",))
        parent = shard_failure(_job(num_samples=4), [span])
        assert parent.kind == "shards-failed"
        assert span.describe() in parent.tracebacks[0]

    def test_experiment_failure_describe(self):
        failure = ExperimentFailure(
            name="table2",
            failures=(JobFailure(job=_job(), kind="error", attempts=1),),
        )
        text = failure.describe()
        assert text.startswith("experiment table2: 1 job(s) failed")
        assert _job().describe() in text
        assert failure.as_detail()[0]["kind"] == "error"


class TestFaultPlanDSL:
    def test_fault_label_shape(self):
        label = fault_label(_job(extra=(("span", (0, 2)),)))
        assert label == (
            "eval:dense:llava-video:videomme:n1:s0:span=(0, 2)"
        )

    def test_parse_and_match(self):
        plan = FaultPlan.parse(
            "eval:dense:*@2:raise; eval:focus:*@*:sleep=1.5; *@4:kill"
        )
        assert len(plan.rules) == 3
        assert plan.rules[1].action == "sleep"
        assert plan.rules[1].param == 1.5
        assert plan.rules[1].max_attempt is None
        # first matching rule wins; attempts gate firing
        assert plan.rule_for(_job(), 1).action == "raise"
        assert plan.rule_for(_job(), 2).action == "raise"
        assert plan.rule_for(_job(), 3).action == "kill"  # falls through
        assert plan.rule_for(_job(), 5) is None  # past every gate
        assert plan.rule_for(_job(method="focus"), 9).action == "sleep"

    @pytest.mark.parametrize("spec", [
        "no-action-here",            # lacks :ACTION
        "pattern-only:raise",        # lacks @ATTEMPTS
        "x@two:raise",               # bad attempts
        "x@1:sleep",                 # sleep without seconds
        "x@1:raise=3",               # raise takes no parameter
        "x@1:explode",               # unknown action
        " ; ",                       # no rules at all
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_apply_raise_and_inprocess_kill(self):
        plan = FaultPlan.parse("eval:dense:*@1:raise")
        with pytest.raises(InjectedFault):
            plan.apply(_job(), attempt=1)
        plan.apply(_job(), attempt=2)  # past the attempt gate: no-op
        kill = FaultPlan.parse("*@*:kill")
        with pytest.raises(InjectedCrash):
            kill.apply(_job(), attempt=1, in_worker=False)

    def test_install_and_env_activation(self, monkeypatch):
        assert active_fault_plan() is None
        installed = install_fault_plan("eval:*@1:raise")
        assert active_fault_plan() is installed
        # exported so pool workers inherit it
        import os
        assert os.environ[FAULT_PLAN_ENV] == "eval:*@1:raise"
        install_fault_plan(None)
        assert active_fault_plan() is None
        assert FAULT_PLAN_ENV not in os.environ
        monkeypatch.setenv(FAULT_PLAN_ENV, "sim:*@2:raise")
        env_plan = active_fault_plan()
        assert env_plan is not None
        assert env_plan.rules[0].max_attempt == 2
        assert active_fault_plan() is env_plan  # cached per spec text

    def test_run_job_attempt_matches_execute_job_without_plan(self):
        direct = execute_job(_job())
        attempted = run_job_attempt(_job(), attempt=1)
        assert attempted.accuracy == direct.accuracy
        assert attempted.correct == direct.correct

    def test_run_job_attempt_applies_active_plan(self):
        install_fault_plan("eval:dense:*@1:raise")
        with pytest.raises(InjectedFault):
            run_job_attempt(_job(), attempt=1)
        result = run_job_attempt(_job(), attempt=2)
        assert result.accuracy == execute_job(_job()).accuracy


class TestSerialRetries:
    def test_flaky_job_retried_bit_identically(self):
        baseline = ExperimentEngine().run([_job()])[_job()]
        install_fault_plan("eval:dense:*@1:raise")
        events = []
        engine = ExperimentEngine(
            progress=events.append,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        retried = engine.run([_job()])[_job()]
        assert retried.accuracy == baseline.accuracy
        assert retried.correct == baseline.correct
        assert retried.sparsities == baseline.sparsities
        assert engine.stats.retries == 1
        assert engine.stats.executed == 1
        retrying, = [e for e in events if e.action == "retrying"]
        assert retrying.detail["attempt"] == 1
        assert retrying.detail["max_attempts"] == 2
        assert "InjectedFault" in retrying.detail["reason"]

    def test_exhausted_attempts_collects_structured_failure(self):
        install_fault_plan("eval:dense:*@*:raise")
        events = []
        engine = ExperimentEngine(
            progress=events.append,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        results = engine.run(
            [_job(), _job(method="focus")], on_error="collect"
        )
        failure = results[_job()]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert len(failure.tracebacks) == 2
        assert "InjectedFault" in failure.error
        assert results[_job(method="focus")].accuracy >= 0.0
        assert engine.stats.failed == 1
        gave_up, = [e for e in events if e.action == "gave-up"]
        assert gave_up.detail["kind"] == "error"
        assert gave_up.job == _job()

    def test_raise_mode_reraises_original_error(self):
        install_fault_plan("eval:dense:*@*:raise")
        engine = ExperimentEngine(
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0)
        )
        with pytest.raises(InjectedFault):
            engine.run([_job()])

    def test_non_retryable_fails_fast(self):
        install_fault_plan("eval:dense:*@*:raise")
        engine = ExperimentEngine(retry_policy=RetryPolicy(
            max_attempts=3, backoff_s=0.0,
            non_retryable=(InjectedFault,),
        ))
        results = engine.run([_job()], on_error="collect")
        assert results[_job()].attempts == 1
        assert engine.stats.retries == 0

    def test_inprocess_kill_degrades_to_error(self):
        install_fault_plan("eval:dense:*@*:kill")
        engine = ExperimentEngine()
        results = engine.run([_job()], on_error="collect")
        assert results[_job()].kind == "error"
        assert "InjectedCrash" in results[_job()].error

    def test_on_error_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            ExperimentEngine().run([_job()], on_error="ignore")

    def test_job_timeout_validated(self):
        with pytest.raises(ValueError, match="job_timeout_s"):
            ExperimentEngine(job_timeout_s=0)

    def test_failed_shard_fails_parent_cell(self):
        install_fault_plan("*:span=(0, 1)@*:raise")
        parent = _job(num_samples=2)
        events = []
        engine = ExperimentEngine(eval_shards=1, progress=events.append)
        results = engine.run([parent], on_error="collect")
        failure = results[parent]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "shards-failed"
        assert failure.job == parent
        assert any(e.action == "gave-up" and e.job == parent
                   for e in events)


class TestRegistryPartialResults:
    def _plan(self):
        return plan_table2(
            models=("llava-video",), datasets=("videomme",),
            methods=("dense", "focus"), num_samples=1,
        )

    def test_run_plan_returns_experiment_failure(self):
        install_fault_plan("eval:dense:*@*:raise")
        result = registry.run_plan(
            self._plan(), ExperimentEngine(), on_error="collect",
            name="table2",
        )
        assert isinstance(result, ExperimentFailure)
        assert result.name == "table2"
        assert all(f.kind == "error" for f in result.failures)
        rendered = registry.format_result("table2", result)
        assert rendered == result.describe()

    def test_run_experiments_collects_per_experiment(self):
        install_fault_plan("eval:cmc:*@*:raise")
        results = registry.run_experiments(
            ["table2"], ExperimentEngine(), on_error="collect",
            num_samples=1, models=("llava-video",),
            datasets=("videomme",),
        )
        assert isinstance(results["table2"], ExperimentFailure)

    def test_async_run_reaches_partial_state(self):
        install_fault_plan("eval:cmc:*@*:raise")

        async def body():
            engine = AsyncExperimentEngine(ExperimentEngine())
            run = engine.launch(
                ["table2"], on_error="collect", num_samples=1,
                models=("llava-video",), datasets=("videomme",),
            )
            assert run.state == "running"
            async for _ in run.events():
                pass
            results = await run.result()
            assert isinstance(results["table2"], ExperimentFailure)
            assert run.state == "partial"
            await engine.close()

        asyncio.run(body())

    def test_async_launch_validates_on_error(self):
        async def body():
            engine = AsyncExperimentEngine(ExperimentEngine())
            with pytest.raises(ValueError, match="on_error"):
                engine.launch(["table2"], on_error="ignore")
            await engine.close()

        asyncio.run(body())


class TestSubscriberDrop:
    def test_raising_subscriber_dropped_with_warning(self, caplog):
        calls = []

        def bad(event):
            calls.append(event)
            raise RuntimeError("subscriber bug")

        engine = ExperimentEngine()
        token = engine.subscribe(bad)
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            engine.run([_job()])
        assert len(calls) == 1  # dropped after the first raise
        record, = [
            r for r in caplog.records
            if "dropping progress subscriber" in r.message
        ]
        assert str(token) in record.getMessage()
        assert record.exc_info is not None  # exception is logged, not lost
        caplog.clear()
        engine.run([_job(seed=7)])
        assert len(calls) == 1
        assert not any(
            "dropping progress subscriber" in r.message
            for r in caplog.records
        )


@pytest.mark.slow
class TestPoolRecovery:
    def test_worker_crash_recovered_and_pool_reusable(self):
        baseline = ExperimentEngine().run([_job()])[_job()]
        install_fault_plan("eval:dense:*@1:kill")
        events = []
        engine = ExperimentEngine(workers=2, progress=events.append)
        try:
            results = engine.run([_job(), _job(method="focus")])
            assert results[_job()].accuracy == baseline.accuracy
            assert results[_job(method="focus")].accuracy >= 0.0
            assert engine.stats.pool_crashes >= 1
            assert any(e.action == "retrying" for e in events)
            # the respawned pool serves the next batch too
            install_fault_plan(None)
            more = engine.run([_job(seed=5)])
            assert more[_job(seed=5)].accuracy >= 0.0
        finally:
            engine.close()

    def test_poisoned_job_quarantined_in_collect_mode(self):
        install_fault_plan("eval:dense:*@*:kill")
        events = []
        engine = ExperimentEngine(workers=2, progress=events.append)
        try:
            results = engine.run(
                [_job(), _job(method="focus")], on_error="collect"
            )
            failure = results[_job()]
            assert isinstance(failure, JobFailure)
            assert failure.kind == "poisoned"
            assert failure.attempts == engine.retry_policy.max_crash_attempts
            assert results[_job(method="focus")].accuracy >= 0.0
            assert engine.stats.quarantined == 1
            quarantined, = [
                e for e in events if e.action == "quarantined"
            ]
            assert quarantined.detail["kind"] == "poisoned"
        finally:
            engine.close()

    def test_poisoned_job_raises_poisonedjob_in_raise_mode(self):
        install_fault_plan("eval:dense:*@*:kill")
        engine = ExperimentEngine(workers=2)
        try:
            with pytest.raises(PoisonedJob) as excinfo:
                engine.run([_job(), _job(method="focus")])
            assert excinfo.value.failure.kind == "poisoned"
        finally:
            engine.close()

    def test_hung_job_times_out_then_succeeds(self):
        baseline = ExperimentEngine().run([_job()])[_job()]
        install_fault_plan("eval:dense:*@1:sleep=30")
        events = []
        engine = ExperimentEngine(
            workers=2, progress=events.append, job_timeout_s=1.0,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        try:
            results = engine.run([_job(), _job(method="focus")])
            assert results[_job()].accuracy == baseline.accuracy
            assert results[_job(method="focus")].accuracy >= 0.0
            assert engine.stats.timeouts >= 1
            assert any(
                e.action == "retrying"
                and e.detail["reason"] == "timeout"
                for e in events
            )
        finally:
            engine.close()

    def test_permanently_hung_job_fails_as_timeout(self):
        install_fault_plan("eval:dense:*@*:sleep=30")
        engine = ExperimentEngine(workers=2, job_timeout_s=0.75)
        try:
            results = engine.run(
                [_job(), _job(method="focus")], on_error="collect"
            )
            failure = results[_job()]
            assert isinstance(failure, JobFailure)
            assert failure.kind == "timeout"
            assert results[_job(method="focus")].accuracy >= 0.0
        finally:
            engine.close()

    def test_broken_pool_slot_cleared_for_next_run(self):
        # after a crash-induced recycle the engine holds no dead pool:
        # the next batch builds a fresh one and succeeds.
        install_fault_plan("eval:dense:*@*:kill")
        engine = ExperimentEngine(workers=2)
        try:
            engine.run(
                [_job(), _job(method="focus")], on_error="collect"
            )
            assert engine.stats.pool_crashes >= 1
            install_fault_plan(None)
            results = engine.run(
                [_job(seed=5), _job(method="focus", seed=5)]
            )
            assert results[_job(seed=5)].accuracy >= 0.0
            assert engine._pool is not None  # fresh pool, alive
        finally:
            engine.close()


class TestStoreFailures:
    def test_partial_run_persists_failures(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        store.create_run("r1", ["table2"], {"num_samples": 1})
        detail = [{
            "job_id": "abc", "label": "x", "kind": "error",
            "attempts": 2, "error": "KeyError: 'x'", "tracebacks": [],
        }]
        store.finish_run(
            "r1", "partial", elapsed_s=0.5,
            reports={"table2": "experiment table2: 1 job(s) failed"},
            failures={"table2": detail},
        )
        run = store.get_run("r1")
        assert run["status"] == "partial"
        assert run["failures"]["table2"][0]["kind"] == "error"
        store.close()

    def test_done_run_has_no_failures(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        store.create_run("r1", ["fig9"], {})
        store.finish_run("r1", "done", elapsed_s=0.1)
        assert store.get_run("r1")["failures"] is None
        store.close()

    def test_v1_store_migrates_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "runs.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript("""
            CREATE TABLE store_meta (
                key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO store_meta VALUES ('schema_version', '1');
            CREATE TABLE runs (
                run_id TEXT PRIMARY KEY,
                created_at REAL NOT NULL,
                experiments TEXT NOT NULL,
                params TEXT NOT NULL,
                status TEXT NOT NULL DEFAULT 'running',
                error TEXT,
                elapsed_s REAL,
                event_schema INTEGER NOT NULL);
            INSERT INTO runs VALUES
                ('old', 1.0, '["fig9"]', '{}', 'done', NULL, 0.2, 1);
        """)
        conn.commit()
        conn.close()
        store = RunStore(path)  # migrates v1 -> v2 on open
        run = store.get_run("old")
        assert run["status"] == "done"
        assert run["failures"] is None
        store.create_run("new", ["table2"], {})
        store.finish_run(
            "new", "partial", elapsed_s=0.1,
            failures={"table2": []},
        )
        assert store.get_run("new")["failures"] == {"table2": []}
        meta = store._conn.execute(
            "SELECT value FROM store_meta WHERE key='schema_version'"
        ).fetchone()
        assert meta["value"] == "2"
        store.close()
